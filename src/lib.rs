//! # egi — Ensemble Grammar Induction for Time Series Anomaly Detection
//!
//! Facade crate re-exporting the EGI workspace: a from-scratch Rust
//! reproduction of *"Ensemble Grammar Induction For Detecting Anomalies in
//! Time Series"* (Gao, Lin, Brif — EDBT 2020).
//!
//! ## Quick start
//!
//! ```
//! use egi::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Build a labeled test series the way the paper does (Section 7.1.1).
//! let mut rng = StdRng::seed_from_u64(7);
//! let spec = CorpusSpec::paper(UcrFamily::GunPoint);
//! let labeled = spec.generate_one(&mut rng);
//!
//! // Run the ensemble detector with the paper's defaults.
//! let config = EnsembleConfig {
//!     window: labeled.gt_len,
//!     ..EnsembleConfig::default()
//! };
//! let detector = EnsembleDetector::new(config);
//! let report = detector.detect(&labeled.series, 3, 42);
//! assert!(!report.anomalies.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Module | Source crate | Contents |
//! |--------|--------------|----------|
//! | [`tskit`] | `egi-tskit` | series type, statistics, generators, corpora |
//! | [`sax`] | `egi-sax` | PAA, SAX, numerosity reduction, multi-resolution SAX |
//! | [`sequitur`] | `egi-sequitur` | linear-time grammar induction |
//! | [`core`] | `egi-core` | rule density curves, single & ensemble detectors |
//! | [`discord`] | `egi-discord` | FFT plans + shared-spectrum MASS, matrix profile (diagonal-parallel STOMP, STAMP), HOTSAX |
//! | [`serve`] | `egi-serve` | multi-stream fleet runtime: batched ingest, fair-share refresh over [`StreamSession`](tskit::session::StreamSession) monitors |
//! | [`eval`] | `egi-eval` | metrics and the experiment harness for every table/figure |

pub use egi_core as core;
pub use egi_discord as discord;
pub use egi_eval as eval;
pub use egi_sax as sax;
pub use egi_sequitur as sequitur;
pub use egi_serve as serve;
pub use egi_tskit as tskit;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use egi_core::{
        AnomalyReport, Candidate, EnsembleConfig, EnsembleDetector, GiConfig, MultiWindowConfig,
        MultiWindowEnsemble, RuleDensityCurve, SingleGiDetector,
    };
    pub use egi_discord::{
        DiscordConfig, DiscordDetector, FftPlan, MassPrecomputed, MatrixProfile, RealFftPlan,
    };
    pub use egi_sax::{NumerosityReduced, SaxConfig, SaxWord};
    pub use egi_sequitur::{Grammar, Sequitur};
    pub use egi_serve::{Fleet, FleetError};
    pub use egi_tskit::gen::UcrFamily;
    pub use egi_tskit::{CorpusSpec, LabeledSeries, TimeSeries};
}
