//! `egi` — command-line anomaly detection on CSV time series.
//!
//! ```text
//! egi detect   <series.csv> --window N [--k 3] [--seed 42] [--n 50]
//!                           [--wmax 10] [--amax 10] [--tau 0.4]
//!                           [--curve curve.csv]
//! egi discord  <series.csv> --window N [--k 3]
//! egi generate <ecg|eeg|walk|fridge|dishwasher|FAMILY> --len L
//!                           [--seed 1] [--out series.csv]
//! ```
//!
//! `detect` runs the ensemble detector (paper defaults), `discord` the
//! STOMP baseline, `generate` any of the built-in synthetic generators
//! (FAMILY is a UCR-style family name such as `GunPoint`, producing a
//! labeled corpus series whose ground truth is printed to stderr).

use egi::prelude::*;
use egi_tskit::io;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  egi detect  <series.csv> --window N [--k 3] [--seed 42] [--n 50] [--wmax 10] [--amax 10] [--tau 0.4] [--curve out.csv]\n  egi discord <series.csv> --window N [--k 3]\n  egi generate <ecg|eeg|walk|fridge|dishwasher|FAMILY> --len L [--seed 1] [--out series.csv]"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().unwrap_or_else(|| {
                eprintln!("flag --{name} needs a value");
                exit(2);
            });
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

fn flag<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("flag --{name}: cannot parse {v:?}");
            exit(2);
        }),
        None => default,
    }
}

fn required<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> T {
    match flags.get(name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("flag --{name}: cannot parse {v:?}");
            exit(2);
        }),
        None => {
            eprintln!("missing required flag --{name}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let (cmd, rest) = (args[0].as_str(), &args[1..]);
    let (positional, flags) = parse_flags(rest);
    match cmd {
        "detect" => cmd_detect(&positional, &flags),
        "discord" => cmd_discord(&positional, &flags),
        "generate" => cmd_generate(&positional, &flags),
        _ => usage(),
    }
}

fn load_series(positional: &[String]) -> Vec<f64> {
    let path = positional.first().unwrap_or_else(|| usage());
    let series = io::read_series(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    if series.is_empty() {
        eprintln!("{path}: no data points");
        exit(1);
    }
    series.into_vec()
}

fn cmd_detect(positional: &[String], flags: &HashMap<String, String>) {
    let series = load_series(positional);
    let window: usize = required(flags, "window");
    let k: usize = flag(flags, "k", 3);
    let seed: u64 = flag(flags, "seed", 42);
    let config = EnsembleConfig {
        window,
        ensemble_size: flag(flags, "n", 50),
        wmax: flag(flags, "wmax", 10),
        amax: flag(flags, "amax", 10),
        selectivity: flag(flags, "tau", 0.4),
        ..EnsembleConfig::default()
    };
    let detector = EnsembleDetector::new(config);
    let t0 = std::time::Instant::now();
    let report = detector.detect(&series, k, seed);
    eprintln!(
        "{} points, window {window}, N={}, τ={:.0}% → {:.2}s",
        series.len(),
        config.ensemble_size,
        config.selectivity * 100.0,
        t0.elapsed().as_secs_f64()
    );
    println!("rank,start,end,mean_density");
    for (i, c) in report.anomalies.iter().enumerate() {
        println!("{},{},{},{:.6}", i + 1, c.start, c.start + c.len, c.score);
    }
    if let Some(curve_path) = flags.get("curve") {
        io::write_series(curve_path, &report.curve).unwrap_or_else(|e| {
            eprintln!("cannot write {curve_path}: {e}");
            exit(1);
        });
        eprintln!("wrote ensemble rule density curve to {curve_path}");
    }
}

fn cmd_discord(positional: &[String], flags: &HashMap<String, String>) {
    let series = load_series(positional);
    let window: usize = required(flags, "window");
    let k: usize = flag(flags, "k", 3);
    let detector = DiscordDetector::new(DiscordConfig::new(window));
    let t0 = std::time::Instant::now();
    let discords = detector.detect(&series, k);
    eprintln!(
        "{} points, window {window} → {:.2}s",
        series.len(),
        t0.elapsed().as_secs_f64()
    );
    println!("rank,start,end,nn_distance");
    for (i, d) in discords.iter().enumerate() {
        println!(
            "{},{},{},{:.6}",
            i + 1,
            d.start,
            d.start + d.len,
            d.distance
        );
    }
}

fn cmd_generate(positional: &[String], flags: &HashMap<String, String>) {
    let kind = positional.first().unwrap_or_else(|| usage()).as_str();
    let len: usize = flag(flags, "len", 20_000);
    let seed: u64 = flag(flags, "seed", 1);
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "series.csv".to_string());
    let mut rng = StdRng::seed_from_u64(seed);
    let series: Vec<f64> = match kind {
        "ecg" => egi::tskit::gen::ecg_series(len, 256, 0.02, &mut rng),
        "eeg" => egi::tskit::gen::eeg_series(len, 128.0, 0.2, &mut rng),
        "walk" => egi::tskit::gen::random_walk(len, 1.0, &mut rng),
        "fridge" => {
            let p = egi::tskit::gen::fridge_freezer_series(len, 900, &mut rng);
            for (i, &(s, l)) in p.anomalies.iter().enumerate() {
                eprintln!("ground truth #{}: [{s}, {})", i + 1, s + l);
            }
            p.values
        }
        "dishwasher" => {
            let cycles = (len / 350).max(4);
            let p = egi::tskit::gen::dishwasher_series(cycles, Some(cycles / 2), &mut rng);
            for (i, &(s, l)) in p.anomalies.iter().enumerate() {
                eprintln!("ground truth #{}: [{s}, {})", i + 1, s + l);
            }
            p.values
        }
        family => match UcrFamily::from_name(family) {
            Some(f) => {
                let ls = CorpusSpec::paper(f).generate_one(&mut rng);
                eprintln!(
                    "ground truth: [{}, {}) (window = {})",
                    ls.gt_start,
                    ls.gt_start + ls.gt_len,
                    ls.gt_len
                );
                ls.series.into_vec()
            }
            None => {
                eprintln!("unknown generator {family:?}");
                exit(2);
            }
        },
    };
    io::write_series(&out, &series).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    eprintln!("wrote {} points to {out}", series.len());
}
