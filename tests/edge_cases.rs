//! Degenerate-input and failure-injection tests across the public API.
//!
//! A library that only behaves on textbook inputs is not adoptable; these
//! tests pin the behaviour on the awkward inputs real users feed it:
//! series shorter than the window, constant series, quantized/stepped
//! series, NaN poisoning, and extreme parameter corners.

use egi::prelude::*;

fn wave(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.21).sin() * 2.0).collect()
}

#[test]
fn ensemble_on_series_shorter_than_window_returns_empty() {
    let det = EnsembleDetector::new(EnsembleConfig {
        window: 100,
        ensemble_size: 5,
        ..EnsembleConfig::default()
    });
    let report = det.detect(&wave(50), 3, 1);
    assert!(report.anomalies.is_empty());
    assert_eq!(report.curve.len(), 50);
}

#[test]
fn ensemble_on_constant_series_does_not_panic() {
    let det = EnsembleDetector::new(EnsembleConfig {
        window: 16,
        ensemble_size: 5,
        ..EnsembleConfig::default()
    });
    let report = det.detect(&[3.25; 400], 3, 1);
    // Constant series: every window is the same word, one token survives
    // numerosity reduction, no rules — a flat-zero curve, candidates tie.
    assert!(report.curve.iter().all(|&v| v == 0.0));
    assert!(!report.anomalies.is_empty());
}

#[test]
fn single_on_stepped_series_does_not_panic() {
    // Quantized sensor output: long flat runs with abrupt steps.
    let mut series = Vec::new();
    for block in 0..40 {
        series.extend(std::iter::repeat_n((block % 3) as f64, 25));
    }
    let det = SingleGiDetector::new(GiConfig::fixed(30));
    let report = det.detect(&series, 3);
    assert_eq!(report.curve.len(), series.len());
}

#[test]
#[should_panic(expected = "non-finite")]
fn ensemble_rejects_nan() {
    let mut series = wave(300);
    series[120] = f64::NAN;
    let det = EnsembleDetector::new(EnsembleConfig {
        window: 30,
        ensemble_size: 4,
        ..EnsembleConfig::default()
    });
    det.detect(&series, 1, 0);
}

#[test]
#[should_panic(expected = "non-finite")]
fn single_rejects_infinity() {
    let mut series = wave(300);
    series[10] = f64::INFINITY;
    SingleGiDetector::new(GiConfig::fixed(30)).detect(&series, 1);
}

#[test]
fn window_equal_to_series_length() {
    let series = wave(64);
    let det = SingleGiDetector::new(GiConfig::fixed(64));
    let report = det.detect(&series, 3);
    // Exactly one window: one token, no grammar, flat curve, 1 candidate.
    assert!(report.anomalies.len() <= 1);
}

#[test]
fn minimal_alphabet_and_paa() {
    let series = wave(500);
    let det = SingleGiDetector::new(GiConfig {
        window: 25,
        sax: SaxConfig::new(1, 2),
    });
    let report = det.detect(&series, 2);
    assert_eq!(report.curve.len(), 500);
}

#[test]
fn maximum_supported_alphabet() {
    let series = wave(400);
    let det = SingleGiDetector::new(GiConfig {
        window: 40,
        sax: SaxConfig::new(10, 26),
    });
    let report = det.detect(&series, 2);
    assert_eq!(report.curve.len(), 400);
}

#[test]
fn discord_on_constant_series() {
    let det = DiscordDetector::new(DiscordConfig::new(10));
    let ds = det.detect(&[5.0; 200], 2);
    // All windows identical → all distances 0; discords exist but carry
    // distance 0 (nothing stands out).
    for d in ds {
        assert_eq!(d.distance, 0.0);
    }
}

#[test]
fn top_k_zero_returns_nothing_everywhere() {
    let series = wave(300);
    let e = EnsembleDetector::new(EnsembleConfig {
        window: 30,
        ensemble_size: 4,
        ..EnsembleConfig::default()
    })
    .detect(&series, 0, 1);
    assert!(e.anomalies.is_empty());
    let s = SingleGiDetector::new(GiConfig::fixed(30)).detect(&series, 0);
    assert!(s.anomalies.is_empty());
    let d = DiscordDetector::new(DiscordConfig::new(30)).detect(&series, 0);
    assert!(d.is_empty());
}

#[test]
fn huge_k_is_clamped_by_geometry() {
    let series = wave(200);
    let report = SingleGiDetector::new(GiConfig::fixed(50)).detect(&series, 1000);
    // At most ⌈200/50⌉ = 4 non-overlapping windows fit.
    assert!(report.anomalies.len() <= 4);
}

#[test]
fn ensemble_selectivity_one_uses_every_member() {
    let series = wave(600);
    let det = EnsembleDetector::new(EnsembleConfig {
        window: 40,
        ensemble_size: 10,
        selectivity: 1.0,
        ..EnsembleConfig::default()
    });
    let diag = det.diagnostics(&series, 3);
    assert_eq!(diag.kept.len(), diag.params.len());
}

#[test]
fn tiny_selectivity_keeps_at_least_one_member() {
    let series = wave(600);
    let det = EnsembleDetector::new(EnsembleConfig {
        window: 40,
        ensemble_size: 10,
        selectivity: 0.01,
        ..EnsembleConfig::default()
    });
    let diag = det.diagnostics(&series, 3);
    assert_eq!(diag.kept.len(), 1);
}
