//! Cross-crate integration tests: the full pipeline from raw series to
//! ranked anomalies, exercised through the facade crate exactly as a
//! downstream user would.

use egi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn labeled(family: UcrFamily, seed: u64) -> LabeledSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    CorpusSpec::paper(family).generate_one(&mut rng)
}

/// End-to-end: ensemble finds the planted anomaly on every dataset family
/// for at least a majority of seeds.
#[test]
fn ensemble_finds_planted_anomalies_across_families() {
    for family in UcrFamily::ALL {
        let mut hits = 0;
        let trials = 3;
        for seed in 0..trials {
            let ls = labeled(family, 100 + seed);
            let det = EnsembleDetector::new(EnsembleConfig {
                window: ls.gt_len,
                ensemble_size: 20,
                ..EnsembleConfig::default()
            });
            let report = det.detect(&ls.series, 3, seed);
            let hit = report
                .anomalies
                .iter()
                .any(|c| c.start.abs_diff(ls.gt_start) < ls.gt_len);
            if hit {
                hits += 1;
            }
        }
        assert!(
            hits * 2 > trials,
            "{family}: only {hits}/{trials} trials hit the planted anomaly"
        );
    }
}

/// The discretize → induce → density pipeline is internally consistent:
/// grammar expansion reproduces the token stream and the density curve
/// length matches the series.
#[test]
fn pipeline_internal_consistency() {
    let ls = labeled(UcrFamily::Wafer, 7);
    let series = ls.series.as_slice();
    let fast = egi::sax::FastSax::new(series);
    let multi = egi::sax::MultiResBreakpoints::new(10);
    let cfg = egi::sax::SaxConfig::new(5, 6);
    let nr = egi::sax::discretize_series(&fast, ls.gt_len, cfg, &multi);
    assert!(!nr.is_empty());

    let tokens = egi::core::intern_tokens(&nr);
    let grammar = egi::sequitur::induce(tokens.iter().copied());
    grammar.verify().expect("grammar invariants");
    assert_eq!(grammar.expand_root(), tokens);

    let curve = egi::core::RuleDensityCurve::build(&grammar, &nr, series.len());
    assert_eq!(curve.len(), series.len());
    assert!(curve.values.iter().all(|&v| v >= 0.0));
}

/// The ensemble at τ = 100% with N = 1 degenerates to a (normalized)
/// single run: both must rank the same top candidate.
#[test]
fn ensemble_of_one_matches_single_run() {
    let ls = labeled(UcrFamily::GunPoint, 3);
    let det = EnsembleDetector::new(EnsembleConfig {
        window: ls.gt_len,
        ensemble_size: 1,
        selectivity: 1.0,
        ..EnsembleConfig::default()
    });
    let params = det.member_params(4);
    assert_eq!(params.len(), 1);
    let ens = det.detect(&ls.series, 1, 4);

    let single = SingleGiDetector::new(GiConfig {
        window: ls.gt_len,
        sax: params[0],
    });
    let sr = single.detect(&ls.series, 1);
    assert_eq!(
        ens.anomalies[0].start, sr.anomalies[0].start,
        "ensemble-of-one diverges from its single member"
    );
}

/// Discord detector and ensemble agree on an easy, blatant anomaly.
#[test]
fn discord_and_ensemble_agree_on_blatant_anomaly() {
    let ls = labeled(UcrFamily::StarLightCurve, 1);
    let window = ls.gt_len;
    let ens = EnsembleDetector::new(EnsembleConfig {
        window,
        ensemble_size: 15,
        ..EnsembleConfig::default()
    })
    .detect(&ls.series, 1, 9);
    let dis = DiscordDetector::new(DiscordConfig::new(window)).detect(&ls.series, 1);

    let e = ens.anomalies[0].start;
    let d = dis[0].start;
    assert!(
        e.abs_diff(ls.gt_start) < window,
        "ensemble missed: {e} vs {}",
        ls.gt_start
    );
    assert!(
        d.abs_diff(ls.gt_start) < window,
        "discord missed: {d} vs {}",
        ls.gt_start
    );
}

/// Seeded runs are bit-reproducible through the public API.
#[test]
fn detection_is_reproducible() {
    let ls = labeled(UcrFamily::Trace, 5);
    let det = EnsembleDetector::new(EnsembleConfig {
        window: ls.gt_len,
        ensemble_size: 12,
        ..EnsembleConfig::default()
    });
    let a = det.detect(&ls.series, 3, 77);
    let b = det.detect(&ls.series, 3, 77);
    assert_eq!(a, b);
}

/// SAX words rendered through the facade look like the paper's examples.
#[test]
fn sax_word_rendering() {
    let sub: Vec<f64> = (0..32).map(|i| (i as f64 / 5.0).sin()).collect();
    let table = egi::sax::BreakpointTable::new(3);
    let word = egi::sax::sax_word(&sub, SaxConfig::new(4, 3), &table);
    assert_eq!(word.len(), 4);
    assert!(word.to_letters().chars().all(|c| ('a'..='c').contains(&c)));
}
