//! Sequence utilities: in-place shuffling.

use crate::{Rng, RngCore};

/// Slice extension trait (the `rand::seq::SliceRandom` surface).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn choose_from_empty_is_none() {
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut StdRng::seed_from_u64(1)).is_none());
    }
}
