//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Implements exactly what this workspace uses: [`rngs::StdRng`] +
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! fully deterministic per seed but are **not** byte-compatible with the
//! real `StdRng` (ChaCha12); nothing in this workspace depends on the
//! exact stream, only on seed-stability.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the stand-in for
/// `rand`'s `Standard` distribution).
pub trait UniformSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a bounded interval (the stand-in
/// for `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Implemented generically over [`SampleUniform`] (one impl per range
/// shape, as in the real crate) so integer-literal ranges infer their
/// type from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(*self.start(), *self.end(), true, rng)
    }
}

/// Maps a uniform `u64` onto `[0, span)` without modulo bias
/// (fixed-point multiply).
#[inline]
fn bounded(rng_out: u64, span: u64) -> u64 {
    ((rng_out as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    lo.wrapping_add(bounded(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Extension methods over any [`RngCore`] (the `rand::Rng` surface).
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its full (or unit, for floats) range.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        rng.gen_range(5usize..5);
    }
}
