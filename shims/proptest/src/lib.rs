//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), numeric range
//! strategies, tuple strategies, [`prop::collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Cases are
//! drawn from a seed derived from the test name, so failures reproduce
//! deterministically. **No shrinking** — a failing case reports its
//! values via the assertion message instead.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — fails the test.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any displayable message.
    pub fn fail<T: std::fmt::Display>(message: T) -> Self {
        TestCaseError::Fail(message.to_string())
    }

    /// Builds a rejection from any displayable message.
    pub fn reject<T: std::fmt::Display>(message: T) -> Self {
        TestCaseError::Reject(message.to_string())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.clone().sample_single(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Collection length specification: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy modules mirroring `proptest::prop` — namespaced strategy
/// constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;

        /// Vec of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Resolves the case count for one run: the configured count, raised
/// to the `PROPTEST_CASES` environment variable when that is set
/// higher. Each harness pins a count sized for the regular test job;
/// the nightly-style CI soak step exports `PROPTEST_CASES` to multiply
/// coverage without touching the sources. (The variable never *lowers*
/// a configured count — a harness that needs many cases to mean
/// anything keeps them.)
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    let env = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(0);
    config.cases.max(env)
}

/// Deterministic per-test RNG, seeded from the test name.
pub fn runner_rng(test_name: &str) -> StdRng {
    let mut seed = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    // Allow overriding for soak runs.
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = extra.parse::<u64>() {
            seed ^= n;
        }
    }
    StdRng::seed_from_u64(seed)
}

/// Entropy check used by the runner loop to avoid infinite rejection.
pub fn check_rejection_budget(attempts: u32, cases: u32, name: &str) {
    if attempts > cases.saturating_mul(50).max(1000) {
        panic!("proptest {name}: too many rejected cases ({attempts} attempts)");
    }
}

#[doc(hidden)]
pub fn __unused_rng_core<R: RngCore>(_: &R) {}

/// The property-test macro. See module docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($binding:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::effective_cases(&__config);
            let mut __rng = $crate::runner_rng(stringify!($name));
            let __strategies = ($($strat,)*);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cases {
                __attempts += 1;
                $crate::check_rejection_budget(__attempts, __cases, stringify!($name));
                let ($($binding,)*) =
                    $crate::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
    )*};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assert_eq failed: {:?} != {:?}",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assert_eq failed: {:?} != {:?}: {}",
                __l,
                __r,
                ::std::format!($($fmt)*)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 20)) {
            prop_assert_eq!(v.len(), 20);
        }

        #[test]
        fn tuples_and_mut_bindings(mut a in 0u32..10, b in (0u32..3, 1usize..4)) {
            a += b.0;
            prop_assert!(a < 13);
            prop_assert!(b.1 >= 1);
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn question_mark_operator_works(_x in 0usize..2) {
            let ok: Result<(), String> = Ok(());
            ok.map_err(TestCaseError::fail)?;
        }
    }
}
