//! Offline stand-in for `serde_json`: renders [`serde::Value`] trees as
//! (pretty) JSON text. Serialization only.

use serde::{Serialize, Value};

/// Serialization error. The shim never actually fails; the type exists
/// so call sites keep serde_json's `Result` shape.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty-prints `value` with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Compact single-line rendering.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let pretty = to_string_pretty(value)?;
    // The writer only inserts structural whitespace after `,` / `:` and
    // around brackets, so re-rendering compactly is a simple strip; do it
    // properly instead by walking the tree again.
    let _ = pretty;
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            out.push_str(&format!("{:.1}", f));
        } else {
            out.push_str(&format!("{}", f));
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in entries.iter().enumerate() {
                out.push_str(&pad_in);
                write_escaped(key, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_object() {
        let v = Value::Obj(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Arr(vec![Value::Float(0.5), Value::Null])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"a\": 1"));
        assert!(text.contains("\"b\": [\n"));
        assert!(text.starts_with("{\n"));
    }

    #[test]
    fn compact_roundtrip_shapes() {
        let v = Value::Arr(vec![Value::Int(-3), Value::Str("x\"y".into())]);
        assert_eq!(to_string(&v).unwrap(), "[-3,\"x\\\"y\"]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }
}
