//! Offline stand-in for `rustc-hash`: the Fx multiply-rotate hasher and
//! the [`FxHashMap`]/[`FxHashSet`] aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: fast, non-cryptographic, excellent for small keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(hash(1), hash(2));
        assert_ne!(hash(0), hash(u64::MAX));
    }
}
