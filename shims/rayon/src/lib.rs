//! Offline stand-in for `rayon`: data parallelism on scoped OS threads.
//!
//! Supports the subset this workspace uses:
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()` — deterministic
//!   output order (slot-indexed), dynamic load balancing via an atomic
//!   work index;
//! * `slice.par_iter().map(f).collect()` / `.for_each(f)`;
//! * [`join`] for two-way fork-join;
//! * [`ThreadPoolBuilder`]`::new().num_threads(n).build()?.install(f)` to
//!   pin the worker count (used by the determinism tests);
//! * [`current_num_threads`].
//!
//! Unlike real rayon there is no global work-stealing pool: each parallel
//! call spawns scoped threads, and *nested* parallel calls run serially on
//! the worker they occur on (preventing thread explosion). Results are
//! independent of the worker count by construction — output slots are
//! indexed, never appended.

use std::cell::Cell;
use std::convert::Infallible;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

thread_local! {
    /// Set on pool workers: nested parallel calls run serially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The worker count a parallel call issued from this thread will use.
pub fn current_num_threads() -> usize {
    if IN_POOL.with(|f| f.get()) {
        return 1;
    }
    let overridden = THREAD_OVERRIDE.with(|t| t.get());
    if overridden > 0 {
        return overridden;
    }
    if let Ok(env) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = env.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    hardware_threads()
}

/// Runs `f` over `items`, returning results in input order.
fn run_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item taken twice");
                    let result = f(item);
                    *out[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

/// Two-way fork-join: runs both closures, in parallel when workers are
/// available, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            IN_POOL.with(|flag| flag.set(true));
            b()
        });
        ra = Some(a());
        rb = Some(handle.join().expect("join arm panicked"));
    });
    (ra.expect("left arm ran"), rb.expect("right arm ran"))
}

/// An eagerly materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; terminate with [`ParMap::collect`] or
    /// [`ParIter::for_each`]-equivalent.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_parallel(self.items, &f);
    }
}

/// A pending parallel map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the map and collects results in input order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_vec(run_parallel(self.items, self.f))
    }
}

/// Collection target of [`ParMap::collect`].
pub trait FromParallel<R> {
    /// Builds the collection from in-order results.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// Item type produced (a reference).
    type Item: Send;

    /// Parallel iterator over references.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// By-mutable-reference conversion into a parallel iterator
/// (mirrors `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type produced (a mutable reference).
    type Item: Send;

    /// Parallel iterator over mutable references.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> ParIter<&'data mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count; `0` means hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim.
    pub fn build(self) -> Result<ThreadPool, Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle carrying a pinned thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing nested parallel
    /// calls on the current thread.
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let previous = THREAD_OVERRIDE.with(|t| t.replace(self.num_threads));
        let result = f();
        THREAD_OVERRIDE.with(|t| t.set(previous));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = data.par_iter().map(|&x| x + 1.0).collect();
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = || -> Vec<u64> {
            (0..257)
                .into_par_iter()
                .map(|i| (i as u64).wrapping_mul(0x9e37))
                .collect()
        };
        let mut outputs = Vec::new();
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(work));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let out: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..4).into_par_iter().map(|j| i * 10 + j).collect();
                inner.into_iter().sum()
            })
            .collect();
        assert_eq!(out.len(), 8);
        assert_eq!(out[1], 10 + 11 + 12 + 13);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn for_each_visits_everything() {
        let counter = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            (0..4).into_par_iter().for_each(|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }
}
