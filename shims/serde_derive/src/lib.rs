//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the two shapes this workspace
//! uses — structs with named fields (→ JSON object, declaration order)
//! and enums with unit variants (→ JSON string of the variant name) —
//! by hand-parsing the token stream (no `syn`/`quote` available offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
///
/// # Panics
///
/// Panics at compile time on unsupported shapes (tuple structs, generic
/// types, enum variants with payloads).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            pos += 1;
            k
        }
        other => panic!("derive(Serialize): expected `struct` or `enum`, found {other}"),
    };
    let name = match &tokens[pos] {
        TokenTree::Ident(id) => {
            pos += 1;
            id.to_string()
        }
        other => panic!("derive(Serialize): expected type name, found {other}"),
    };
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize) shim does not support generic types ({name})");
    }

    let body = match &tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                let fields = parse_named_fields(&inner, &name);
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
            } else {
                let variants = parse_unit_variants(&inner, &name);
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{name}::{v} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{v}\"))"
                        )
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(", "))
            }
        }
        _ => panic!("derive(Serialize) shim supports only braced {kind} bodies ({name})"),
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n\
         \t\t{body}\n\
         \t}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

/// Advances past `#[...]` attributes (incl. doc comments) and `pub`
/// visibility (incl. `pub(...)`).
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from a named-struct body, in declaration order.
fn parse_named_fields(tokens: &[TokenTree], type_name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize) on {type_name}: expected field name, found {other}"),
        };
        pos += 1;
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => panic!("derive(Serialize) on {type_name}: expected `:` after field {field}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(field);
    }
    fields
}

/// Extracts variant names from a unit-variant enum body.
fn parse_unit_variants(tokens: &[TokenTree], type_name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let variant = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("derive(Serialize) on {type_name}: expected variant, found {other}"),
        };
        pos += 1;
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            Some(TokenTree::Group(_)) => panic!(
                "derive(Serialize) shim on {type_name}: variant {variant} carries data \
                 (only unit variants supported)"
            ),
            Some(other) => {
                panic!("derive(Serialize) on {type_name}: unexpected token {other}")
            }
        }
        variants.push(variant);
    }
    variants
}
