//! Offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface the bench suites use and
//! measures plain wall-clock time: each `Bencher::iter` workload runs
//! `sample_size` times after one warm-up, and the mean/min/median are
//! printed to stdout in a single line per benchmark. No statistics
//! beyond that, no HTML reports, no comparison to saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation (accepted, currently not rendered).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many measured runs each benchmark performs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{group}/{id}: mean {:?}  median {:?}  min {:?}  ({} samples)",
            mean,
            median,
            min,
            sorted.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_with_input(BenchmarkId::new("times", 2), &2u64, |b, &x| {
            b.iter(|| x * 3)
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
