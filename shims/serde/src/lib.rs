//! Offline stand-in for `serde`: a [`Serialize`] trait rendering into a
//! JSON [`Value`] tree, plus the derive macro re-export. Serialization
//! only — nothing in this workspace deserializes.

pub use serde_derive::Serialize;

/// A JSON value tree (the serialization target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
    }

    #[test]
    fn containers_render() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1usize, 2usize).to_value(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }
}
