//! Offline stand-in for `serde`: a [`Serialize`] trait rendering into a
//! JSON [`Value`] tree, the mirroring [`Deserialize`] trait rebuilding
//! values from a tree (the checkpoint/restore subsystem's decode path),
//! plus the derive macro re-export.

pub use serde_derive::Serialize;

/// A JSON value tree (the serialization target).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Value {
    /// Looks up `key` in an [`Value::Obj`]; `None` for missing keys and
    /// for non-object values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Decodes the field `key` of an [`Value::Obj`] into `T`, erroring
    /// on a missing key, a non-object value, or a mismatched shape.
    pub fn field<T: Deserialize>(&self, key: &str) -> Result<T, DeserializeError> {
        let value = self
            .get(key)
            .ok_or_else(|| DeserializeError(format!("missing field `{key}`")))?;
        T::from_value(value).map_err(|e| DeserializeError(format!("field `{key}`: {}", e.0)))
    }
}

/// Why a [`Value`] tree could not be decoded into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeError(pub String);

impl DeserializeError {
    /// Builds an error naming the expected shape and the found value.
    pub fn expected(what: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        DeserializeError(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeserializeError {}

/// Types rebuildable from a JSON [`Value`] — the decode mirror of
/// [`Serialize`]: for every implementor pair,
/// `T::from_value(&t.to_value())` round-trips exactly.
pub trait Deserialize: Sized {
    /// Decodes `value` into `Self`, erroring (never panicking) on any
    /// shape or range mismatch.
    fn from_value(value: &Value) -> Result<Self, DeserializeError>;
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeserializeError> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeserializeError(format!("{n} out of range"))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeserializeError(format!("{n} out of range"))),
                    other => Err(DeserializeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Float(x) => Ok(*x),
            other => Err(DeserializeError::expected("float", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeserializeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeserializeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeserializeError::expected("array", other)),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident : $idx:tt),+; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeserializeError> {
                match value {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeserializeError::expected(
                        concat!("array of ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
    }

    #[test]
    fn containers_render() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1usize, 2usize).to_value(),
            Value::Arr(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&3usize.to_value()), Ok(3));
        assert_eq!(i64::from_value(&(-2i64).to_value()), Ok(-2));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".into()));
        // Non-finite floats survive the Value tree (only the JSON
        // renderer downgrades them — the binary checkpoint codec does
        // not go through it).
        let inf = f64::from_value(&f64::INFINITY.to_value()).unwrap();
        assert_eq!(inf, f64::INFINITY);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 5, 9];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let t = (7usize, -4i32);
        assert_eq!(<(usize, i32)>::from_value(&t.to_value()), Ok(t));
        assert_eq!(Option::<u8>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Value::UInt(3)), Ok(Some(3)));
    }

    #[test]
    fn shape_mismatches_error_not_panic() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Arr(vec![Value::UInt(1)])).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = Value::Obj(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Float(2.5)),
        ]);
        assert_eq!(obj.field::<u64>("a"), Ok(1));
        assert_eq!(obj.field::<f64>("b"), Ok(2.5));
        assert!(obj.field::<u64>("missing").is_err());
        assert!(Value::Null.field::<u64>("a").is_err());
    }
}
