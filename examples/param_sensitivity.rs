//! Figure 1 reproduction: why single-parameter grammar induction is a
//! gamble, and how the ensemble removes the bet.
//!
//! Scores the single-run detector under every (w, a) pair on a dishwasher
//! power trace with one short-heating anomalous cycle, prints the Score
//! landscape, then shows the ensemble matching the best cell without
//! knowing it.
//!
//! Run with: `cargo run --release --example param_sensitivity`

use egi::prelude::*;
use egi_tskit::gen::power::dishwasher_series;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn score(predict: &[usize], gt_start: usize, gt_len: usize) -> f64 {
    predict
        .iter()
        .map(|&p| 1.0 - (p.abs_diff(gt_start) as f64 / gt_len as f64).min(1.0))
        .fold(0.0, f64::max)
}

fn main() {
    let n_cycles = 14;
    let mut rng = StdRng::seed_from_u64(0xD15);
    let profile = dishwasher_series(n_cycles, Some(n_cycles / 2), &mut rng);
    let (gt_start, gt_len) = profile.anomalies[0];
    let window = profile.values.len() / n_cycles;
    println!(
        "dishwasher trace: {} points, anomalous cycle at [{}, {}), window {window}",
        profile.values.len(),
        gt_start,
        gt_start + gt_len
    );

    // The Figure 1 grid: Score for every (w, a).
    println!("\nScore per (w, a) — rows w=2..10, cols a=2..10:");
    let mut best = (0usize, 0usize, -1.0f64);
    for w in 2..=10usize {
        let mut row = format!("  w={w:<2}");
        for a in 2..=10usize {
            let det = SingleGiDetector::new(GiConfig {
                window,
                sax: SaxConfig::new(w.min(window), a),
            });
            let cands: Vec<usize> = det
                .detect(&profile.values, 3)
                .anomalies
                .iter()
                .map(|c| c.start)
                .collect();
            let s = score(&cands, gt_start, gt_len);
            if s > best.2 {
                best = (w, a, s);
            }
            row.push_str(&format!(" {s:.2}"));
        }
        println!("{row}");
    }
    println!(
        "\nbest single run: (w={}, a={}) with Score {:.2} — but you could not have guessed it",
        best.0, best.1, best.2
    );

    // The ensemble needs no guess.
    let det = EnsembleDetector::new(EnsembleConfig {
        window,
        ..EnsembleConfig::default()
    });
    let cands: Vec<usize> = det
        .detect(&profile.values, 3, 1)
        .anomalies
        .iter()
        .map(|c| c.start)
        .collect();
    println!(
        "ensemble (no parameter choice): Score {:.2}",
        score(&cands, gt_start, gt_len)
    );
}
