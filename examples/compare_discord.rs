//! Ensemble grammar induction vs. discord discovery, head to head.
//!
//! Runs both detector families on the same labeled series and reports
//! location accuracy and wall-clock time — a miniature of the paper's
//! Tables 4/5 plus Figure 8 trade-off: the discord (matrix profile) method
//! is exact but quadratic; the ensemble is approximate but linear.
//!
//! Run with: `cargo run --release --example compare_discord -- [family]`
//! where family ∈ {TwoLeadECG, ECGFiveDays, GunPoint, Wafer, Trace,
//! StarLightCurve} (default GunPoint).

use egi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn score(predict: &[usize], gt_start: usize, gt_len: usize) -> f64 {
    predict
        .iter()
        .map(|&p| 1.0 - (p.abs_diff(gt_start) as f64 / gt_len as f64).min(1.0))
        .fold(0.0, f64::max)
}

fn main() {
    let family = std::env::args()
        .nth(1)
        .map(|s| UcrFamily::from_name(&s).expect("unknown dataset family"))
        .unwrap_or(UcrFamily::GunPoint);
    println!(
        "dataset family: {family} (instance length {})",
        family.instance_length()
    );

    let mut rng = StdRng::seed_from_u64(11);
    let spec = CorpusSpec::paper(family);
    let mut ens_scores = Vec::new();
    let mut dis_scores = Vec::new();
    let mut ens_time = 0.0;
    let mut dis_time = 0.0;

    let trials = 5;
    for t in 0..trials {
        let ls = spec.generate_one(&mut rng);
        let window = ls.gt_len;

        let det = EnsembleDetector::new(EnsembleConfig {
            window,
            ..EnsembleConfig::default()
        });
        let t0 = Instant::now();
        let cands: Vec<usize> = det
            .detect(&ls.series, 3, t as u64)
            .anomalies
            .iter()
            .map(|c| c.start)
            .collect();
        ens_time += t0.elapsed().as_secs_f64();
        ens_scores.push(score(&cands, ls.gt_start, ls.gt_len));

        let det = DiscordDetector::new(DiscordConfig::new(window));
        let t0 = Instant::now();
        let cands: Vec<usize> = det.detect(&ls.series, 3).iter().map(|d| d.start).collect();
        dis_time += t0.elapsed().as_secs_f64();
        dis_scores.push(score(&cands, ls.gt_start, ls.gt_len));
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nover {trials} generated series:");
    println!(
        "  ensemble : avg Score {:.3}, total time {:.2} s",
        mean(&ens_scores),
        ens_time
    );
    println!(
        "  discord  : avg Score {:.3}, total time {:.2} s",
        mean(&dis_scores),
        dis_time
    );
    println!(
        "\nper-series Scores (ensemble vs discord): {:?}",
        ens_scores
            .iter()
            .zip(&dis_scores)
            .map(|(e, d)| format!("{e:.2}/{d:.2}"))
            .collect::<Vec<_>>()
    );
}
