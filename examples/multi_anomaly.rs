//! Section 7.5: detecting multiple anomalies in one series.
//!
//! Builds a StarLightCurve-style series of 42 instances (length 43008,
//! matching the paper) containing two planted anomalous light curves, and
//! checks whether both appear among the ensemble's top-3 candidates.
//!
//! Run with: `cargo run --release --example multi_anomaly`

use egi::prelude::*;
use egi_tskit::corpus::generate_multi_anomaly;
use egi_tskit::window::intervals_overlap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let family = UcrFamily::StarLightCurve;
    let window = family.instance_length();

    let mut rng = StdRng::seed_from_u64(31);
    let m = generate_multi_anomaly(family, 42, 2, &mut rng);
    println!(
        "series of {} points with {} planted anomalies:",
        m.series.len(),
        m.ground_truth.len()
    );
    for (i, &(s, l)) in m.ground_truth.iter().enumerate() {
        println!("  ground truth #{}: [{s}, {})", i + 1, s + l);
    }

    let detector = EnsembleDetector::new(EnsembleConfig {
        window,
        ..EnsembleConfig::default()
    });
    let report = detector.detect(&m.series, 3, 5);

    println!("\ntop-3 candidates:");
    let mut found = vec![false; m.ground_truth.len()];
    for (rank, c) in report.anomalies.iter().enumerate() {
        let hit = m
            .ground_truth
            .iter()
            .position(|&(gs, gl)| intervals_overlap(c.start, c.len, gs, gl));
        if let Some(i) = hit {
            found[i] = true;
        }
        println!(
            "  #{} [{}, {}) — {}",
            rank + 1,
            c.start,
            c.start + c.len,
            match hit {
                Some(i) => format!("overlaps ground truth #{}", i + 1),
                None => "no overlap".into(),
            }
        );
    }
    println!(
        "\ndetected {} of {} planted anomalies",
        found.iter().filter(|&&f| f).count(),
        found.len()
    );
}
