//! Figures 4 & 5: rule density curves on an ECG trace.
//!
//! Reproduces the paper's two illustration figures: (4) the rule density
//! curve of an ECG series dips exactly at the planted premature beat, and
//! (5) the standard-deviation ranking separates informative ensemble
//! members (top-2 by std: clear dip at the anomaly) from uninformative
//! ones (bottom-2: flat, useless).
//!
//! Writes `density_curves.csv` with the series, the ensemble curve, and
//! the four illustrative member curves for external plotting.
//!
//! Run with: `cargo run --release --example density_curves`

use egi::core::MemberDiagnostics;
use egi::prelude::*;
use egi_tskit::gen::ecg::{ecg_beat, EcgParams};

fn main() {
    // An ECG trace of 30 beats with one ectopic beat, like Figure 4.top.
    let beat_len = 120;
    let normal = ecg_beat(beat_len, &EcgParams::default());
    let ectopic = ecg_beat(beat_len, &EcgParams::ectopic());
    let mut series = Vec::new();
    let anomaly_beat = 17;
    let mut gt = 0;
    for b in 0..30 {
        if b == anomaly_beat {
            gt = series.len();
            series.extend_from_slice(&ectopic);
        } else {
            series.extend_from_slice(&normal);
        }
    }
    println!(
        "ECG series: {} points, ectopic beat at [{gt}, {})",
        series.len(),
        gt + beat_len
    );

    let detector = EnsembleDetector::new(EnsembleConfig {
        window: beat_len,
        ..EnsembleConfig::default()
    });
    let diag: MemberDiagnostics = detector.diagnostics(&series, 4);

    // Rank members by std (descending) to pick top-2 and bottom-2.
    let mut order: Vec<usize> = (0..diag.stds.len()).collect();
    order.sort_by(|&x, &y| diag.stds[y].partial_cmp(&diag.stds[x]).unwrap());
    println!("\nmember std ranking (Figure 5):");
    for (rank, &i) in order.iter().take(2).enumerate() {
        println!(
            "  top-{}  {}: std {:.3}",
            rank + 1,
            diag.params[i],
            diag.stds[i]
        );
    }
    for (rank, &i) in order.iter().rev().take(2).enumerate() {
        println!(
            "  bottom-{} {}: std {:.3}",
            rank + 1,
            diag.params[i],
            diag.stds[i]
        );
    }

    // The combined ensemble curve (Figure 4.bottom analogue): where is
    // its minimum?
    let report = detector.detect(&series, 1, 4);
    let c = &report.anomalies[0];
    println!(
        "\nensemble curve minimum window [{}, {}) — ground truth [{gt}, {})",
        c.start,
        c.start + c.len,
        gt + beat_len
    );
    println!(
        "anomaly {} (|Δ| = {} points)",
        if c.start.abs_diff(gt) < beat_len {
            "FOUND"
        } else {
            "missed"
        },
        c.start.abs_diff(gt)
    );

    // Export for plotting.
    let top2: Vec<usize> = order[..2].to_vec();
    let bottom2: Vec<usize> = order[order.len() - 2..].to_vec();
    let cols: Vec<(&str, &[f64])> = vec![
        ("series", &series),
        ("ensemble_curve", &report.curve),
        ("member_top1", &diag.curves[top2[0]].values),
        ("member_top2", &diag.curves[top2[1]].values),
        ("member_bottom1", &diag.curves[bottom2[0]].values),
        ("member_bottom2", &diag.curves[bottom2[1]].values),
    ];
    egi::tskit::io::write_columns("density_curves.csv", &cols).expect("write CSV");
    println!("\nwrote density_curves.csv (series + 5 curves) for plotting");
}
