//! Quickstart: detect a planted anomaly in an ECG-style series.
//!
//! Mirrors the paper's Figure 4 setting — a long repetitive ECG trace with
//! one premature (ectopic) beat — and shows the whole API surface: corpus
//! generation, single-run detection, ensemble detection, and reading the
//! rule density curve.
//!
//! Run with: `cargo run --release --example quickstart`

use egi::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate a labeled test series the way the paper does
    //    (Section 7.1.1): 20 normal instances + 1 planted anomaly.
    let mut rng = StdRng::seed_from_u64(7);
    let spec = CorpusSpec::paper(UcrFamily::TwoLeadEcg);
    let labeled = spec.generate_one(&mut rng);
    println!(
        "series: {} points, anomaly planted at [{}, {})",
        labeled.series.len(),
        labeled.gt_start,
        labeled.gt_start + labeled.gt_len
    );

    // 2. A single-parameter run (the GrammarViz baseline). The fixed
    //    generic parameters w = 4, a = 4 may or may not work here —
    //    exactly the gamble the paper's Figure 1 warns about.
    let single = SingleGiDetector::new(GiConfig::fixed(labeled.gt_len));
    let report = single.detect(&labeled.series, 3);
    print_report("single run (w=4, a=4)", &report, &labeled);

    // 3. The ensemble (Algorithm 1, paper defaults: N = 50,
    //    wmax = amax = 10, τ = 40%).
    let config = EnsembleConfig {
        window: labeled.gt_len,
        ..EnsembleConfig::default()
    };
    let ensemble = EnsembleDetector::new(config);
    let report = ensemble.detect(&labeled.series, 3, 42);
    print_report("ensemble (N=50)", &report, &labeled);

    // 4. The rule density curve is part of the report: its minimum is
    //    where the detector thinks the structure breaks down.
    let (argmin, min) = report
        .curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!("density curve minimum {min:.3} at point {argmin}");
}

fn print_report(label: &str, report: &AnomalyReport, labeled: &LabeledSeries) {
    println!("\n{label}:");
    for (rank, c) in report.anomalies.iter().enumerate() {
        let err = c.start.abs_diff(labeled.gt_start);
        let hit = if err < labeled.gt_len { "HIT " } else { "miss" };
        println!(
            "  #{} start={:<6} mean-density={:.3}  [{hit}] |Δ| = {err}",
            rank + 1,
            c.start,
            c.score
        );
    }
}
