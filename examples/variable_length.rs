//! Variable-length anomaly detection with the multi-window ensemble — the
//! extension beyond the paper (see `egi::core::multiwindow`).
//!
//! Builds an ECG-style trace containing a *short* anomaly (one ectopic
//! beat) and a *long* anomaly (a run of three ectopic beats), then shows:
//! (1) a fixed-window ensemble tuned to either length tends to describe
//! only the matching event; (2) the multi-window ensemble reports both,
//! with candidates of the appropriate lengths.
//!
//! Run with: `cargo run --release --example variable_length`

use egi::prelude::*;
use egi_tskit::gen::ecg::{ecg_beat, EcgParams};
use egi_tskit::window::intervals_overlap;

fn main() {
    let beat = 100usize;
    let normal = ecg_beat(beat, &EcgParams::default());
    let weird = ecg_beat(beat, &EcgParams::ectopic());
    let mut series = Vec::new();
    let mut short_gt = (0usize, beat);
    let mut long_gt = (0usize, 3 * beat);
    for b in 0..40 {
        match b {
            10 => {
                short_gt.0 = series.len();
                series.extend_from_slice(&weird);
            }
            25 => {
                long_gt.0 = series.len();
                for _ in 0..3 {
                    series.extend_from_slice(&weird);
                }
            }
            _ => series.extend_from_slice(&normal),
        }
    }
    println!(
        "series: {} points; short anomaly [{}, {}), long anomaly [{}, {})",
        series.len(),
        short_gt.0,
        short_gt.0 + short_gt.1,
        long_gt.0,
        long_gt.0 + long_gt.1
    );

    let describe = |label: &str, cands: &[Candidate]| {
        println!("\n{label}:");
        for (i, c) in cands.iter().enumerate() {
            let tag = if intervals_overlap(c.start, c.len, short_gt.0, short_gt.1) {
                "short anomaly"
            } else if intervals_overlap(c.start, c.len, long_gt.0, long_gt.1) {
                "long anomaly"
            } else {
                "false positive"
            };
            println!(
                "  #{} [{}, {}) len {} — {tag}",
                i + 1,
                c.start,
                c.start + c.len,
                c.len
            );
        }
    };

    // Fixed-window baselines.
    for w in [beat, 3 * beat] {
        let det = EnsembleDetector::new(EnsembleConfig {
            window: w,
            ..EnsembleConfig::default()
        });
        let report = det.detect(&series, 2, 7);
        describe(&format!("fixed window n = {w}"), &report.anomalies);
    }

    // The multi-window extension.
    let det = MultiWindowEnsemble::new(MultiWindowConfig {
        windows: vec![beat, 2 * beat, 3 * beat],
        base: EnsembleConfig::default(),
        suppression_margin: None,
    });
    let report = det.detect(&series, 2, 7);
    describe(
        "multi-window ensemble n ∈ {100, 200, 300}",
        &report.anomalies,
    );

    let both = [short_gt, long_gt].iter().all(|&(s, l)| {
        report
            .anomalies
            .iter()
            .any(|c| intervals_overlap(c.start, c.len, s, l))
    });
    println!(
        "\nmulti-window ensemble recovered both events: {}",
        if both { "yes" } else { "no" }
    );
}
