//! Figure 9 case study: anomalies in fridge-freezer power usage.
//!
//! Generates a long compressor-cycle power trace (the stand-in for the
//! REFIT fridge-freezer data, see DESIGN.md) with two planted anomalous
//! events of *different kinds* — an unusually shaped cycle and a
//! spike-burst event — and asks the ensemble for its top-2 candidates.
//! The paper's point: grammar induction handles variable-length anomalies
//! in one linear pass where discord search would need one quadratic run
//! per candidate length.
//!
//! Run with: `cargo run --release --example power_usage -- [length]`

use egi::prelude::*;
use egi_tskit::gen::power::fridge_freezer_series;
use egi_tskit::window::intervals_overlap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let total_len: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("length must be an integer"))
        .unwrap_or(120_000);
    let cycle = 900; // ≈ one compressor cycle, the paper's window choice

    let mut rng = StdRng::seed_from_u64(2020);
    let profile = fridge_freezer_series(total_len, cycle, &mut rng);
    println!(
        "generated {} points of fridge-freezer power usage; planted events:",
        profile.values.len()
    );
    for (i, &(s, l)) in profile.anomalies.iter().enumerate() {
        println!("  ground truth #{}: [{s}, {})", i + 1, s + l);
    }

    let detector = EnsembleDetector::new(EnsembleConfig {
        window: cycle,
        ..EnsembleConfig::default()
    });
    let t0 = std::time::Instant::now();
    let report = detector.detect(&profile.values, 2, 99);
    println!(
        "\nensemble detection over {} points took {:.2} s",
        total_len,
        t0.elapsed().as_secs_f64()
    );

    let mut recovered = 0;
    for (rank, c) in report.anomalies.iter().enumerate() {
        let matched = profile
            .anomalies
            .iter()
            .position(|&(gs, gl)| intervals_overlap(c.start, c.len, gs, gl));
        if matched.is_some() {
            recovered += 1;
        }
        println!(
            "  top-{} candidate at [{}, {}) — {}",
            rank + 1,
            c.start,
            c.start + c.len,
            match matched {
                Some(i) => format!("matches ground truth #{}", i + 1),
                None => "no ground-truth overlap".to_string(),
            }
        );
    }
    println!(
        "\nrecovered {recovered} of {} planted events in the top-2 candidates",
        profile.anomalies.len()
    );
}
