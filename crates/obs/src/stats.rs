//! Per-session counters shared by every streaming monitor.
//!
//! Each `StreamSession` implementation embeds one [`SessionStats`]
//! value (plain `u64` fields, no atomics — sessions are `&mut self`
//! state machines) and returns a copy from its `metrics()` accessor.
//! The struct is deliberately not serialized into checkpoints:
//! telemetry describes a process, not the resumable numeric state.

/// Lifetime counters for one streaming session, updated in-place by
/// the session's `append`/`evict`/`step` paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `append` calls.
    pub appends: u64,
    /// Points ingested across all appends.
    pub points_appended: u64,
    /// `evict`/retention trims that removed at least one point.
    pub evictions: u64,
    /// Points retired across all evictions.
    pub points_evicted: u64,
    /// Completed `step()` units (queries served).
    pub steps: u64,
    /// Times the pending queue drained to empty (the session caught
    /// up with its inputs).
    pub caught_up: u64,
    /// Staleness: points appended since the session last caught up.
    /// Zero while current; grows with every append until the next
    /// drain.
    pub staleness_points: u64,
    /// Structural staleness: points of the session's current snapshot
    /// served from a carry-over (zero-padding beyond a member's last
    /// refresh, or a post-eviction shifted curve) instead of healed
    /// coverage. Distinct from `staleness_points` — an eviction adds
    /// no points yet structurally stales the whole window until the
    /// replay heals it. Sessions maintain it via
    /// [`SessionStats::set_structural_staleness`] after every
    /// append/evict/step; sessions without a structural carry notion
    /// leave it zero.
    pub structural_staleness: u64,
}

impl SessionStats {
    /// Records an append of `points` raw points; `now_current` is
    /// whether the session has no pending work afterwards (e.g. still
    /// warming up), in which case nothing is stale.
    #[inline]
    pub fn record_append(&mut self, points: u64, now_current: bool) {
        self.appends += 1;
        self.points_appended += points;
        if now_current {
            self.staleness_points = 0;
        } else {
            self.staleness_points += points;
        }
    }

    /// Records an eviction of `points` raw points; `now_current` is
    /// whether the session has no pending work afterwards.
    #[inline]
    pub fn record_evict(&mut self, points: u64, now_current: bool) {
        if points > 0 {
            self.evictions += 1;
            self.points_evicted += points;
        }
        if now_current {
            self.staleness_points = 0;
        }
    }

    /// Records one completed `step()` unit; `now_current` is whether
    /// the pending queue drained to empty with this unit.
    #[inline]
    pub fn record_step(&mut self, now_current: bool) {
        self.steps += 1;
        if now_current {
            self.caught_up += 1;
            self.staleness_points = 0;
        }
    }

    /// Sets the structural-staleness gauge — the session recomputes
    /// the healed-coverage deficit after each append/evict/step and
    /// records it here (a level, not an accumulating counter).
    #[inline]
    pub fn set_structural_staleness(&mut self, points: u64) {
        self.structural_staleness = points;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staleness_resets_when_caught_up() {
        let mut s = SessionStats::default();
        s.record_append(10, false);
        s.record_append(5, false);
        assert_eq!(s.staleness_points, 15);
        s.record_step(false);
        assert_eq!(s.staleness_points, 15);
        s.record_step(true);
        assert_eq!(s.staleness_points, 0);
        assert_eq!(s.caught_up, 1);
        assert_eq!(s.steps, 2);
        s.record_append(3, false);
        s.record_evict(2, true);
        assert_eq!(s.staleness_points, 0);
        assert_eq!(s.evictions, 1);
        s.record_evict(0, false);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn structural_staleness_is_a_level_not_a_counter() {
        let mut s = SessionStats::default();
        assert_eq!(s.structural_staleness, 0);
        // An eviction appends nothing, so queue staleness stays zero —
        // but the session reports the whole unhealed window.
        s.record_evict(4, true);
        s.set_structural_staleness(128);
        assert_eq!(s.staleness_points, 0);
        assert_eq!(s.structural_staleness, 128);
        // Levels overwrite; they never accumulate.
        s.set_structural_staleness(64);
        assert_eq!(s.structural_staleness, 64);
        s.set_structural_staleness(0);
        assert_eq!(s.structural_staleness, 0);
    }
}
