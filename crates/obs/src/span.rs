//! Span timers: measure a region's wall time in integer nanoseconds
//! and feed it to a latency [`Histogram`](crate::Histogram).
//!
//! Timers respect the global [`enabled`](crate::enabled) switch at
//! start time: when observability is off, [`SpanTimer::start`] skips
//! the clock read entirely, so "bare" runs pay nothing but a relaxed
//! atomic load per span.

use std::time::Instant;

use crate::Histogram;

/// A started span. Stop it with [`record`](Self::record) to add the
/// elapsed nanoseconds to a histogram, or read
/// [`elapsed_nanos`](Self::elapsed_nanos) directly.
#[derive(Debug, Clone, Copy)]
#[must_use = "a span that is never stopped measures nothing"]
pub struct SpanTimer {
    start: Option<Instant>,
}

impl SpanTimer {
    /// Starts a span — a no-op (no clock read) when observability is
    /// globally disabled.
    #[inline]
    pub fn start() -> Self {
        Self {
            start: crate::enabled().then(Instant::now),
        }
    }

    /// A span that never records, regardless of the global switch.
    pub const fn disabled() -> Self {
        Self { start: None }
    }

    /// Whether this span is live (observability was enabled at start).
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }

    /// Nanoseconds since start, saturating at `u64::MAX`; `None` when
    /// the span was started disabled.
    #[inline]
    pub fn elapsed_nanos(&self) -> Option<u64> {
        self.start
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// Stops the span, recording the elapsed nanoseconds into
    /// `histogram`. Returns the recorded value (zero when disabled).
    #[inline]
    pub fn record(self, histogram: &Histogram) -> u64 {
        match self.elapsed_nanos() {
            Some(nanos) => {
                histogram.record(nanos);
                nanos
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let h = Histogram::new();
        let span = SpanTimer::disabled();
        assert!(!span.is_live());
        assert_eq!(span.record(&h), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn live_span_records_one_sample() {
        let h = Histogram::new();
        let span = SpanTimer::start();
        assert!(span.is_live());
        span.record(&h);
        assert_eq!(h.count(), 1);
    }
}
