//! A bounded ring buffer of scheduler-decision events.
//!
//! The serving fleet pushes one event per scheduling decision (which
//! stream ran, what was left pending); the ring keeps the most recent
//! `capacity` so a stalled or unfair schedule can be reconstructed
//! after the fact without unbounded memory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One traced decision: a static tag plus two `u64` operands whose
/// meaning the tag defines (e.g. stream id and pending units).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number across the ring's lifetime.
    pub seq: u64,
    /// Static label naming the decision kind.
    pub tag: &'static str,
    /// First operand (tag-defined).
    pub a: u64,
    /// Second operand (tag-defined).
    pub b: u64,
}

/// Fixed-capacity event ring. Pushes take a short mutex critical
/// section (one `VecDeque` rotation); reads copy the events out.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    pushed: AtomicU64,
}

impl TraceRing {
    /// A ring retaining the `capacity.max(1)` most recent events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            pushed: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, tag: &'static str, a: u64, b: u64) {
        let seq = self.pushed.fetch_add(1, Ordering::Relaxed);
        let mut events = lock(&self.events);
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(TraceEvent { seq, tag, a, b });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.events).iter().copied().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (retained + evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Drops all retained events (the sequence counter keeps going).
    pub fn clear(&self) {
        lock(&self.events).clear();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push("unit", i, 10 + i);
        }
        let events: Vec<_> = ring.events().iter().map(|e| (e.seq, e.a)).collect();
        assert_eq!(events, vec![(2, 2), (3, 3), (4, 4)]);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.len(), 3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.pushed(), 5);
    }
}
