//! Atomic metric primitives: counters, gauges, and fixed log2-bucket
//! histograms.
//!
//! Everything here is `u64`-only on purpose: recording a metric never
//! constructs, converts, or rounds a floating-point value, so
//! instrumented code paths cannot perturb the crate-wide `f64`
//! bit-parity contracts by construction. All atomics use relaxed
//! ordering — metrics are monotonic advisory data, not
//! synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per bit length
/// (`1..=64`), so every `u64` maps to exactly one bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: `0` for zero, otherwise the value's
/// bit length (`64 - leading_zeros`). Bucket `i ≥ 1` therefore holds
/// the half-open power-of-two range `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`: `0`, then `2^i - 1`, with the
/// last bucket capped at `u64::MAX`.
///
/// # Panics
///
/// Panics if `i >= HISTOGRAM_BUCKETS`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping, as all `u64` counters ultimately are).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (bench section isolation; not for hot paths).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-writer-wins atomic gauge for instantaneous levels
/// (queue depths, live stream counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed-layout histogram over `u64` samples with log2 buckets:
/// bucket 0 holds zeros, bucket `i` holds `[2^(i-1), 2^i)`. Recording
/// is three relaxed `fetch_add`s — lock-free and allocation-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`; a const item repeats per element.
        // The interior mutability is exactly the point here — each
        // array slot gets its own fresh atomic, nothing is shared.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the full state. Concurrent recording
    /// may make `count`/`sum`/buckets mutually slightly stale; each
    /// field is individually consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Resets all buckets, count, and sum to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Owned copy of a [`Histogram`]'s state, with integer-only summary
/// helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts, `HISTOGRAM_BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples (wrapping).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Integer mean (floor), zero when empty.
    pub fn mean_floor(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `numer/denom` quantile
    /// (rank `ceil(count·numer/denom)`, clamped to `1..=count`).
    /// Returns zero when empty. Integer arithmetic throughout.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn quantile_upper_bound(&self, numer: u64, denom: u64) -> u64 {
        assert!(denom > 0, "quantile denominator must be positive");
        if self.count == 0 {
            return 0;
        }
        let rank = ((u128::from(self.count) * u128::from(numer)).div_ceil(u128::from(denom)))
            .clamp(1, u128::from(self.count));
        let mut cumulative = 0u128;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += u128::from(n);
            if cumulative >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound of the highest non-empty bucket (an upper estimate
    /// of the maximum sample), zero when empty.
    pub fn max_upper_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(i, _)| bucket_upper_bound(i))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        for v in [0, 1, 2, 4, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 15);
        assert_eq!(s.quantile_upper_bound(1, 2), bucket_upper_bound(2));
        assert_eq!(s.quantile_upper_bound(1, 1), bucket_upper_bound(4));
        assert_eq!(s.max_upper_bound(), bucket_upper_bound(4));
        assert_eq!(s.mean_floor(), 3);
    }
}
