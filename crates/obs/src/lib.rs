//! # egi-obs — zero-dependency observability for the egi stack
//!
//! Atomic counters, gauges, fixed log2-bucket histograms, span
//! timers, and a ring-buffer event trace, behind a process-wide
//! [`ObsRegistry`]. No external dependencies, no allocation on the
//! recording path, and — by construction — no `f64` anywhere:
//! recording a metric only ever touches `u64` atomics and the
//! monotonic clock, so instrumented numeric code cannot drift from
//! its bit-parity contracts.
//!
//! ## Quickstart
//!
//! ```
//! use egi_obs::{counter, histogram, SpanTimer};
//!
//! // Handles are cached per call site; steady state is one atomic op.
//! counter!("egi_demo_queries_total").inc();
//!
//! let span = SpanTimer::start();
//! let answer = (0..100u64).sum::<u64>(); // ... the work being timed ...
//! span.record(histogram!("egi_demo_query_nanos"));
//!
//! assert_eq!(answer, 4950);
//! assert_eq!(counter!("egi_demo_queries_total").get(), 1);
//! let text = egi_obs::global().render_prometheus();
//! assert!(text.contains("egi_demo_queries_total 1"));
//! ```
//!
//! ## Naming conventions
//!
//! `egi_<tier>_<what>[_<unit>]`, snake_case: counters end in
//! `_total`, latency histograms in `_nanos`, size histograms in
//! `_bytes` or `_points`; gauges are bare nouns
//! (`egi_fleet_dirty_streams`). Tiers in this workspace: `fft`,
//! `mass`, `session`, `monitor`, `fleet`, `checkpoint`.
//!
//! ## The never-touches-f64 invariant
//!
//! Every recorded value is a `u64` (a count, a byte size, or integer
//! nanoseconds from [`SpanTimer`]). The crate exposes no
//! floating-point API at all; ratios (cache hit rate, coalescing
//! factor) are left to consumers as `u64` numerator/denominator
//! pairs. Instrumentation therefore cannot reorder, round, or
//! otherwise perturb any `f64` computation it observes — the
//! bit-parity gates hold with metrics enabled.
//!
//! ## Disabling
//!
//! [`set_enabled`]`(false)` turns span timers into no-ops (no clock
//! reads) and is the "bare" arm of the bench's instrumented-vs-bare
//! overhead row. Plain counter/gauge increments stay live — they are
//! single relaxed atomic adds, far below measurement noise.

mod metrics;
mod registry;
mod span;
mod stats;
mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use registry::{ObsRegistry, RegistrySnapshot, DEFAULT_TRACE_CAPACITY};
pub use span::SpanTimer;
pub use stats::SessionStats;
pub use trace::{TraceEvent, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether observability is globally enabled (the default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables observability. Disabling stops span
/// timers (and any call site that gates on [`enabled`]) from reading
/// the clock; registered metrics keep their values.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry every instrumented tier records into.
pub fn global() -> &'static ObsRegistry {
    static GLOBAL: ObsRegistry = ObsRegistry::new();
    &GLOBAL
}

/// A `&'static Counter` from the [`global`] registry, resolved once
/// per call site and cached in a `OnceLock`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().counter($name)))
    }};
}

/// A `&'static Gauge` from the [`global`] registry, cached per call
/// site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().gauge($name)))
    }};
}

/// A `&'static Histogram` from the [`global`] registry, cached per
/// call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().histogram($name)))
    }};
}

/// A `&'static TraceRing` from the [`global`] registry, cached per
/// call site; `$cap` sets the capacity on first creation.
#[macro_export]
macro_rules! trace {
    ($name:expr) => {
        $crate::trace!($name, $crate::DEFAULT_TRACE_CAPACITY)
    };
    ($name:expr, $cap:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::TraceRing>> =
            ::std::sync::OnceLock::new();
        ::std::sync::Arc::as_ref(HANDLE.get_or_init(|| $crate::global().trace($name, $cap)))
    }};
}
