//! The metric registry: named counters, gauges, histograms, and trace
//! rings behind one mutex, with deterministic text expositions.
//!
//! The mutex guards only registration (name → handle lookup); every
//! returned handle is an `Arc` whose recording operations are
//! lock-free. Hot paths should resolve their handle once — the
//! [`counter!`](crate::counter), [`gauge!`](crate::gauge),
//! [`histogram!`](crate::histogram), and [`trace!`](crate::trace)
//! macros cache the `Arc` in a per-call-site `OnceLock` so steady
//! state is a single atomic load.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot};
use crate::trace::TraceRing;

/// Default retained capacity for trace rings created through the
/// registry.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    traces: BTreeMap<&'static str, Arc<TraceRing>>,
}

/// A named-metric registry. [`crate::global`] returns the process-wide
/// instance; local instances are handy for golden tests.
#[derive(Debug)]
pub struct ObsRegistry {
    inner: Mutex<Inner>,
}

impl Default for ObsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsRegistry {
    /// An empty registry (`const`, so it can back a plain `static`).
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                traces: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(name).or_default())
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.lock().gauges.entry(name).or_default())
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(self.lock().histograms.entry(name).or_default())
    }

    /// The trace ring registered under `name`, created on first use
    /// with `capacity` retained events (an existing ring keeps its
    /// original capacity).
    pub fn trace(&self, name: &'static str, capacity: usize) -> Arc<TraceRing> {
        Arc::clone(
            self.lock()
                .traces
                .entry(name)
                .or_insert_with(|| Arc::new(TraceRing::new(capacity))),
        )
    }

    /// Zeroes every registered metric in place (handles stay valid)
    /// and clears trace rings. For bench section isolation and tests.
    pub fn reset(&self) {
        let inner = self.lock();
        for c in inner.counters.values() {
            c.reset();
        }
        for g in inner.gauges.values() {
            g.reset();
        }
        for h in inner.histograms.values() {
            h.reset();
        }
        for t in inner.traces.values() {
            t.clear();
        }
    }

    /// A point-in-time copy of every registered metric, keyed by name
    /// in sorted order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        RegistrySnapshot {
            counters: inner.counters.iter().map(|(&k, v)| (k, v.get())).collect(),
            gauges: inner.gauges.iter().map(|(&k, v)| (k, v.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k, v.snapshot()))
                .collect(),
        }
    }

    /// Prometheus text exposition (version 0.0.4 line format), metrics
    /// in sorted name order so the output is byte-deterministic for a
    /// given state. Histograms emit cumulative `_bucket{le="..."}`
    /// lines for non-empty buckets (plus the mandatory `+Inf`),
    /// `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// JSON object with sorted `counters`, `gauges`, and `histograms`
    /// maps — the dump the `discord-perf` bench embeds into
    /// BENCH_discord.json. Histogram buckets serialize as
    /// `[upper_bound, cumulative_count]` pairs for non-empty buckets.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// Owned, sorted copy of a registry's state (traces excluded — pull
/// events from the ring handle directly).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// See [`ObsRegistry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le = bucket_upper_bound(i);
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// See [`ObsRegistry::render_json`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_scalar_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_scalar_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            let mut cumulative = 0u64;
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{},{cumulative}]", bucket_upper_bound(b)));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn push_scalar_map(out: &mut String, map: &BTreeMap<&'static str, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let reg = ObsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x_total").get(), 3);
        reg.reset();
        assert_eq!(a.get(), 0);
    }

    #[test]
    fn json_is_sorted_and_compact() {
        let reg = ObsRegistry::new();
        reg.counter("b_total").add(2);
        reg.counter("a_total").inc();
        reg.gauge("g").set(7);
        reg.histogram("h_nanos").record(5);
        assert_eq!(
            reg.render_json(),
            "{\"counters\":{\"a_total\":1,\"b_total\":2},\"gauges\":{\"g\":7},\
             \"histograms\":{\"h_nanos\":{\"count\":1,\"sum\":5,\"buckets\":[[7,1]]}}}"
        );
    }
}
