//! Integration tests for egi-obs: histogram bucket boundaries,
//! concurrent recording from rayon workers, and a golden test pinning
//! the Prometheus exposition byte for byte.

use egi_obs::{
    bucket_index, bucket_upper_bound, Counter, Histogram, ObsRegistry, HISTOGRAM_BUCKETS,
};

#[test]
fn bucket_boundaries_zero_one_and_max() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(1), 1);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

#[test]
fn exact_powers_of_two_open_a_new_bucket() {
    for i in 1..64u32 {
        let p = 1u64 << i;
        // 2^i is the first value of bucket i+1; 2^i − 1 is the last of
        // bucket i.
        assert_eq!(bucket_index(p), i as usize + 1, "2^{i}");
        assert_eq!(bucket_index(p - 1), i as usize, "2^{i} - 1");
        assert_eq!(bucket_upper_bound(i as usize), p - 1);
    }
}

#[test]
fn every_value_lands_in_exactly_one_bucket_with_matching_bound() {
    let h = Histogram::new();
    let probes = [
        0u64,
        1,
        2,
        3,
        4,
        7,
        8,
        255,
        256,
        1 << 32,
        (1 << 40) - 1,
        u64::MAX / 2,
        u64::MAX,
    ];
    for &v in &probes {
        h.record(v);
        let i = bucket_index(v);
        assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            assert!(v > bucket_upper_bound(i - 1));
        }
    }
    let s = h.snapshot();
    assert_eq!(s.count, probes.len() as u64);
    assert_eq!(s.buckets.iter().sum::<u64>(), probes.len() as u64);
    assert_eq!(s.max_upper_bound(), u64::MAX);
}

#[test]
fn concurrent_increments_from_rayon_workers_lose_nothing() {
    use rayon::prelude::*;

    let counter = Counter::new();
    let histogram = Histogram::new();
    const WORKERS: u64 = 64;
    const PER_WORKER: u64 = 1000;
    (0..WORKERS as usize).into_par_iter().for_each(|w| {
        for i in 0..PER_WORKER {
            counter.inc();
            histogram.record(w as u64 * PER_WORKER + i);
        }
    });
    assert_eq!(counter.get(), WORKERS * PER_WORKER);
    let s = histogram.snapshot();
    assert_eq!(s.count, WORKERS * PER_WORKER);
    // Sum of 0..64000 = 64000·63999/2.
    assert_eq!(s.sum, WORKERS * PER_WORKER * (WORKERS * PER_WORKER - 1) / 2);
    assert_eq!(s.buckets.iter().sum::<u64>(), WORKERS * PER_WORKER);
}

#[test]
fn golden_prometheus_exposition_byte_for_byte() {
    // A local registry keeps this test independent of whatever other
    // tests record into the global one.
    let reg = ObsRegistry::new();
    reg.counter("egi_fft_plan_cache_hits_total").add(3);
    reg.counter("egi_fft_plan_cache_misses_total").add(1);
    reg.gauge("egi_fleet_dirty_streams").set(2);
    let h = reg.histogram("egi_session_step_nanos");
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(1000);
    let expected = "\
# TYPE egi_fft_plan_cache_hits_total counter
egi_fft_plan_cache_hits_total 3
# TYPE egi_fft_plan_cache_misses_total counter
egi_fft_plan_cache_misses_total 1
# TYPE egi_fleet_dirty_streams gauge
egi_fleet_dirty_streams 2
# TYPE egi_session_step_nanos histogram
egi_session_step_nanos_bucket{le=\"0\"} 1
egi_session_step_nanos_bucket{le=\"1\"} 2
egi_session_step_nanos_bucket{le=\"3\"} 3
egi_session_step_nanos_bucket{le=\"1023\"} 4
egi_session_step_nanos_bucket{le=\"+Inf\"} 4
egi_session_step_nanos_sum 1003
egi_session_step_nanos_count 4
";
    assert_eq!(reg.render_prometheus(), expected);
    // Rendering twice is byte-identical (sorted, no hash-map order).
    assert_eq!(reg.render_prometheus(), expected);
}

#[test]
fn golden_json_dump() {
    let reg = ObsRegistry::new();
    reg.counter("egi_mass_seg_rolled_total").add(10);
    reg.gauge("egi_fleet_pending_units").set(4);
    reg.histogram("egi_checkpoint_save_bytes").record(4096);
    assert_eq!(
        reg.render_json(),
        "{\"counters\":{\"egi_mass_seg_rolled_total\":10},\
         \"gauges\":{\"egi_fleet_pending_units\":4},\
         \"histograms\":{\"egi_checkpoint_save_bytes\":\
         {\"count\":1,\"sum\":4096,\"buckets\":[[8191,1]]}}}"
    );
}

#[test]
fn quantile_bounds_are_monotone() {
    let h = Histogram::new();
    for v in 0..1024u64 {
        h.record(v);
    }
    let s = h.snapshot();
    let p50 = s.quantile_upper_bound(1, 2);
    let p90 = s.quantile_upper_bound(9, 10);
    let p99 = s.quantile_upper_bound(99, 100);
    assert!(p50 <= p90 && p90 <= p99);
    assert_eq!(p99, s.max_upper_bound());
    assert_eq!(s.quantile_upper_bound(0, 1), 0);
}
