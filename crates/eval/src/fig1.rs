//! Figure 1: the parameter-sensitivity motivation.
//!
//! A dishwasher-style power trace with one short-heating anomalous cycle
//! is scored by the single-run GI detector under every `(w, a)` pair in
//! `[2, wmax] × [2, amax]`. The paper's point — reproduced here — is that
//! the Score landscape is jagged: the best pair sits far from the second
//! best and neighbors of the optimum can be terrible.

use egi_core::{GiConfig, SingleGiDetector};
use egi_sax::SaxConfig;
use egi_tskit::gen::power::dishwasher_series;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::metrics::best_score;

/// Score of one `(w, a)` cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GridCell {
    /// PAA size.
    pub w: usize,
    /// Alphabet size.
    pub a: usize,
    /// Best Eq. (5) Score of the top-3 candidates under this pair.
    pub score: f64,
}

/// Result of the Figure 1 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// All grid cells, row-major in `w` then `a`.
    pub grid: Vec<GridCell>,
    /// Length of the generated trace.
    pub series_len: usize,
    /// Ground-truth anomaly interval.
    pub gt: (usize, usize),
}

impl Fig1Result {
    /// Cells sorted by descending score.
    pub fn ranked(&self) -> Vec<GridCell> {
        let mut cells = self.grid.clone();
        cells.sort_by(|x, y| {
            y.score
                .partial_cmp(&x.score)
                .expect("scores are finite")
                .then((x.w, x.a).cmp(&(y.w, y.a)))
        });
        cells
    }

    /// The paper's observation quantified: the L∞ parameter distance from
    /// the best pair to the second-best pair.
    pub fn best_to_second_distance(&self) -> usize {
        let ranked = self.ranked();
        if ranked.len() < 2 {
            return 0;
        }
        let (b, s) = (ranked[0], ranked[1]);
        b.w.abs_diff(s.w).max(b.a.abs_diff(s.a))
    }
}

/// Runs the parameter grid on a generated dishwasher trace.
pub fn run_fig1(wmax: usize, amax: usize, seed: u64) -> Fig1Result {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_cycles = 14;
    let profile = dishwasher_series(n_cycles, Some(n_cycles / 2), &mut rng);
    let (gt_start, gt_len) = profile.anomalies[0];
    let window = profile.values.len() / n_cycles; // ≈ one cycle

    let mut grid = Vec::new();
    for w in 2..=wmax {
        for a in 2..=amax {
            let det = SingleGiDetector::new(GiConfig {
                window,
                sax: SaxConfig::new(w.min(window), a),
            });
            let report = det.detect(&profile.values, 3);
            let cands: Vec<usize> = report.anomalies.iter().map(|c| c.start).collect();
            grid.push(GridCell {
                w,
                a,
                score: best_score(&cands, gt_start, gt_len),
            });
        }
    }
    Fig1Result {
        grid,
        series_len: profile.values.len(),
        gt: (gt_start, gt_len),
    }
}

/// Renders the grid as a `w × a` markdown matrix of scores.
pub fn render_fig1(result: &Fig1Result, wmax: usize, amax: usize) -> String {
    let mut out = String::from("| w \\ a |");
    for a in 2..=amax {
        out.push_str(&format!(" {a} |"));
    }
    out.push_str("\n|---|");
    for _ in 2..=amax {
        out.push_str("---|");
    }
    out.push('\n');
    for w in 2..=wmax {
        out.push_str(&format!("| {w} |"));
        for a in 2..=amax {
            let cell = result
                .grid
                .iter()
                .find(|c| c.w == w && c.a == a)
                .expect("cell exists");
            out.push_str(&format!(" {:.2} |", cell.score));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_all_pairs() {
        let r = run_fig1(6, 6, 5);
        assert_eq!(r.grid.len(), 25);
        for c in &r.grid {
            assert!((0.0..=1.0).contains(&c.score));
        }
    }

    #[test]
    fn some_parameter_pair_finds_the_anomaly() {
        let r = run_fig1(10, 10, 5);
        let best = r.ranked()[0];
        assert!(
            best.score > 0.3,
            "no parameter pair found the dishwasher anomaly (best {:?})",
            best
        );
    }

    #[test]
    fn scores_vary_across_the_grid() {
        // The motivation: quality depends strongly on (w, a).
        let r = run_fig1(10, 10, 5);
        let scores: Vec<f64> = r.grid.iter().map(|c| c.score).collect();
        let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scores.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.2, "grid too flat: [{min}, {max}]");
    }

    #[test]
    fn render_contains_all_rows() {
        let r = run_fig1(4, 5, 1);
        let md = render_fig1(&r, 4, 5);
        assert_eq!(md.lines().count(), 2 + 3); // header+sep + w∈{2,3,4}
    }
}
