//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p egi-eval --bin experiments -- <cmd> [--quick] [--out DIR] [--seed S]
//!
//! cmd ∈ { fig1, table4, table7, table8, table9, table10, table12,
//!         table13, fig8, fig9, multi, all }
//! ```
//!
//! `table4` produces Tables 4, 5 and 6 plus the Figure 10 CSV in one pass
//! (they share the same runs); `table10` produces Tables 10 and 11;
//! `table13` produces Tables 13 and 14. `--quick` shrinks corpora and
//! ensembles for smoke runs; the defaults match the paper (25 series per
//! dataset, `N = 50`, `wmax = amax = 10`, `τ = 40%`).

use egi_core::EnsembleDetector;
use egi_eval::report::ReportSink;
use egi_eval::runner::{EnsembleParams, ExperimentParams};
use egi_eval::scalability::{render_fig8, run_scalability, SeriesKind};
use egi_eval::sweeps::{
    render_metric_sweep, render_tau_table, render_wtl_sweep, run_sweep, run_tau_sweep,
    table10_arms, table13_arms, table7_arms, table8_arms, table9_arms, SweepMetric,
};
use egi_eval::table45::{fig10_csv, render_table4, render_table5, render_table6, run_all};
use egi_eval::{fig1, multi};
use egi_tskit::gen::power::fridge_freezer_series;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Cli {
    cmd: String,
    quick: bool,
    out: String,
    seed: u64,
}

fn parse_cli() -> Cli {
    let mut cmd = String::from("all");
    let mut quick = false;
    let mut out = String::from("results");
    let mut seed = 0xE61_2020u64;
    let mut args = std::env::args().skip(1);
    let mut first = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out needs a directory"),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer")
            }
            other if first => cmd = other.to_string(),
            other => panic!("unknown argument {other:?}"),
        }
        first = false;
    }
    Cli {
        cmd,
        quick,
        out,
        seed,
    }
}

fn params(cli: &Cli) -> ExperimentParams {
    let mut p = if cli.quick {
        ExperimentParams::quick()
    } else {
        ExperimentParams::default()
    };
    p.seed = cli.seed;
    p
}

fn main() {
    let cli = parse_cli();
    let sink = ReportSink::new(&cli.out).expect("create output directory");
    let p = params(&cli);
    eprintln!(
        "running {} (quick={}, seed={:#x}) → {}",
        cli.cmd,
        cli.quick,
        p.seed,
        sink.dir().display()
    );

    let run_one = |cmd: &str| match cmd {
        "fig1" => cmd_fig1(&sink, &cli),
        "table4" => cmd_table4(&sink, &p),
        "table7" => cmd_wtl_sweep(&sink, &p, "table7", table7_arms(p.ensemble)),
        "table8" => cmd_wtl_sweep(&sink, &p, "table8", table8_arms(p.ensemble)),
        "table9" => cmd_wtl_sweep(&sink, &p, "table9", table9_arms(p.ensemble)),
        "table10" => cmd_metric_sweep(&sink, &p, "table10_11", table10_arms(p.ensemble)),
        "table12" => cmd_table12(&sink, &p, &cli),
        "table13" => cmd_metric_sweep(&sink, &p, "table13_14", table13_arms(p.ensemble)),
        "fig8" => cmd_fig8(&sink, &p, &cli),
        "fig9" => cmd_fig9(&sink, &p, &cli),
        "multi" => cmd_multi(&sink, &p, &cli),
        other => panic!("unknown command {other:?}"),
    };

    if cli.cmd == "all" {
        for cmd in [
            "fig1", "table4", "table7", "table8", "table9", "table10", "table12", "table13",
            "fig8", "fig9", "multi",
        ] {
            eprintln!("=== {cmd} ===");
            run_one(cmd);
        }
    } else {
        run_one(&cli.cmd);
    }
}

fn cmd_fig1(sink: &ReportSink, cli: &Cli) {
    let (wmax, amax) = if cli.quick { (6, 6) } else { (10, 10) };
    let r = fig1::run_fig1(wmax, amax, cli.seed);
    let mut body = fig1::render_fig1(&r, wmax, amax);
    let ranked = r.ranked();
    body.push_str(&format!(
        "\nBest pair: (w={}, a={}) score {:.3}; second best (w={}, a={}) score {:.3}; L∞ parameter distance {}.\n",
        ranked[0].w,
        ranked[0].a,
        ranked[0].score,
        ranked[1].w,
        ranked[1].a,
        ranked[1].score,
        r.best_to_second_distance()
    ));
    sink.markdown(
        "fig1",
        "Figure 1: Score per (w, a) on dishwasher data",
        &body,
    )
    .unwrap();
    sink.json("fig1", &r).unwrap();
}

fn cmd_table4(sink: &ReportSink, p: &ExperimentParams) {
    let results = run_all(p);
    sink.markdown("table4", "Table 4: average Score", &render_table4(&results))
        .unwrap();
    sink.markdown("table5", "Table 5: HitRate", &render_table5(&results))
        .unwrap();
    sink.markdown(
        "table6",
        "Table 6: wins/ties/losses vs all baselines",
        &render_table6(&results),
    )
    .unwrap();
    sink.csv("fig10", &fig10_csv(&results)).unwrap();
    sink.json("table4_5_6", &results).unwrap();
}

fn cmd_wtl_sweep(
    sink: &ReportSink,
    p: &ExperimentParams,
    name: &str,
    arms: Vec<(String, EnsembleParams, f64)>,
) {
    let result = run_sweep(&arms, p);
    sink.markdown(
        name,
        &format!("{name}: wins/ties/losses vs best GI baseline"),
        &render_wtl_sweep(&result),
    )
    .unwrap();
    sink.json(name, &result).unwrap();
}

fn cmd_metric_sweep(
    sink: &ReportSink,
    p: &ExperimentParams,
    name: &str,
    arms: Vec<(String, EnsembleParams, f64)>,
) {
    let result = run_sweep(&arms, p);
    let body = format!(
        "Average Score:\n\n{}\nHitRate:\n\n{}",
        render_metric_sweep(&result, SweepMetric::Score),
        render_metric_sweep(&result, SweepMetric::HitRate)
    );
    sink.markdown(name, &format!("{name}: Score and HitRate sweep"), &body)
        .unwrap();
    sink.json(name, &result).unwrap();
}

fn cmd_table12(sink: &ReportSink, p: &ExperimentParams, cli: &Cli) {
    let taus = [0.05, 0.10, 0.20, 0.40, 0.80, 1.0];
    let repeats = if cli.quick { 3 } else { 20 };
    let cells = run_tau_sweep(&taus, repeats, p);
    sink.markdown(
        "table12",
        "Table 12: mean (std) of average Score vs τ",
        &render_tau_table(&cells, &taus),
    )
    .unwrap();
    sink.json("table12", &cells).unwrap();
}

fn cmd_fig8(sink: &ReportSink, p: &ExperimentParams, cli: &Cli) {
    let lengths: Vec<usize> = if cli.quick {
        vec![5_000, 10_000, 20_000]
    } else {
        vec![10_000, 20_000, 40_000, 80_000, 160_000]
    };
    let cap = if cli.quick { Some(20_000) } else { None };
    let window = 300;
    let mut points = Vec::new();
    for kind in SeriesKind::ALL {
        points.extend(run_scalability(
            kind,
            &lengths,
            window,
            &p.ensemble,
            p.seed,
            cap,
        ));
    }
    sink.markdown(
        "fig8",
        "Figure 8: computation time vs series length (ensemble vs STOMP)",
        &render_fig8(&points),
    )
    .unwrap();
    sink.json("fig8", &points).unwrap();
    let cols: Vec<f64> = points.iter().map(|pt| pt.len as f64).collect();
    let ens: Vec<f64> = points.iter().map(|pt| pt.ensemble_secs).collect();
    let sto: Vec<f64> = points.iter().map(|pt| pt.stomp_secs).collect();
    let any10: Vec<f64> = points.iter().map(|pt| pt.anytime10_secs).collect();
    egi_tskit::io::write_columns(
        sink.dir().join("fig8.csv"),
        &[
            ("length", &cols),
            ("ensemble_secs", &ens),
            ("stomp_secs", &sto),
            ("anytime10_secs", &any10),
        ],
    )
    .unwrap();
}

fn cmd_fig9(sink: &ReportSink, p: &ExperimentParams, cli: &Cli) {
    let total_len = if cli.quick { 60_000 } else { 600_000 };
    let cycle = 900;
    let mut rng = StdRng::seed_from_u64(p.seed);
    let profile = fridge_freezer_series(total_len, cycle, &mut rng);
    let det = EnsembleDetector::new(p.ensemble.config(cycle));
    let t0 = std::time::Instant::now();
    let report = det.detect(&profile.values, 2, p.seed);
    let secs = t0.elapsed().as_secs_f64();

    let mut body = format!(
        "Series length {total_len}, window {cycle}, detection time {secs:.1} s.\n\n| Rank | Found at | Ground truth events |\n|---|---|---|\n"
    );
    let gts = profile
        .anomalies
        .iter()
        .map(|&(s, l)| format!("[{s}, {})", s + l))
        .collect::<Vec<_>>()
        .join(", ");
    for (i, c) in report.anomalies.iter().enumerate() {
        body.push_str(&format!("| {} | {} | {} |\n", i + 1, c.start, gts));
    }
    let found = profile
        .anomalies
        .iter()
        .filter(|&&(gs, gl)| {
            report
                .anomalies
                .iter()
                .any(|c| egi_tskit::window::intervals_overlap(c.start, c.len, gs, gl))
        })
        .count();
    body.push_str(&format!(
        "\n{found} of {} planted anomalies recovered in the top-2 candidates.\n",
        profile.anomalies.len()
    ));
    sink.markdown("fig9", "Figure 9: fridge-freezer case study", &body)
        .unwrap();
}

fn cmd_multi(sink: &ReportSink, p: &ExperimentParams, cli: &Cli) {
    let series_count = if cli.quick { 3 } else { 10 };
    let r = multi::run_multi_anomaly(series_count, 2, &p.ensemble, 3, p.seed);
    sink.markdown(
        "multi_anomaly",
        "Section 7.5: multiple anomalies (StarLightCurve)",
        &multi::render_multi(&r),
    )
    .unwrap();
    sink.json("multi_anomaly", &r).unwrap();
}
