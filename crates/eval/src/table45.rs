//! Main accuracy experiment: Tables 4 (average Score), 5 (HitRate),
//! 6 (wins/ties/losses) and the Figure 10 scatter data.
//!
//! Protocol (Section 7.1): per dataset family, generate
//! `series_per_dataset` labeled series (20 normal instances + 1 planted
//! anomalous instance); run the proposed ensemble and all four baselines
//! with sliding window = instance length; each method reports its top-3
//! non-overlapping candidates; per series keep the best Eq. (5) Score.

use egi_tskit::corpus::CorpusSpec;
use egi_tskit::gen::UcrFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::metrics::{best_score, mean_or_zero, Wtl};
use crate::runner::{run_baseline, run_proposed, subseed, Baseline, ExperimentParams};

/// Per-series scores of every method (one Figure 10 scatter point per
/// baseline).
#[derive(Debug, Clone, Serialize)]
pub struct SeriesScores {
    /// Eq. (5) Score of the proposed ensemble.
    pub proposed: f64,
    /// Scores of the four baselines, in [`Baseline::ALL`] order.
    pub baselines: [f64; 4],
}

/// All scores for one dataset family.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetResult {
    /// Dataset name as in the paper's tables.
    pub dataset: String,
    /// One entry per generated series.
    pub per_series: Vec<SeriesScores>,
}

impl DatasetResult {
    /// Table 4 row: average Score of the proposed method.
    pub fn avg_score_proposed(&self) -> f64 {
        mean_or_zero(
            &self
                .per_series
                .iter()
                .map(|s| s.proposed)
                .collect::<Vec<_>>(),
        )
    }

    /// Table 4 row: average Score of baseline `b`.
    pub fn avg_score_baseline(&self, b: Baseline) -> f64 {
        let idx = baseline_index(b);
        mean_or_zero(
            &self
                .per_series
                .iter()
                .map(|s| s.baselines[idx])
                .collect::<Vec<_>>(),
        )
    }

    /// Table 5 row: HitRate (fraction of series with Score > 0) of the
    /// proposed method.
    pub fn hit_rate_proposed(&self) -> f64 {
        let hits = self.per_series.iter().filter(|s| s.proposed > 0.0).count();
        hits as f64 / self.per_series.len().max(1) as f64
    }

    /// Table 5 row: HitRate of baseline `b`.
    pub fn hit_rate_baseline(&self, b: Baseline) -> f64 {
        let idx = baseline_index(b);
        let hits = self
            .per_series
            .iter()
            .filter(|s| s.baselines[idx] > 0.0)
            .count();
        hits as f64 / self.per_series.len().max(1) as f64
    }

    /// Table 6 cell: wins/ties/losses of the proposed method vs `b`.
    pub fn wtl(&self, b: Baseline) -> Wtl {
        let idx = baseline_index(b);
        Wtl::from_pairs(
            self.per_series
                .iter()
                .map(|s| (s.proposed, s.baselines[idx])),
        )
    }

    /// Best score across GI-Random / GI-Fix / GI-Select per series — the
    /// "best GI baseline" reference used by Tables 7–9.
    pub fn best_gi_baseline_scores(&self) -> Vec<f64> {
        self.per_series
            .iter()
            .map(|s| s.baselines[0].max(s.baselines[1]).max(s.baselines[2]))
            .collect()
    }
}

fn baseline_index(b: Baseline) -> usize {
    Baseline::ALL
        .iter()
        .position(|x| *x == b)
        .expect("baseline is in ALL")
}

/// Runs the main experiment for one dataset family.
pub fn run_dataset(family: UcrFamily, params: &ExperimentParams) -> DatasetResult {
    let spec = CorpusSpec {
        series_count: params.series_per_dataset,
        ..CorpusSpec::paper(family)
    };
    let corpus_seed = subseed(params.seed, family as u64 + 1);
    let mut rng = StdRng::seed_from_u64(corpus_seed);
    let corpus = spec.generate(&mut rng);

    let mut per_series = Vec::with_capacity(corpus.len());
    for (i, ls) in corpus.iter().enumerate() {
        let window = ls.gt_len;
        let run_seed = subseed(corpus_seed, 1000 + i as u64);
        let prop = run_proposed(&ls.series, window, &params.ensemble, params.top_k, run_seed);
        let mut baselines = [0.0f64; 4];
        for (bi, b) in Baseline::ALL.into_iter().enumerate() {
            let cands = run_baseline(
                b,
                &ls.series,
                window,
                &params.ensemble,
                params.top_k,
                subseed(run_seed, bi as u64 + 7),
            );
            baselines[bi] = best_score(&cands, ls.gt_start, ls.gt_len);
        }
        per_series.push(SeriesScores {
            proposed: best_score(&prop, ls.gt_start, ls.gt_len),
            baselines,
        });
    }
    DatasetResult {
        dataset: family.name().to_string(),
        per_series,
    }
}

/// Runs all six dataset families (Tables 4–6 and Figure 10 in one pass).
pub fn run_all(params: &ExperimentParams) -> Vec<DatasetResult> {
    UcrFamily::ALL
        .iter()
        .map(|&f| run_dataset(f, params))
        .collect()
}

/// Renders the Table 4 (average Score) markdown.
pub fn render_table4(results: &[DatasetResult]) -> String {
    let mut out = String::from(
        "| Dataset | Proposed | GI-Random | GI-Fix | GI-Select | Discord |\n|---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
            r.dataset,
            r.avg_score_proposed(),
            r.avg_score_baseline(Baseline::GiRandom),
            r.avg_score_baseline(Baseline::GiFix),
            r.avg_score_baseline(Baseline::GiSelect),
            r.avg_score_baseline(Baseline::Discord),
        ));
    }
    out
}

/// Renders the Table 5 (HitRate) markdown.
pub fn render_table5(results: &[DatasetResult]) -> String {
    let mut out = String::from(
        "| Dataset | Proposed | GI-Random | GI-Fix | GI-Select | Discord |\n|---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.dataset,
            r.hit_rate_proposed(),
            r.hit_rate_baseline(Baseline::GiRandom),
            r.hit_rate_baseline(Baseline::GiFix),
            r.hit_rate_baseline(Baseline::GiSelect),
            r.hit_rate_baseline(Baseline::Discord),
        ));
    }
    out
}

/// Renders the Table 6 (wins/ties/losses) markdown.
pub fn render_table6(results: &[DatasetResult]) -> String {
    let mut out = String::from("| Approach |");
    for r in results {
        out.push_str(&format!(" {} |", r.dataset));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in results {
        out.push_str("---|");
    }
    out.push('\n');
    for b in Baseline::ALL {
        out.push_str(&format!("| {} |", b.name()));
        for r in results {
            out.push_str(&format!(" {} |", r.wtl(b)));
        }
        out.push('\n');
    }
    out
}

/// Figure 10 scatter data as CSV: one `(dataset, baseline, proposed,
/// baseline_score)` row per series × baseline.
pub fn fig10_csv(results: &[DatasetResult]) -> String {
    let mut out = String::from("dataset,baseline,proposed_score,baseline_score\n");
    for r in results {
        for s in &r.per_series {
            for (bi, b) in Baseline::ALL.into_iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{:.6},{:.6}\n",
                    r.dataset,
                    b.name(),
                    s.proposed,
                    s.baselines[bi]
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EnsembleParams;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            series_per_dataset: 2,
            ensemble: EnsembleParams {
                n: 8,
                ..EnsembleParams::default()
            },
            ..ExperimentParams::default()
        }
    }

    #[test]
    fn run_dataset_produces_scores_in_range() {
        let r = run_dataset(UcrFamily::GunPoint, &tiny_params());
        assert_eq!(r.per_series.len(), 2);
        for s in &r.per_series {
            assert!((0.0..=1.0).contains(&s.proposed));
            for &b in &s.baselines {
                assert!((0.0..=1.0).contains(&b));
            }
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        let r = run_dataset(UcrFamily::Wafer, &tiny_params());
        let wtl = r.wtl(Baseline::GiFix);
        assert_eq!(wtl.wins + wtl.ties + wtl.losses, r.per_series.len());
        assert!((0.0..=1.0).contains(&r.hit_rate_proposed()));
        assert!((0.0..=1.0).contains(&r.avg_score_proposed()));
    }

    #[test]
    fn renderers_emit_all_rows() {
        let r = vec![run_dataset(UcrFamily::TwoLeadEcg, &tiny_params())];
        let t4 = render_table4(&r);
        assert!(t4.contains("TwoLeadECG"));
        let t5 = render_table5(&r);
        assert_eq!(t5.lines().count(), 3);
        let t6 = render_table6(&r);
        assert!(t6.contains("GI-Random") && t6.contains("Discord"));
        let csv = fig10_csv(&r);
        // header + 2 series × 4 baselines.
        assert_eq!(csv.lines().count(), 1 + 8);
    }

    #[test]
    fn experiment_is_reproducible() {
        let a = run_dataset(UcrFamily::Trace, &tiny_params());
        let b = run_dataset(UcrFamily::Trace, &tiny_params());
        for (x, y) in a.per_series.iter().zip(&b.per_series) {
            assert_eq!(x.proposed, y.proposed);
            assert_eq!(x.baselines, y.baselines);
        }
    }
}
