//! Hyper-parameter sweeps: Tables 7–14.
//!
//! All sweeps reuse the Table 4/5 corpus generation (same seeds) so that
//! "vs. best GI baseline" comparisons pair the same series.

use egi_tskit::corpus::{CorpusSpec, LabeledSeries};
use egi_tskit::gen::UcrFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::metrics::{best_score, mean_or_zero, Wtl};
use crate::runner::{
    run_baseline, run_proposed, subseed, Baseline, EnsembleParams, ExperimentParams,
};

/// Generates the evaluation corpus for `family` with the same seeding as
/// the main experiment, so sweep comparisons are paired.
pub fn corpus_for(family: UcrFamily, params: &ExperimentParams) -> Vec<LabeledSeries> {
    let spec = CorpusSpec {
        series_count: params.series_per_dataset,
        ..CorpusSpec::paper(family)
    };
    let corpus_seed = subseed(params.seed, family as u64 + 1);
    let mut rng = StdRng::seed_from_u64(corpus_seed);
    spec.generate(&mut rng)
}

/// Per-series scores of the best GI baseline for one dataset.
///
/// Paper Section 7.2: "we use the best of the GI-Random, GI-Fix, and
/// GI-Select methods for each dataset" — the single GI method with the
/// highest average Score on that dataset; its per-series scores are the
/// reference for the sweep's wins/ties/losses.
pub fn best_gi_baseline(
    family: UcrFamily,
    corpus: &[LabeledSeries],
    params: &ExperimentParams,
) -> Vec<f64> {
    let corpus_seed = subseed(params.seed, family as u64 + 1);
    let gi = [Baseline::GiRandom, Baseline::GiFix, Baseline::GiSelect];
    let mut per_method: Vec<Vec<f64>> = Vec::with_capacity(gi.len());
    for (bi, b) in gi.into_iter().enumerate() {
        let mut scores = Vec::with_capacity(corpus.len());
        for (i, ls) in corpus.iter().enumerate() {
            let run_seed = subseed(corpus_seed, 1000 + i as u64);
            let cands = run_baseline(
                b,
                &ls.series,
                ls.gt_len,
                &params.ensemble,
                params.top_k,
                subseed(run_seed, bi as u64 + 7),
            );
            scores.push(best_score(&cands, ls.gt_start, ls.gt_len));
        }
        per_method.push(scores);
    }
    let best = (0..per_method.len())
        .max_by(|&x, &y| {
            mean_or_zero(&per_method[x])
                .partial_cmp(&mean_or_zero(&per_method[y]))
                .expect("finite scores")
        })
        .expect("three methods");
    per_method.swap_remove(best)
}

/// Result of one sweep arm on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Dataset name.
    pub dataset: String,
    /// Average Score of the proposed method under this arm.
    pub avg_score: f64,
    /// HitRate of the proposed method under this arm.
    pub hit_rate: f64,
    /// Wins/ties/losses vs. the best GI baseline.
    pub wtl: Wtl,
}

/// One sweep arm (a row in Tables 7–9 / a column in Tables 10–14).
#[derive(Debug, Clone, Serialize)]
pub struct SweepArm {
    /// Human-readable arm label (e.g. `"amax=10, wmax=15"`).
    pub label: String,
    /// One cell per dataset family.
    pub cells: Vec<SweepCell>,
}

/// Runs the proposed method with per-arm overrides and tallies cells.
///
/// `arms` supplies `(label, ensemble-params, window-fraction)` triples;
/// window-fraction scales the sliding window relative to the anomaly
/// length `na` (1.0 everywhere except the Table 13/14 sweep).
pub fn run_sweep(
    arms: &[(String, EnsembleParams, f64)],
    params: &ExperimentParams,
) -> Vec<SweepArm> {
    let mut out: Vec<SweepArm> = arms
        .iter()
        .map(|(label, _, _)| SweepArm {
            label: label.clone(),
            cells: Vec::new(),
        })
        .collect();
    for family in UcrFamily::ALL {
        let corpus = corpus_for(family, params);
        let reference = best_gi_baseline(family, &corpus, params);
        let corpus_seed = subseed(params.seed, family as u64 + 1);
        for (arm_idx, (_, ep, frac)) in arms.iter().enumerate() {
            let mut scores = Vec::with_capacity(corpus.len());
            for (i, ls) in corpus.iter().enumerate() {
                let window = ((ls.gt_len as f64 * frac).round() as usize).max(4);
                let run_seed = subseed(corpus_seed, 1000 + i as u64);
                let cands = run_proposed(&ls.series, window, ep, params.top_k, run_seed);
                scores.push(best_score(&cands, ls.gt_start, ls.gt_len));
            }
            let hits = scores.iter().filter(|&&s| s > 0.0).count();
            out[arm_idx].cells.push(SweepCell {
                dataset: family.name().to_string(),
                avg_score: mean_or_zero(&scores),
                hit_rate: hits as f64 / scores.len().max(1) as f64,
                wtl: Wtl::from_pairs(scores.iter().copied().zip(reference.iter().copied())),
            });
        }
    }
    out
}

/// Table 7: `wmax = amax ∈ {5, 10, 15, 20}` (w/t/l vs best GI baseline).
pub fn table7_arms(base: EnsembleParams) -> Vec<(String, EnsembleParams, f64)> {
    [5usize, 10, 15, 20]
        .into_iter()
        .map(|r| {
            (
                format!("amax={r}, wmax={r}"),
                EnsembleParams {
                    wmax: r,
                    amax: r,
                    ..base
                },
                1.0,
            )
        })
        .collect()
}

/// Table 8: `wmax ∈ {5, 10, 15, 20}`, `amax = 10`.
pub fn table8_arms(base: EnsembleParams) -> Vec<(String, EnsembleParams, f64)> {
    [5usize, 10, 15, 20]
        .into_iter()
        .map(|w| {
            (
                format!("amax=10, wmax={w}"),
                EnsembleParams {
                    wmax: w,
                    amax: 10,
                    ..base
                },
                1.0,
            )
        })
        .collect()
}

/// Table 9: `amax ∈ {5, 10, 15, 20}`, `wmax = 10`.
pub fn table9_arms(base: EnsembleParams) -> Vec<(String, EnsembleParams, f64)> {
    [5usize, 10, 15, 20]
        .into_iter()
        .map(|a| {
            (
                format!("amax={a}, wmax=10"),
                EnsembleParams {
                    wmax: 10,
                    amax: a,
                    ..base
                },
                1.0,
            )
        })
        .collect()
}

/// Tables 10/11: ensemble size `N ∈ {5, 10, 25, 50}`.
pub fn table10_arms(base: EnsembleParams) -> Vec<(String, EnsembleParams, f64)> {
    [5usize, 10, 25, 50]
        .into_iter()
        .map(|n| (format!("N={n}"), EnsembleParams { n, ..base }, 1.0))
        .collect()
}

/// Tables 13/14: sliding window `n ∈ {0.6, 0.7, 0.8, 0.9, 1.0}·na`.
pub fn table13_arms(base: EnsembleParams) -> Vec<(String, EnsembleParams, f64)> {
    [0.6f64, 0.7, 0.8, 0.9, 1.0]
        .into_iter()
        .map(|f| (format!("n={f:.1}·na"), base, f))
        .collect()
}

/// Table 12: τ sweep with repetitions — per dataset and τ, the mean and
/// standard deviation of `repeats` average-Score evaluations (each with a
/// different ensemble seed).
#[derive(Debug, Clone, Serialize)]
pub struct TauCell {
    /// Dataset name.
    pub dataset: String,
    /// τ value.
    pub tau: f64,
    /// Mean of the repeated average Scores.
    pub mean: f64,
    /// Standard deviation of the repeated average Scores.
    pub std: f64,
}

/// Runs the Table 12 τ sweep.
pub fn run_tau_sweep(taus: &[f64], repeats: usize, params: &ExperimentParams) -> Vec<TauCell> {
    let mut out = Vec::new();
    for family in UcrFamily::ALL {
        let corpus = corpus_for(family, params);
        let corpus_seed = subseed(params.seed, family as u64 + 1);
        for &tau in taus {
            let ep = EnsembleParams {
                tau,
                ..params.ensemble
            };
            let mut avg_scores = Vec::with_capacity(repeats);
            for rep in 0..repeats {
                let mut scores = Vec::with_capacity(corpus.len());
                for (i, ls) in corpus.iter().enumerate() {
                    // Vary the ensemble seed per repetition (the paper
                    // repeats the evaluation 20 times).
                    let run_seed = subseed(corpus_seed, (rep as u64) << 32 | (1000 + i as u64));
                    let cands = run_proposed(&ls.series, ls.gt_len, &ep, params.top_k, run_seed);
                    scores.push(best_score(&cands, ls.gt_start, ls.gt_len));
                }
                avg_scores.push(mean_or_zero(&scores));
            }
            let mean = mean_or_zero(&avg_scores);
            let std = if avg_scores.len() < 2 {
                0.0
            } else {
                egi_tskit::stats::stddev(&avg_scores)
            };
            out.push(TauCell {
                dataset: family.name().to_string(),
                tau,
                mean,
                std,
            });
        }
    }
    out
}

/// Renders a W/T/L sweep (Tables 7–9 layout).
pub fn render_wtl_sweep(arms: &[SweepArm]) -> String {
    let mut out = String::from("| Approach |");
    if let Some(first) = arms.first() {
        for c in &first.cells {
            out.push_str(&format!(" {} |", c.dataset));
        }
    }
    out.push_str("\n|---|");
    if let Some(first) = arms.first() {
        for _ in &first.cells {
            out.push_str("---|");
        }
    }
    out.push('\n');
    for arm in arms {
        out.push_str(&format!("| {} |", arm.label));
        for c in &arm.cells {
            out.push_str(&format!(" {} |", c.wtl));
        }
        out.push('\n');
    }
    out
}

/// Renders a Score/HitRate sweep (Tables 10/11 and 13/14 layout);
/// `metric` selects which number is shown.
pub fn render_metric_sweep(arms: &[SweepArm], metric: SweepMetric) -> String {
    let mut out = String::from("| Dataset |");
    for arm in arms {
        out.push_str(&format!(" {} |", arm.label));
    }
    out.push_str("\n|---|");
    for _ in arms {
        out.push_str("---|");
    }
    out.push('\n');
    if let Some(first) = arms.first() {
        for (di, cell) in first.cells.iter().enumerate() {
            out.push_str(&format!("| {} |", cell.dataset));
            for arm in arms {
                let c = &arm.cells[di];
                match metric {
                    SweepMetric::Score => out.push_str(&format!(" {:.4} |", c.avg_score)),
                    SweepMetric::HitRate => out.push_str(&format!(" {:.2} |", c.hit_rate)),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Metric selector for [`render_metric_sweep`].
#[derive(Debug, Clone, Copy)]
pub enum SweepMetric {
    /// Average Eq. (5) Score.
    Score,
    /// HitRate.
    HitRate,
}

/// Renders the Table 12 layout (mean with std underneath).
pub fn render_tau_table(cells: &[TauCell], taus: &[f64]) -> String {
    let mut out = String::from("| Dataset |");
    for t in taus {
        out.push_str(&format!(" τ={:.0}% |", t * 100.0));
    }
    out.push_str("\n|---|");
    for _ in taus {
        out.push_str("---|");
    }
    out.push('\n');
    let mut datasets: Vec<&str> = Vec::new();
    for c in cells {
        if !datasets.contains(&c.dataset.as_str()) {
            datasets.push(&c.dataset);
        }
    }
    for d in datasets {
        out.push_str(&format!("| {d} |"));
        for &t in taus {
            let c = cells
                .iter()
                .find(|c| c.dataset == d && (c.tau - t).abs() < 1e-9)
                .expect("cell exists");
            out.push_str(&format!(" {:.4} ({:.3}) |", c.mean, c.std));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentParams {
        ExperimentParams {
            series_per_dataset: 2,
            ensemble: EnsembleParams {
                n: 6,
                ..EnsembleParams::default()
            },
            ..ExperimentParams::default()
        }
    }

    #[test]
    fn arm_builders_have_expected_shapes() {
        let base = EnsembleParams::default();
        assert_eq!(table7_arms(base).len(), 4);
        assert_eq!(table8_arms(base).len(), 4);
        assert_eq!(table9_arms(base).len(), 4);
        assert_eq!(table10_arms(base).len(), 4);
        assert_eq!(table13_arms(base).len(), 5);
        assert_eq!(table7_arms(base)[2].1.wmax, 15);
        assert_eq!(table9_arms(base)[3].1.amax, 20);
        assert!((table13_arms(base)[0].2 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn sweep_on_one_small_arm_runs() {
        let params = tiny();
        let arms = vec![("N=6".to_string(), params.ensemble, 1.0)];
        let result = run_sweep(&arms, &params);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].cells.len(), 6); // six datasets
        for c in &result[0].cells {
            assert_eq!(c.wtl.wins + c.wtl.ties + c.wtl.losses, 2);
            assert!((0.0..=1.0).contains(&c.avg_score));
        }
    }

    #[test]
    fn tau_sweep_produces_cells_per_dataset_and_tau() {
        let params = tiny();
        let cells = run_tau_sweep(&[0.4, 1.0], 2, &params);
        assert_eq!(cells.len(), 6 * 2);
        for c in &cells {
            assert!(c.std >= 0.0);
            assert!((0.0..=1.0).contains(&c.mean));
        }
        let table = render_tau_table(&cells, &[0.4, 1.0]);
        assert!(table.contains("τ=40%"));
        assert!(table.contains("StarLightCurve"));
    }

    #[test]
    fn renderers_are_well_formed() {
        let params = tiny();
        let arms = vec![("arm".to_string(), params.ensemble, 1.0)];
        let result = run_sweep(&arms, &params);
        let wtl = render_wtl_sweep(&result);
        assert!(wtl.contains("arm"));
        let sc = render_metric_sweep(&result, SweepMetric::Score);
        assert!(sc.lines().count() >= 8);
        let hr = render_metric_sweep(&result, SweepMetric::HitRate);
        assert!(hr.contains("GunPoint"));
    }
}
