//! The five compared methods, runnable on one labeled series.
//!
//! Seeding discipline: every stochastic choice (corpus generation, the
//! ensemble's parameter draws, GI-Random's single draw) derives from an
//! explicit seed, so whole experiments replay bit-identically.

use egi_core::{select_parameters, EnsembleConfig, EnsembleDetector, GiConfig, SingleGiDetector};
use egi_discord::{DiscordConfig, DiscordDetector};
use egi_sax::SaxConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Ensemble hyper-parameters as the experiments vary them
/// (paper defaults: `N = 50`, `wmax = amax = 10`, `τ = 0.4`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnsembleParams {
    /// Ensemble size `N`.
    pub n: usize,
    /// Maximum PAA size.
    pub wmax: usize,
    /// Maximum alphabet size.
    pub amax: usize,
    /// Selectivity `τ`.
    pub tau: f64,
}

impl Default for EnsembleParams {
    fn default() -> Self {
        Self {
            n: 50,
            wmax: 10,
            amax: 10,
            tau: 0.4,
        }
    }
}

impl EnsembleParams {
    /// Materializes an [`EnsembleConfig`] for sliding window `window`.
    pub fn config(&self, window: usize) -> EnsembleConfig {
        EnsembleConfig {
            window,
            ensemble_size: self.n,
            wmax: self.wmax,
            amax: self.amax,
            selectivity: self.tau,
            ..EnsembleConfig::default()
        }
    }
}

/// The four baselines of Section 7.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Baseline {
    /// Grammar induction with one random `(w, a)` draw.
    GiRandom,
    /// Grammar induction with the generic fixed `w = 4, a = 4`.
    GiFix,
    /// Grammar induction with parameters selected on a normal prefix.
    GiSelect,
    /// Matrix-profile discord discovery (STOMP).
    Discord,
}

impl Baseline {
    /// All four baselines in table order.
    pub const ALL: [Baseline; 4] = [
        Baseline::GiRandom,
        Baseline::GiFix,
        Baseline::GiSelect,
        Baseline::Discord,
    ];

    /// Column header used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::GiRandom => "GI-Random",
            Baseline::GiFix => "GI-Fix",
            Baseline::GiSelect => "GI-Select",
            Baseline::Discord => "Discord",
        }
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whole-experiment knobs shared by the table runners.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ExperimentParams {
    /// Series generated per dataset (paper: 25).
    pub series_per_dataset: usize,
    /// Candidates requested per method (paper: top-3).
    pub top_k: usize,
    /// Ensemble hyper-parameters.
    pub ensemble: EnsembleParams,
    /// Master seed; everything else derives from it.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self {
            series_per_dataset: 25,
            top_k: 3,
            ensemble: EnsembleParams::default(),
            seed: 0xE61_2020,
        }
    }
}

impl ExperimentParams {
    /// A scaled-down configuration for smoke tests and CI
    /// (5 series per dataset, `N = 15`).
    pub fn quick() -> Self {
        Self {
            series_per_dataset: 5,
            ensemble: EnsembleParams {
                n: 15,
                ..EnsembleParams::default()
            },
            ..Self::default()
        }
    }
}

/// Derives a sub-seed; a tiny SplitMix64 keeps experiment arms independent.
pub fn subseed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Runs the proposed ensemble method; returns top-k candidate starts.
pub fn run_proposed(
    series: &[f64],
    window: usize,
    params: &EnsembleParams,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let det = EnsembleDetector::new(params.config(window));
    det.detect(series, k, seed)
        .anomalies
        .iter()
        .map(|c| c.start)
        .collect()
}

/// Runs one baseline; returns top-k candidate starts.
pub fn run_baseline(
    baseline: Baseline,
    series: &[f64],
    window: usize,
    params: &EnsembleParams,
    k: usize,
    seed: u64,
) -> Vec<usize> {
    match baseline {
        Baseline::GiRandom => {
            let mut rng = StdRng::seed_from_u64(seed);
            let w_hi = params.wmax.min(window).max(2);
            let w = rng.gen_range(2..=w_hi);
            let a = rng.gen_range(2..=params.amax.max(2));
            run_single_gi(series, window, SaxConfig::new(w, a), k)
        }
        Baseline::GiFix => run_single_gi(series, window, SaxConfig::new(4, 4), k),
        Baseline::GiSelect => {
            let cfg = select_parameters(series, window, params.wmax, params.amax, 0.1);
            run_single_gi(series, window, cfg, k)
        }
        Baseline::Discord => DiscordDetector::new(DiscordConfig::new(window))
            .detect(series, k)
            .iter()
            .map(|d| d.start)
            .collect(),
    }
}

fn run_single_gi(series: &[f64], window: usize, sax: SaxConfig, k: usize) -> Vec<usize> {
    let sax = if sax.w > window {
        SaxConfig::new(window.max(1), sax.a)
    } else {
        sax
    };
    SingleGiDetector::new(GiConfig { window, sax })
        .detect(series, k)
        .anomalies
        .iter()
        .map(|c| c.start)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_tskit::corpus::CorpusSpec;
    use egi_tskit::gen::UcrFamily;

    fn small_series() -> (Vec<f64>, usize, usize) {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = CorpusSpec {
            normal_instances: 10,
            series_count: 1,
            ..CorpusSpec::paper(UcrFamily::GunPoint)
        };
        let ls = spec.generate_one(&mut rng);
        (ls.series.into_vec(), ls.gt_start, ls.gt_len)
    }

    #[test]
    fn all_methods_return_k_candidates() {
        let (series, _, gt_len) = small_series();
        let params = EnsembleParams {
            n: 10,
            ..EnsembleParams::default()
        };
        let prop = run_proposed(&series, gt_len, &params, 3, 1);
        assert_eq!(prop.len(), 3);
        for b in Baseline::ALL {
            let cands = run_baseline(b, &series, gt_len, &params, 3, 2);
            assert!(
                !cands.is_empty() && cands.len() <= 3,
                "{b} returned {} candidates",
                cands.len()
            );
            for &c in &cands {
                assert!(c + gt_len <= series.len(), "{b} candidate out of range");
            }
        }
    }

    #[test]
    fn proposed_beats_chance_on_easy_series() {
        let (series, gt_start, gt_len) = small_series();
        let params = EnsembleParams {
            n: 15,
            ..EnsembleParams::default()
        };
        let cands = run_proposed(&series, gt_len, &params, 3, 7);
        let s = crate::metrics::best_score(&cands, gt_start, gt_len);
        assert!(s > 0.0, "ensemble missed an easy planted anomaly entirely");
    }

    #[test]
    fn subseed_streams_differ() {
        assert_ne!(subseed(1, 0), subseed(1, 1));
        assert_ne!(subseed(1, 0), subseed(2, 0));
        assert_eq!(subseed(5, 3), subseed(5, 3));
    }

    #[test]
    fn gi_random_is_seed_deterministic() {
        let (series, _, gt_len) = small_series();
        let params = EnsembleParams::default();
        let a = run_baseline(Baseline::GiRandom, &series, gt_len, &params, 3, 11);
        let b = run_baseline(Baseline::GiRandom, &series, gt_len, &params, 3, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_names() {
        assert_eq!(Baseline::GiFix.to_string(), "GI-Fix");
        assert_eq!(Baseline::Discord.name(), "Discord");
    }
}
