//! Result persistence: markdown sections to stdout/file, raw results as
//! JSON for later re-plotting.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// A sink for experiment outputs: a directory receiving one `.md` and one
/// `.json` file per experiment, plus optional CSVs.
#[derive(Debug, Clone)]
pub struct ReportSink {
    dir: PathBuf,
}

impl ReportSink {
    /// Creates (if needed) the output directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a markdown section under `<name>.md` and echoes it to
    /// stdout with a title line.
    pub fn markdown(&self, name: &str, title: &str, body: &str) -> io::Result<()> {
        let text = format!("## {title}\n\n{body}\n");
        println!("{text}");
        fs::write(self.dir.join(format!("{name}.md")), &text)
    }

    /// Persists raw results as pretty JSON under `<name>.json`.
    pub fn json<T: Serialize>(&self, name: &str, value: &T) -> io::Result<()> {
        let text = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(self.dir.join(format!("{name}.json")), text)
    }

    /// Writes a CSV payload under `<name>.csv`.
    pub fn csv(&self, name: &str, payload: &str) -> io::Result<()> {
        fs::write(self.dir.join(format!("{name}.csv")), payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_artifact_kinds() {
        let dir = std::env::temp_dir().join("egi_eval_report_test");
        let sink = ReportSink::new(&dir).unwrap();
        sink.markdown("t", "Title", "| a |\n|---|\n| 1 |").unwrap();
        sink.json("t", &vec![1, 2, 3]).unwrap();
        sink.csv("t", "a,b\n1,2\n").unwrap();
        assert!(dir.join("t.md").exists());
        assert!(dir.join("t.json").exists());
        assert!(dir.join("t.csv").exists());
        let md = std::fs::read_to_string(dir.join("t.md")).unwrap();
        assert!(md.starts_with("## Title"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
