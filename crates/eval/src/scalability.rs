//! Figure 8: computation time vs. time series length, ensemble grammar
//! induction vs. STOMP (plus a 10%-budget anytime-STAMP column showing
//! what a deadline-bounded partial matrix profile costs), on
//! random-walk / ECG-like / EEG-like data.

use std::time::Instant;

use egi_core::EnsembleDetector;
use egi_discord::anytime::AnytimeStamp;
use egi_discord::stomp;
use egi_tskit::gen::{ecg_series, eeg_series, random_walk};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::runner::EnsembleParams;

/// The three Figure 8 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SeriesKind {
    /// Gaussian random walk (Figure 8a).
    RandomWalk,
    /// Synthetic ECG (Figure 8b).
    Ecg,
    /// Synthetic EEG (Figure 8c).
    Eeg,
}

impl SeriesKind {
    /// All three workloads in figure order.
    pub const ALL: [SeriesKind; 3] = [SeriesKind::RandomWalk, SeriesKind::Ecg, SeriesKind::Eeg];

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            SeriesKind::RandomWalk => "RW",
            SeriesKind::Ecg => "ECG",
            SeriesKind::Eeg => "EEG",
        }
    }

    /// Generates `len` points of this workload.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            SeriesKind::RandomWalk => random_walk(len, 1.0, &mut rng),
            SeriesKind::Ecg => ecg_series(len, 256, 0.02, &mut rng),
            SeriesKind::Eeg => eeg_series(len, 128.0, 0.2, &mut rng),
        }
    }
}

/// One measured point of Figure 8.
#[derive(Debug, Clone, Serialize)]
pub struct ScalabilityPoint {
    /// Workload.
    pub kind: &'static str,
    /// Series length.
    pub len: usize,
    /// Wall-clock seconds for the ensemble method.
    pub ensemble_secs: f64,
    /// Wall-clock seconds for STOMP.
    pub stomp_secs: f64,
    /// Wall-clock seconds for anytime STAMP over a 10% query budget
    /// (partial profile snapshot; subject to the same skip cap as
    /// STOMP).
    pub anytime10_secs: f64,
}

/// Measures both methods over `lengths` for one workload.
///
/// `window` is the sliding-window length (the paper finds run time roughly
/// independent of it). `skip_stomp_above` bounds the quadratic baseline in
/// quick runs (`None` = always run).
pub fn run_scalability(
    kind: SeriesKind,
    lengths: &[usize],
    window: usize,
    params: &EnsembleParams,
    seed: u64,
    skip_stomp_above: Option<usize>,
) -> Vec<ScalabilityPoint> {
    let mut out = Vec::with_capacity(lengths.len());
    for &len in lengths {
        let series = kind.generate(len, seed);

        let t0 = Instant::now();
        let det = EnsembleDetector::new(params.config(window));
        let report = det.detect(&series, 3, seed);
        let ensemble_secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(&report);

        let skip_quadratic = skip_stomp_above.map(|cap| len > cap).unwrap_or(false);
        let stomp_secs = if skip_quadratic {
            f64::NAN
        } else {
            let t0 = Instant::now();
            let mp = stomp(&series, window);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&mp);
            secs
        };
        let anytime10_secs = if skip_quadratic {
            f64::NAN
        } else {
            let t0 = Instant::now();
            let mut driver = AnytimeStamp::new(&series, window);
            driver.run_for(driver.window_count().div_ceil(10));
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&driver.snapshot());
            secs
        };
        out.push(ScalabilityPoint {
            kind: kind.name(),
            len,
            ensemble_secs,
            stomp_secs,
            anytime10_secs,
        });
    }
    out
}

/// Renders Figure 8 data as a markdown table.
pub fn render_fig8(points: &[ScalabilityPoint]) -> String {
    let mut out = String::from(
        "| Workload | Length | Ensemble (s) | STOMP (s) | Anytime STAMP 10% (s) | Speedup |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        let speedup = if p.stomp_secs.is_finite() && p.ensemble_secs > 0.0 {
            format!("{:.1}×", p.stomp_secs / p.ensemble_secs)
        } else {
            "—".to_string()
        };
        let stomp = if p.stomp_secs.is_finite() {
            format!("{:.3}", p.stomp_secs)
        } else {
            "skipped".to_string()
        };
        let anytime = if p.anytime10_secs.is_finite() {
            format!("{:.3}", p.anytime10_secs)
        } else {
            "skipped".to_string()
        };
        out.push_str(&format!(
            "| {} | {} | {:.3} | {} | {} | {} |\n",
            p.kind, p.len, p.ensemble_secs, stomp, anytime, speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_kinds() {
        for k in SeriesKind::ALL {
            let s = k.generate(2000, 3);
            assert_eq!(s.len(), 2000, "{:?}", k);
            assert!(s.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn measures_both_methods_on_small_input() {
        let params = EnsembleParams {
            n: 5,
            ..EnsembleParams::default()
        };
        let pts = run_scalability(SeriesKind::RandomWalk, &[1500], 100, &params, 1, None);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].ensemble_secs > 0.0);
        assert!(pts[0].stomp_secs > 0.0);
        assert!(pts[0].anytime10_secs > 0.0);
    }

    #[test]
    fn stomp_cap_skips_large_lengths() {
        let params = EnsembleParams {
            n: 4,
            ..EnsembleParams::default()
        };
        let pts = run_scalability(SeriesKind::Eeg, &[1200, 2400], 64, &params, 2, Some(1500));
        assert!(pts[0].stomp_secs.is_finite());
        assert!(pts[1].stomp_secs.is_nan());
        assert!(pts[0].anytime10_secs.is_finite());
        assert!(pts[1].anytime10_secs.is_nan());
        let rendered = render_fig8(&pts);
        assert!(rendered.contains("skipped"));
        assert!(rendered.contains("Anytime STAMP 10%"));
    }
}
