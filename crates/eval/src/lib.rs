//! # egi-eval — experiment harness
//!
//! Reproduces every table and figure of the paper's Section 7 on the
//! synthetic stand-in corpora (see DESIGN.md "Substitutions"):
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`metrics`] | Score (Eq. 5), HitRate, wins/ties/losses |
//! | [`runner`] | the five compared methods on one labeled series |
//! | [`table45`] | Tables 4–6 and the Figure 10 scatter data |
//! | [`sweeps`] | Tables 7–14 (ranges, N, τ, window length) |
//! | [`scalability`] | Figure 8 (runtime vs. length, vs. STOMP) |
//! | [`fig1`] | Figure 1 (parameter-sensitivity motivation) |
//! | [`multi`] | Section 7.5 (multiple anomalies) |
//! | [`report`] | markdown/JSON rendering of results |
//!
//! The `experiments` binary drives everything:
//! `cargo run --release -p egi-eval --bin experiments -- all --quick`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fig1;
pub mod metrics;
pub mod multi;
pub mod report;
pub mod runner;
pub mod scalability;
pub mod sweeps;
pub mod table45;

pub use metrics::{best_score, hit, score, Wtl};
pub use runner::{Baseline, EnsembleParams, ExperimentParams};
