//! Section 7.5: detecting multiple anomalies.
//!
//! Ten StarLightCurve-style series of length 43008 (42 instances) with two
//! planted anomalies each; a ground-truth anomaly counts as detected when
//! it overlaps at least one of the top-3 ranked candidates. The paper
//! reports 9/10 series with both anomalies found and 1/10 with one.

use egi_tskit::corpus::generate_multi_anomaly;
use egi_tskit::gen::UcrFamily;
use egi_tskit::window::intervals_overlap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::runner::{run_proposed, subseed, EnsembleParams};

/// Result of the multi-anomaly experiment.
#[derive(Debug, Clone, Serialize)]
pub struct MultiAnomalyResult {
    /// Per-series count of ground-truth anomalies detected (0..=2).
    pub detected_per_series: Vec<usize>,
    /// Number of anomalies planted per series.
    pub planted: usize,
}

impl MultiAnomalyResult {
    /// Series where every planted anomaly was found.
    pub fn fully_detected(&self) -> usize {
        self.detected_per_series
            .iter()
            .filter(|&&d| d == self.planted)
            .count()
    }

    /// Total detected across series.
    pub fn total_detected(&self) -> usize {
        self.detected_per_series.iter().sum()
    }
}

/// Runs the experiment: `series_count` series × `anomaly_count` anomalies.
pub fn run_multi_anomaly(
    series_count: usize,
    anomaly_count: usize,
    params: &EnsembleParams,
    top_k: usize,
    seed: u64,
) -> MultiAnomalyResult {
    let family = UcrFamily::StarLightCurve;
    let window = family.instance_length();
    let mut detected_per_series = Vec::with_capacity(series_count);
    for s in 0..series_count {
        let mut rng = StdRng::seed_from_u64(subseed(seed, s as u64));
        let m = generate_multi_anomaly(family, 42, anomaly_count, &mut rng);
        let cands = run_proposed(
            &m.series,
            window,
            params,
            top_k,
            subseed(seed, 777 + s as u64),
        );
        let detected = m
            .ground_truth
            .iter()
            .filter(|&&(gs, gl)| cands.iter().any(|&c| intervals_overlap(c, window, gs, gl)))
            .count();
        detected_per_series.push(detected);
    }
    MultiAnomalyResult {
        detected_per_series,
        planted: anomaly_count,
    }
}

/// Renders the Section 7.5 summary sentence plus a per-series table.
pub fn render_multi(result: &MultiAnomalyResult) -> String {
    let mut out = format!(
        "Detected both anomalies in {} of {} series; total {}/{} ground-truth anomalies found.\n\n| Series | Detected |\n|---|---|\n",
        result.fully_detected(),
        result.detected_per_series.len(),
        result.total_detected(),
        result.planted * result.detected_per_series.len(),
    );
    for (i, d) in result.detected_per_series.iter().enumerate() {
        out.push_str(&format!("| {} | {}/{} |\n", i + 1, d, result.planted));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_detects_most_anomalies() {
        let params = EnsembleParams {
            n: 10,
            ..EnsembleParams::default()
        };
        let r = run_multi_anomaly(2, 2, &params, 3, 9);
        assert_eq!(r.detected_per_series.len(), 2);
        assert!(r.detected_per_series.iter().all(|&d| d <= 2));
        // On StarLightCurve the anomaly is blatant; expect at least one
        // detection per series even with a small ensemble.
        assert!(
            r.total_detected() >= 2,
            "detected {:?}",
            r.detected_per_series
        );
    }

    #[test]
    fn render_summarizes() {
        let r = MultiAnomalyResult {
            detected_per_series: vec![2, 1, 2],
            planted: 2,
        };
        assert_eq!(r.fully_detected(), 2);
        assert_eq!(r.total_detected(), 5);
        let md = render_multi(&r);
        assert!(md.contains("2 of 3"));
        assert!(md.contains("5/6"));
    }
}
