//! Evaluation metrics (paper Section 7.1.2).

/// The paper's Eq. (5):
/// `Score = 1 − min(1, |PredictLocation − GTLocation| / GTLength)`.
///
/// 1.0 for an exact location match, 0.0 when the prediction misses the
/// ground truth by a full anomaly length or more.
pub fn score(predict: usize, gt_start: usize, gt_len: usize) -> f64 {
    assert!(gt_len > 0, "ground-truth length must be positive");
    let miss = predict.abs_diff(gt_start) as f64 / gt_len as f64;
    1.0 - miss.min(1.0)
}

/// Best Eq. (5) score over a set of candidate locations (the paper takes
/// the maximum over the top-3 candidates). Zero when `candidates` is
/// empty.
pub fn best_score(candidates: &[usize], gt_start: usize, gt_len: usize) -> f64 {
    candidates
        .iter()
        .map(|&p| score(p, gt_start, gt_len))
        .fold(0.0, f64::max)
}

/// Hit indicator: did any candidate overlap the ground truth
/// (`Score > 0`)? HitRate is the mean of this over a corpus.
pub fn hit(candidates: &[usize], gt_start: usize, gt_len: usize) -> bool {
    best_score(candidates, gt_start, gt_len) > 0.0
}

/// Wins/ties/losses of the proposed method against one baseline
/// (Tables 6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct Wtl {
    /// Series where the proposed method scored strictly higher.
    pub wins: usize,
    /// Series with (numerically) equal scores.
    pub ties: usize,
    /// Series where the baseline scored strictly higher.
    pub losses: usize,
}

impl Wtl {
    /// Tallies per-series `(proposed, baseline)` score pairs.
    /// Scores within `1e-9` count as ties.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut wtl = Wtl::default();
        for (p, b) in pairs {
            if (p - b).abs() <= 1e-9 {
                wtl.ties += 1;
            } else if p > b {
                wtl.wins += 1;
            } else {
                wtl.losses += 1;
            }
        }
        wtl
    }
}

impl std::fmt::Display for Wtl {
    /// Renders as the paper's `wins/ties/losses` notation.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.wins, self.ties, self.losses)
    }
}

/// Mean of a slice (0.0 when empty) — small local helper for reports.
pub fn mean_or_zero(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_scores_one() {
        assert_eq!(score(100, 100, 50), 1.0);
    }

    #[test]
    fn miss_by_full_length_scores_zero() {
        assert_eq!(score(150, 100, 50), 0.0);
        assert_eq!(score(50, 100, 50), 0.0);
        assert_eq!(score(500, 100, 50), 0.0);
    }

    #[test]
    fn half_miss_scores_half() {
        assert!((score(125, 100, 50) - 0.5).abs() < 1e-12);
        assert!((score(75, 100, 50) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_score_takes_max() {
        let cands = [0, 90, 300];
        assert!((best_score(&cands, 100, 50) - 0.8).abs() < 1e-12);
        assert_eq!(best_score(&[], 100, 50), 0.0);
    }

    #[test]
    fn hit_iff_positive_score() {
        assert!(hit(&[120], 100, 50));
        assert!(!hit(&[150], 100, 50));
        assert!(!hit(&[], 100, 50));
    }

    #[test]
    fn wtl_tallies() {
        let wtl = Wtl::from_pairs([(1.0, 0.5), (0.5, 0.5), (0.2, 0.9), (0.7, 0.1)]);
        assert_eq!(
            wtl,
            Wtl {
                wins: 2,
                ties: 1,
                losses: 1
            }
        );
        assert_eq!(wtl.to_string(), "2/1/1");
    }

    #[test]
    fn wtl_treats_near_equal_as_tie() {
        let wtl = Wtl::from_pairs([(0.5, 0.5 + 1e-12)]);
        assert_eq!(wtl.ties, 1);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_gt_length_panics() {
        score(0, 0, 0);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean_or_zero(&[]), 0.0);
        assert_eq!(mean_or_zero(&[1.0, 3.0]), 2.0);
    }
}
