//! Property-based tests for the SAX layer.
//!
//! These pin the invariants the detectors rely on: the fast prefix-sum path
//! matches the naive specification, numerosity reduction is lossless about
//! run structure, and symbol assignment is consistent across resolutions.

use egi_sax::stream::{discretize_from_stream, PaaStream};
use egi_sax::{
    discretize_series, discretize_series_naive, numerosity_reduce, BreakpointTable, FastSax,
    MultiResBreakpoints, NumerosityReduced, SaxConfig, SaxWord,
};
use egi_tskit::PrefixStats;
use proptest::prelude::*;

/// Splits `data` into the append schedule described by `cuts` (chunk
/// sizes cycle through `cuts`, clamped to what remains; 1-point appends
/// included whenever a cut is 1).
fn append_schedule<'a>(data: &'a [f64], cuts: &[usize]) -> Vec<&'a [f64]> {
    let mut parts = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < data.len() {
        let c = cuts[i % cuts.len()].max(1).min(data.len() - at);
        parts.push(&data[at..at + c]);
        at += c;
        i += 1;
    }
    parts
}

fn series_strategy(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 8..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FastPAA coefficients equal naive z-normalize+PAA coefficients.
    #[test]
    fn fast_paa_matches_naive(data in series_strategy(200), w in 1usize..12, n in 8usize..64) {
        prop_assume!(n <= data.len());
        prop_assume!(w <= n);
        let fast = FastSax::new(&data);
        let mut out = vec![0.0; w];
        for start in [0, (data.len() - n) / 2, data.len() - n] {
            fast.paa_znorm_into(start, n, &mut out);
            let mut z = data[start..start + n].to_vec();
            egi_tskit::stats::znormalize(&mut z);
            let naive = egi_sax::paa(&z, w);
            for (f, nv) in out.iter().zip(&naive) {
                prop_assert!((f - nv).abs() < 1e-6, "start {} coeff {} vs {}", start, f, nv);
            }
        }
    }

    /// Whole-series fast discretization equals the naive specification.
    ///
    /// Words can only differ if a coefficient lands within float error of a
    /// breakpoint; with continuous random data this has probability ~0, and
    /// any persistent failure indicates a real boundary-convention bug.
    #[test]
    fn fast_discretization_matches_naive(
        data in series_strategy(150),
        w in 2usize..8,
        a in 2usize..10,
        n in 10usize..40,
    ) {
        prop_assume!(n <= data.len());
        prop_assume!(w <= n);
        let multi = MultiResBreakpoints::new(10);
        let fast = FastSax::new(&data);
        let cfg = SaxConfig::new(w, a);
        let got = discretize_series(&fast, n, cfg, &multi);
        let expected = discretize_series_naive(&data, n, cfg);
        prop_assert_eq!(got, expected);
    }

    /// Multi-resolution symbol lookup agrees with each single table.
    #[test]
    fn multires_symbols_agree(v in -5.0f64..5.0, amax in 2usize..21) {
        let multi = MultiResBreakpoints::new(amax);
        for a in 2..=amax {
            let table = BreakpointTable::new(a);
            prop_assert_eq!(multi.symbol(v, a), table.symbol(v));
        }
    }

    /// Symbols from a finer alphabet refine (never contradict) the coarse
    /// ordering: if value x < y then symbol(x) <= symbol(y) for every a.
    #[test]
    fn symbols_are_monotone(mut x in -4.0f64..4.0, mut y in -4.0f64..4.0, a in 2usize..15) {
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        let table = BreakpointTable::new(a);
        prop_assert!(table.symbol(x) <= table.symbol(y));
    }

    /// Numerosity reduction: reconstructing the full sequence from tokens
    /// and run ranges reproduces the input exactly (the paper's claim that
    /// `S_NR` retains all information).
    #[test]
    fn numerosity_reduction_is_lossless(symbols in prop::collection::vec(0u8..4, 1..80)) {
        let words: Vec<SaxWord> = symbols.iter().map(|&s| SaxWord(vec![s])).collect();
        let nr = numerosity_reduce(words.clone(), 4);
        let mut rebuilt = Vec::with_capacity(words.len());
        for i in 0..nr.len() {
            let (s, e) = nr.run_range(i);
            for _ in s..e {
                rebuilt.push(nr.tokens[i].word.clone());
            }
        }
        prop_assert_eq!(rebuilt, words);
    }

    /// Streaming/batch parity, SAX layer (PR 4): a PAA stream grown
    /// through any randomized append schedule (including 1-point
    /// appends) is bit-identical to the batch stream, and therefore the
    /// full SAX word sequences and numerosity-reduced token sequences
    /// it induces are identical too.
    #[test]
    fn incrementally_grown_stream_matches_batch_for_any_schedule(
        data in series_strategy(180),
        cuts in prop::collection::vec(1usize..30, 1..6),
        w in 2usize..8,
        a in 2usize..10,
        n in 8usize..40,
    ) {
        prop_assume!(w <= n);
        let mut stats = PrefixStats::new(&[]);
        let mut grown = PaaStream::empty(n, w);
        for part in append_schedule(&data, &cuts) {
            stats.extend(part);
            grown.extend_from_stats(&stats);
        }
        let fast = FastSax::new(&data);
        let batch = PaaStream::new(&fast, n, w);
        prop_assert_eq!(grown.count, batch.count);
        prop_assert_eq!(&grown.coeffs, &batch.coeffs);
        // Word + numerosity level: the grown stream discretizes to the
        // exact batch token sequence.
        let multi = MultiResBreakpoints::new(10);
        let cfg = SaxConfig::new(w, a);
        let from_grown = discretize_from_stream(&grown, cfg, &multi);
        let direct = discretize_series(&fast, n, cfg, &multi);
        prop_assert_eq!(from_grown, direct);
    }

    /// Online numerosity reduction (word-at-a-time fold) equals the
    /// batch reducer for every word sequence.
    #[test]
    fn online_numerosity_fold_matches_batch(
        symbols in prop::collection::vec(0u8..5, 0..120),
        window in 1usize..10,
    ) {
        let words: Vec<SaxWord> = symbols.iter().map(|&s| SaxWord(vec![s])).collect();
        let batch = numerosity_reduce(words.clone(), window);
        let mut online = NumerosityReduced::empty(window);
        let mut retained = 0;
        for word in words {
            if online.push_word(word) {
                retained += 1;
            }
        }
        prop_assert_eq!(retained, batch.len());
        prop_assert_eq!(online, batch);
    }

    /// PAA of a constant-shifted/scaled series yields the same SAX word
    /// (offset & amplitude invariance through z-normalization).
    #[test]
    fn sax_word_invariance(
        data in prop::collection::vec(-10.0f64..10.0, 16..64),
        scale in 0.5f64..20.0,
        offset in -100.0f64..100.0,
    ) {
        // Skip near-flat windows where z-normalization degenerates.
        prop_assume!(egi_tskit::stats::stddev(&data) > 1e-3);
        let transformed: Vec<f64> = data.iter().map(|v| v * scale + offset).collect();
        let cfg = SaxConfig::new(4, 5);
        let table = BreakpointTable::new(5);
        let w1 = egi_sax::sax_word(&data, cfg, &table);
        let w2 = egi_sax::sax_word(&transformed, cfg, &table);
        prop_assert_eq!(w1, w2);
    }
}
