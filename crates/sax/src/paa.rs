//! Piecewise Aggregate Approximation.
//!
//! PAA reduces a length-`n` subsequence to `w` coefficients, each the mean
//! of one segment (paper Section 4.1). When `w ∤ n` we use the standard
//! integer-boundary convention: segment `i` covers samples
//! `[⌊i·n/w⌋, ⌊(i+1)·n/w⌋)`, so segment lengths differ by at most one. The
//! prefix-sum fast path ([`crate::discretize::FastSax`]) uses the *same*
//! boundaries, which is what lets the equivalence tests demand exact
//! agreement rather than approximate.

/// Segment boundary of the `i`-th PAA segment for a window of `n` samples
/// split into `w` segments.
#[inline]
pub(crate) fn segment_bound(i: usize, n: usize, w: usize) -> usize {
    // i <= w, so i * n fits comfortably in u64/usize for realistic sizes.
    i * n / w
}

/// Computes the PAA coefficients of `sub` into a fresh vector.
///
/// The input is used as-is; z-normalize beforehand if offset/amplitude
/// invariance is wanted (the SAX pipeline does).
///
/// # Panics
///
/// Panics if `w == 0` or `w > sub.len()`.
pub fn paa(sub: &[f64], w: usize) -> Vec<f64> {
    let mut out = vec![0.0; w];
    paa_into(sub, &mut out);
    out
}

/// Computes PAA coefficients of `sub` into `out` (`out.len()` = `w`).
///
/// # Panics
///
/// Panics if `out.is_empty()` or `out.len() > sub.len()`.
pub fn paa_into(sub: &[f64], out: &mut [f64]) {
    let n = sub.len();
    let w = out.len();
    assert!(w > 0, "PAA size must be positive");
    assert!(w <= n, "PAA size {w} exceeds subsequence length {n}");
    for (i, coeff) in out.iter_mut().enumerate() {
        let s = segment_bound(i, n, w);
        let e = segment_bound(i + 1, n, w);
        let sum: f64 = sub[s..e].iter().sum();
        *coeff = sum / (e - s) as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let sub = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(paa(&sub, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn w_equals_n_is_identity() {
        let sub = [4.0, -1.0, 0.5];
        assert_eq!(paa(&sub, 3), sub.to_vec());
    }

    #[test]
    fn w_one_is_global_mean() {
        let sub = [2.0, 4.0, 6.0, 8.0];
        assert_eq!(paa(&sub, 1), vec![5.0]);
    }

    #[test]
    fn uneven_division_covers_everything() {
        // n = 7, w = 3 → boundaries 0,2,4,7: segments of 2,2,3 samples.
        let sub = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        let got = paa(&sub, 3);
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn segment_bounds_partition() {
        for n in 1..40usize {
            for w in 1..=n {
                let mut total = 0;
                for i in 0..w {
                    let s = segment_bound(i, n, w);
                    let e = segment_bound(i + 1, n, w);
                    assert!(e > s, "empty segment n={n} w={w} i={i}");
                    total += e - s;
                }
                assert_eq!(total, n, "segments don't partition n={n} w={w}");
                assert_eq!(segment_bound(w, n, w), n);
            }
        }
    }

    #[test]
    fn paa_preserves_mean() {
        // Weighted mean of PAA coefficients equals the subsequence mean.
        let sub: Vec<f64> = (0..17).map(|i| (i as f64).sin() * 2.0 + 0.3).collect();
        let w = 5;
        let coeffs = paa(&sub, w);
        let mut weighted = 0.0;
        for (i, &c) in coeffs.iter().enumerate() {
            let len = segment_bound(i + 1, 17, w) - segment_bound(i, 17, w);
            weighted += c * len as f64;
        }
        let direct: f64 = sub.iter().sum();
        assert!((weighted - direct).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "PAA size must be positive")]
    fn zero_w_panics() {
        paa(&[1.0, 2.0], 0);
    }

    #[test]
    #[should_panic(expected = "exceeds subsequence length")]
    fn oversized_w_panics() {
        paa(&[1.0, 2.0], 3);
    }
}
