//! Whole-series discretization.
//!
//! [`FastSax`] is the production path: prefix-sum statistics make each
//! window's z-normalized PAA cost `O(w)` instead of `O(n)` (paper
//! Algorithm 2), and the merged breakpoint table resolves symbols for any
//! alphabet with one binary search. [`discretize_series_naive`] is the
//! executable specification the fast path is tested against.

use egi_tskit::stats::{is_flat, PrefixStats};
use egi_tskit::window::window_count;

use crate::breakpoints::BreakpointTable;
use crate::multires::MultiResBreakpoints;
use crate::numerosity::{numerosity_reduce, NumerosityReduced};
use crate::paa::segment_bound;
use crate::word::{sax_word, SaxConfig, SaxWord};

/// Prefix-sum-accelerated SAX over one series (paper Algorithm 2).
///
/// Construction is `O(N)`; each subsequent word extraction is
/// `O(w log a)`, independent of the window length `n`.
#[derive(Debug, Clone)]
pub struct FastSax<'a> {
    data: &'a [f64],
    stats: PrefixStats,
}

impl<'a> FastSax<'a> {
    /// Precomputes `ESum_x` / `ESum_xx` over `data`.
    pub fn new(data: &'a [f64]) -> Self {
        Self {
            data,
            stats: PrefixStats::new(data),
        }
    }

    /// The underlying series.
    pub fn data(&self) -> &'a [f64] {
        self.data
    }

    /// The precomputed prefix-sum statistics (`ESum_x` / `ESum_xx`).
    ///
    /// Exposed so append-driven consumers ([`crate::stream`]'s growable
    /// stream, the streaming ensemble detector) can run the same
    /// [`paa_znorm_from_stats`] kernel on statistics they own and
    /// extend incrementally.
    pub fn stats(&self) -> &PrefixStats {
        &self.stats
    }

    /// Series length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// PAA coefficients of the z-normalized window `[start, start + n)`,
    /// written into `out` (whose length is the PAA size `w`).
    ///
    /// This is Algorithm 2 verbatim: window mean and stddev from the
    /// prefix sums in O(1), then one prefix-sum subtraction per segment.
    /// Flat windows (per [`egi_tskit::stats::is_flat`]) produce all-zero
    /// coefficients, mirroring [`egi_tskit::stats::znormalize`].
    ///
    /// # Panics
    ///
    /// Panics if the window is out of bounds or `out.len() > n`.
    pub fn paa_znorm_into(&self, start: usize, n: usize, out: &mut [f64]) {
        paa_znorm_from_stats(&self.stats, start, n, out);
    }

    /// SAX word of window `[start, start + n)` under a single-resolution
    /// breakpoint table.
    pub fn word(&self, start: usize, n: usize, w: usize, table: &BreakpointTable) -> SaxWord {
        let mut coeffs = vec![0.0; w];
        self.paa_znorm_into(start, n, &mut coeffs);
        SaxWord(coeffs.iter().map(|&c| table.symbol(c)).collect())
    }

    /// SAX word of window `[start, start + n)` under alphabet `a`, using a
    /// shared multi-resolution table (one binary search per coefficient).
    pub fn word_multires(
        &self,
        start: usize,
        n: usize,
        cfg: SaxConfig,
        multi: &MultiResBreakpoints,
        scratch: &mut Vec<f64>,
    ) -> SaxWord {
        scratch.clear();
        scratch.resize(cfg.w, 0.0);
        self.paa_znorm_into(start, n, scratch);
        SaxWord(scratch.iter().map(|&c| multi.symbol(c, cfg.a)).collect())
    }
}

/// The FastPAA kernel (paper Algorithm 2) expressed directly over
/// prefix-sum statistics: PAA coefficients of the z-normalized window
/// `[start, start + n)`, written into `out` (whose length is the PAA
/// size `w`).
///
/// This is the *one* code path every PAA consumer runs — batch
/// ([`FastSax::paa_znorm_into`] delegates here) and streaming (the
/// detectors extend their own [`PrefixStats`] per append and call this
/// for each fresh window). A window's coefficients read only the prefix
/// sums in `[start, start + n]`, and [`PrefixStats::extend`] is
/// bit-identical to a batch rebuild, so coefficients computed before an
/// append equal those computed after it — the keystone of the
/// streaming/batch SAX parity contract.
///
/// Flat windows (per [`egi_tskit::stats::is_flat`]) produce all-zero
/// coefficients, mirroring [`egi_tskit::stats::znormalize`].
///
/// # Panics
///
/// Panics if the window is out of range of the statistics or
/// `out.len() > n`.
pub fn paa_znorm_from_stats(stats: &PrefixStats, start: usize, n: usize, out: &mut [f64]) {
    let w = out.len();
    assert!(w > 0 && w <= n, "PAA size {w} invalid for window {n}");
    assert!(start + n <= stats.len(), "window out of bounds");
    let end = start + n;
    let mu = stats.range_mean(start, end);
    let var = if n < 2 {
        0.0
    } else {
        stats.range_variance(start, end)
    };
    if is_flat(mu, var) {
        out.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let sigma = var.sqrt();
    for (i, coeff) in out.iter_mut().enumerate() {
        let s = start + segment_bound(i, n, w);
        let e = start + segment_bound(i + 1, n, w);
        let seg_mean = stats.range_sum(s, e) / (e - s) as f64;
        *coeff = (seg_mean - mu) / sigma;
    }
}

/// Discretizes the whole series with the fast path and numerosity-reduces.
///
/// `n` is the sliding-window length. Returns an empty token sequence when
/// the series is shorter than the window.
pub fn discretize_series(
    fast: &FastSax<'_>,
    n: usize,
    cfg: SaxConfig,
    multi: &MultiResBreakpoints,
) -> NumerosityReduced {
    let count = window_count(fast.len(), n);
    let mut words = Vec::with_capacity(count);
    let mut scratch = Vec::with_capacity(cfg.w);
    for start in 0..count {
        words.push(fast.word_multires(start, n, cfg, multi, &mut scratch));
    }
    numerosity_reduce(words, n)
}

/// Reference implementation: per-window copy, z-normalize, PAA, per-`a`
/// breakpoint table. `O(N·n)` — for tests and the FastPAA ablation bench.
pub fn discretize_series_naive(data: &[f64], n: usize, cfg: SaxConfig) -> NumerosityReduced {
    let table = BreakpointTable::new(cfg.a);
    let count = window_count(data.len(), n);
    let mut words = Vec::with_capacity(count);
    for start in 0..count {
        words.push(sax_word(&data[start..start + n], cfg, &table));
    }
    numerosity_reduce(words, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 / 7.0).sin() * 2.0 + (i as f64 / 23.0).cos())
            .collect()
    }

    #[test]
    fn fast_paa_matches_naive_paa() {
        let data = wave(300);
        let fast = FastSax::new(&data);
        let mut out = vec![0.0; 6];
        for start in [0usize, 13, 140, 268] {
            let n = 32;
            fast.paa_znorm_into(start, n, &mut out);
            let mut z = data[start..start + n].to_vec();
            egi_tskit::stats::znormalize(&mut z);
            let naive = crate::paa::paa(&z, 6);
            for (f, nv) in out.iter().zip(&naive) {
                assert!((f - nv).abs() < 1e-9, "start {start}: {f} vs {nv}");
            }
        }
    }

    #[test]
    fn fast_paa_flat_window_is_zero() {
        let mut data = wave(100);
        for v in data[40..60].iter_mut() {
            *v = 3.25;
        }
        let fast = FastSax::new(&data);
        let mut out = vec![0.0; 4];
        fast.paa_znorm_into(42, 16, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fast_and_naive_discretization_agree() {
        let data = wave(500);
        let n = 48;
        let multi = MultiResBreakpoints::new(10);
        let fast = FastSax::new(&data);
        for &(w, a) in &[(4usize, 4usize), (7, 3), (10, 10), (2, 2)] {
            let cfg = SaxConfig::new(w, a);
            let fast_nr = discretize_series(&fast, n, cfg, &multi);
            let naive_nr = discretize_series_naive(&data, n, cfg);
            assert_eq!(fast_nr, naive_nr, "divergence at w={w} a={a}");
        }
    }

    #[test]
    fn short_series_yields_empty() {
        let data = [1.0, 2.0];
        let fast = FastSax::new(&data);
        let multi = MultiResBreakpoints::new(4);
        let nr = discretize_series(&fast, 10, SaxConfig::new(2, 3), &multi);
        assert!(nr.is_empty());
        assert_eq!(nr.end_offset, 0);
    }

    #[test]
    fn token_count_never_exceeds_window_count() {
        let data = wave(256);
        let fast = FastSax::new(&data);
        let multi = MultiResBreakpoints::new(6);
        let nr = discretize_series(&fast, 32, SaxConfig::new(4, 4), &multi);
        assert!(nr.len() <= window_count(256, 32));
        assert!(!nr.is_empty());
    }

    #[test]
    fn offsets_strictly_increase() {
        let data = wave(400);
        let fast = FastSax::new(&data);
        let multi = MultiResBreakpoints::new(8);
        let nr = discretize_series(&fast, 25, SaxConfig::new(5, 5), &multi);
        for pair in nr.tokens.windows(2) {
            assert!(pair[0].offset < pair[1].offset);
        }
    }

    #[test]
    fn word_multires_equals_word_single() {
        let data = wave(200);
        let fast = FastSax::new(&data);
        let multi = MultiResBreakpoints::new(12);
        let mut scratch = Vec::new();
        for a in 2..=12 {
            let table = BreakpointTable::new(a);
            for start in [0usize, 50, 150] {
                let w1 = fast.word(start, 40, 8, &table);
                let w2 = fast.word_multires(start, 40, SaxConfig::new(8, a), &multi, &mut scratch);
                assert_eq!(w1, w2, "a={a} start={start}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "window out of bounds")]
    fn out_of_bounds_window_panics() {
        let data = wave(50);
        let fast = FastSax::new(&data);
        let mut out = vec![0.0; 4];
        fast.paa_znorm_into(45, 10, &mut out);
    }
}
