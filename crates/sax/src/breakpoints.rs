//! Gaussian equiprobable breakpoint tables.
//!
//! SAX maps each PAA coefficient to a symbol by locating it among `a − 1`
//! breakpoints chosen so the standard normal density assigns equal
//! probability `1/a` to every region (paper Section 4.1, Figure 3). The
//! breakpoints are `β_i = Φ⁻¹(i/a)` for `i = 1..a−1`, computed here with
//! Acklam's rational approximation of the probit function (relative error
//! below 1.15e−9 — far tighter than discretization needs).

/// Largest supported alphabet size. The paper sweeps `a ≤ 20`.
pub const MAX_ALPHABET: usize = 26; // one symbol per Latin letter

/// Smallest meaningful alphabet size.
pub const MIN_ALPHABET: usize = 2;

/// Inverse CDF (probit) of the standard normal distribution.
///
/// Peter Acklam's algorithm: rational approximations on the central and
/// tail regions. Input must lie in `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit input must be in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `a − 1` breakpoints for one alphabet size.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakpointTable {
    alphabet: usize,
    cuts: Vec<f64>,
}

impl BreakpointTable {
    /// Builds the equiprobable breakpoint table for alphabet size `a`.
    ///
    /// # Panics
    ///
    /// Panics unless `MIN_ALPHABET ≤ a ≤ MAX_ALPHABET`.
    pub fn new(a: usize) -> Self {
        assert!(
            (MIN_ALPHABET..=MAX_ALPHABET).contains(&a),
            "alphabet size {a} outside [{MIN_ALPHABET}, {MAX_ALPHABET}]"
        );
        let cuts = (1..a)
            .map(|i| inverse_normal_cdf(i as f64 / a as f64))
            .collect();
        Self { alphabet: a, cuts }
    }

    /// Alphabet size this table was built for.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// The sorted breakpoints (`len == alphabet − 1`).
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// Maps a PAA coefficient to its symbol index in `0..alphabet`.
    ///
    /// Region `i` is `[β_i, β_{i+1})` with `β_0 = −∞`; binary search makes
    /// this `O(log a)`.
    #[inline]
    pub fn symbol(&self, value: f64) -> u8 {
        // partition_point returns the count of cuts <= value, i.e. the
        // index of the first region whose lower bound exceeds value.
        self.cuts.partition_point(|&c| c <= value) as u8
    }

    /// Renders a symbol index as a lowercase letter (`0 → 'a'`).
    pub fn letter(symbol: u8) -> char {
        (b'a' + symbol) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        // Φ⁻¹(0.975) ≈ 1.959964
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        // Deep tails stay finite and monotone.
        assert!(inverse_normal_cdf(1e-12) < -6.0);
        assert!(inverse_normal_cdf(1.0 - 1e-12) > 6.0);
    }

    #[test]
    fn probit_is_odd_function() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "probit input")]
    fn probit_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn table_a3_matches_paper() {
        // Paper Figure 3: a = 3 → breakpoints ±0.43.
        let t = BreakpointTable::new(3);
        assert_eq!(t.cuts().len(), 2);
        assert!((t.cuts()[0] + 0.4307).abs() < 1e-3);
        assert!((t.cuts()[1] - 0.4307).abs() < 1e-3);
    }

    #[test]
    fn table_a4_matches_sax_literature() {
        // Canonical SAX table: a = 4 → −0.67, 0, 0.67.
        let t = BreakpointTable::new(4);
        assert!((t.cuts()[0] + 0.6745).abs() < 1e-3);
        assert!(t.cuts()[1].abs() < 1e-9);
        assert!((t.cuts()[2] - 0.6745).abs() < 1e-3);
    }

    #[test]
    fn cuts_are_sorted_and_symmetric() {
        for a in MIN_ALPHABET..=MAX_ALPHABET {
            let t = BreakpointTable::new(a);
            assert_eq!(t.cuts().len(), a - 1);
            for w in t.cuts().windows(2) {
                assert!(w[0] < w[1], "a={a} cuts not increasing");
            }
            // Symmetry: β_i = −β_{a−i}.
            for i in 0..t.cuts().len() {
                let j = t.cuts().len() - 1 - i;
                assert!(
                    (t.cuts()[i] + t.cuts()[j]).abs() < 1e-8,
                    "a={a} not symmetric"
                );
            }
        }
    }

    #[test]
    fn symbol_assignment_a3() {
        let t = BreakpointTable::new(3);
        assert_eq!(t.symbol(-1.0), 0); // below −0.43 → 'a'
        assert_eq!(t.symbol(0.0), 1); // middle → 'b'
        assert_eq!(t.symbol(1.0), 2); // above 0.43 → 'c'
    }

    #[test]
    fn symbol_boundary_is_left_closed() {
        let t = BreakpointTable::new(4);
        // Region convention [β_i, β_{i+1}): the cut itself belongs above.
        let cut = t.cuts()[1]; // 0.0
        assert_eq!(t.symbol(cut), 2);
        assert_eq!(t.symbol(cut - 1e-12), 1);
    }

    #[test]
    fn symbols_cover_whole_alphabet() {
        for a in MIN_ALPHABET..=10 {
            let t = BreakpointTable::new(a);
            let mut seen = vec![false; a];
            for i in -400..=400 {
                let v = i as f64 / 100.0;
                seen[t.symbol(v) as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "a={a}: not all symbols reachable");
        }
    }

    #[test]
    fn letters_render() {
        assert_eq!(BreakpointTable::letter(0), 'a');
        assert_eq!(BreakpointTable::letter(2), 'c');
        assert_eq!(BreakpointTable::letter(25), 'z');
    }

    #[test]
    #[should_panic(expected = "alphabet size")]
    fn rejects_alphabet_of_one() {
        BreakpointTable::new(1);
    }
}
