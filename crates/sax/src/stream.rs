//! Shared PAA coefficient streams.
//!
//! A window's PAA coefficients depend only on the window length `n` and
//! the PAA size `w` — **not** on the alphabet size `a`. Ensemble members
//! that share `w` and differ only in `a` therefore recompute identical
//! coefficient streams under [`discretize_series`]. [`PaaStream`]
//! materializes the coefficients of every sliding window once
//! (`O(N·w)`), and [`discretize_from_stream`] turns one stream into a
//! numerosity-reduced token sequence for any alphabet in `O(N·w·log a)`
//! symbol lookups with no PAA recomputation — the ensemble runtime's PAA
//! deduplication.
//!
//! For append-only workloads (the streaming ensemble detector), a
//! stream also grows incrementally: [`PaaStream::empty`] starts with no
//! windows and [`PaaStream::extend_from_stats`] appends the coefficient
//! rows of every window completed by newly ingested points, running the
//! exact batch kernel ([`paa_znorm_from_stats`]) on prefix-sum
//! statistics the caller extends per append — so an incrementally grown
//! stream is **bit-identical** to [`PaaStream::new`] over the full
//! series, for every append schedule (property-tested).
//!
//! [`discretize_series`]: crate::discretize::discretize_series

use egi_tskit::stats::PrefixStats;
use egi_tskit::window::window_count;

use crate::discretize::{paa_znorm_from_stats, FastSax};
use crate::multires::MultiResBreakpoints;
use crate::numerosity::{numerosity_reduce, NumerosityReduced};
use crate::word::{SaxConfig, SaxWord};

/// The PAA coefficients of every sliding window of one series, for one
/// `(n, w)` pair, row-major (`count × w`).
#[derive(Debug, Clone)]
pub struct PaaStream {
    /// Sliding-window length the stream was computed with.
    pub n: usize,
    /// PAA size (coefficients per window).
    pub w: usize,
    /// Number of windows.
    pub count: usize,
    /// Row-major coefficients: window `i` occupies `[i·w, (i+1)·w)`.
    pub coeffs: Vec<f64>,
}

impl PaaStream {
    /// Computes the stream for all windows of length `n` over the series
    /// behind `fast`, with `w` PAA segments per window.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `w > n`.
    pub fn new(fast: &FastSax<'_>, n: usize, w: usize) -> Self {
        let mut stream = Self::empty(n, w);
        stream.extend_from_stats(fast.stats());
        stream
    }

    /// An empty stream (no windows yet) for incremental building via
    /// [`PaaStream::extend_from_stats`].
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `w > n`.
    pub fn empty(n: usize, w: usize) -> Self {
        assert!(w > 0 && w <= n, "PAA size {w} invalid for window {n}");
        Self {
            n,
            w,
            count: 0,
            coeffs: Vec::new(),
        }
    }

    /// Appends the coefficient rows of every window the series behind
    /// `stats` has completed beyond the stream's current coverage;
    /// returns how many rows were added.
    ///
    /// `stats` must be the prefix-sum statistics of the *same* series
    /// the stream has seen so far, extended with the newly appended
    /// points ([`PrefixStats::extend`]). Existing rows are never
    /// touched: a window's coefficients read only the prefix sums in
    /// `[start, start + n]`, which `extend` leaves bit-identical, so
    /// after any append schedule the stream equals [`PaaStream::new`]
    /// over the full series (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `stats` covers fewer points than the windows already
    /// materialized (i.e. it belongs to a shorter series).
    pub fn extend_from_stats(&mut self, stats: &PrefixStats) -> usize {
        let target = window_count(stats.len(), self.n);
        assert!(
            target >= self.count,
            "stats cover {} windows but the stream already has {}",
            target,
            self.count
        );
        let fresh = target - self.count;
        self.coeffs.resize(target * self.w, 0.0);
        for (row, start) in self.coeffs[self.count * self.w..]
            .chunks_exact_mut(self.w)
            .zip(self.count..target)
        {
            paa_znorm_from_stats(stats, start, self.n, row);
        }
        self.count = target;
        fresh
    }

    /// Retires the windows evicted by dropping `points` from the front
    /// of the underlying series, recomputing every surviving row from
    /// the **rebased** prefix sums `stats`
    /// ([`PrefixStats::rebase`](egi_tskit::stats::PrefixStats::rebase)
    /// over the suffix). Returns how many rows the rebuilt stream
    /// holds.
    ///
    /// Surviving windows cover the same raw points as before, but a
    /// row's z-normalization statistics are prefix-sum *differences*,
    /// and rebased sums accumulate from a different origin — the stored
    /// coefficients are not bitwise reusable, so the whole stream is
    /// recomputed through the batch kernel (`O(remaining · w)`,
    /// allocation-reusing). The result is **bit-identical** to
    /// [`PaaStream::new`] over the suffix, which is what the streaming
    /// detector's suffix-parity contract needs; the recompute cost is
    /// the SAX-side mirror of the discord monitor's eviction
    /// re-transform.
    ///
    /// The stream may lag the series when eviction strikes (appends
    /// extend streams lazily); the rebuild then also catches it up to
    /// every window the suffix supports.
    ///
    /// # Panics
    ///
    /// Panics if the implied pre-eviction series (`stats` plus the
    /// `points` evicted) could not have produced the windows already
    /// materialized — i.e. `stats` belongs to a shorter series than the
    /// one this stream was built over.
    pub fn evict_front(&mut self, points: usize, stats: &PrefixStats) -> usize {
        let target = window_count(stats.len(), self.n);
        assert!(
            target + points >= self.count,
            "stats cover {} windows after {} evicted points, but the stream \
             already had {}",
            target,
            points,
            self.count
        );
        self.count = 0;
        self.coeffs.clear();
        self.extend_from_stats(stats)
    }

    /// Capacity (in `f64`s) retained by the coefficient buffer — cheap
    /// accessor for memory-bound assertions on eviction workloads.
    pub fn capacity(&self) -> usize {
        self.coeffs.capacity()
    }

    /// The coefficient row of window `start`.
    pub fn row(&self, start: usize) -> &[f64] {
        &self.coeffs[start * self.w..(start + 1) * self.w]
    }
}

/// Discretizes from a precomputed coefficient stream: per-coefficient
/// symbol lookup under alphabet `cfg.a`, then numerosity reduction.
///
/// Equivalent to [`discretize_series`] for the same `(n, w, a)` — the
/// property tests pin the two paths to agree exactly.
///
/// # Panics
///
/// Panics if `cfg.w` differs from the stream's `w`.
///
/// [`discretize_series`]: crate::discretize::discretize_series
pub fn discretize_from_stream(
    stream: &PaaStream,
    cfg: SaxConfig,
    multi: &MultiResBreakpoints,
) -> NumerosityReduced {
    assert_eq!(cfg.w, stream.w, "config w does not match stream");
    let words: Vec<SaxWord> = stream
        .coeffs
        .chunks_exact(stream.w)
        .map(|row| SaxWord(row.iter().map(|&c| multi.symbol(c, cfg.a)).collect()))
        .collect();
    numerosity_reduce(words, stream.n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::discretize_series;

    fn wave(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 / 9.0).sin() * 3.0 + (i as f64 / 31.0).cos())
            .collect()
    }

    #[test]
    fn stream_discretization_matches_direct_path() {
        let data = wave(400);
        let fast = FastSax::new(&data);
        let multi = MultiResBreakpoints::new(10);
        let n = 40;
        for &w in &[2usize, 5, 8] {
            let stream = PaaStream::new(&fast, n, w);
            for a in 2..=10 {
                let cfg = SaxConfig::new(w, a);
                let from_stream = discretize_from_stream(&stream, cfg, &multi);
                let direct = discretize_series(&fast, n, cfg, &multi);
                assert_eq!(from_stream, direct, "divergence at w={w} a={a}");
            }
        }
    }

    #[test]
    fn stream_rows_match_fast_paa() {
        let data = wave(120);
        let fast = FastSax::new(&data);
        let stream = PaaStream::new(&fast, 16, 4);
        let mut direct = vec![0.0; 4];
        for start in [0usize, 7, stream.count - 1] {
            fast.paa_znorm_into(start, 16, &mut direct);
            assert_eq!(stream.row(start), direct.as_slice(), "row {start}");
        }
    }

    #[test]
    fn empty_series_yields_empty_stream() {
        let data = wave(5);
        let fast = FastSax::new(&data);
        let stream = PaaStream::new(&fast, 10, 3);
        assert_eq!(stream.count, 0);
        let multi = MultiResBreakpoints::new(4);
        let nr = discretize_from_stream(&stream, SaxConfig::new(3, 3), &multi);
        assert!(nr.is_empty());
    }

    #[test]
    fn incrementally_grown_stream_is_bit_identical_to_batch() {
        let data = wave(300);
        let n = 24;
        let w = 5;
        let batch = PaaStream::new(&FastSax::new(&data), n, w);
        for chunk in [1usize, 7, 100, 300] {
            let mut stats = egi_tskit::PrefixStats::new(&[]);
            let mut grown = PaaStream::empty(n, w);
            for part in data.chunks(chunk) {
                stats.extend(part);
                grown.extend_from_stats(&stats);
            }
            assert_eq!(grown.count, batch.count, "chunk {chunk}");
            assert_eq!(grown.coeffs, batch.coeffs, "chunk {chunk}");
        }
    }

    #[test]
    fn extend_reports_fresh_row_count() {
        let data = wave(40);
        let mut stats = egi_tskit::PrefixStats::new(&data[..10]);
        let mut stream = PaaStream::empty(8, 4);
        // 10 points, n = 8 → 3 windows.
        assert_eq!(stream.extend_from_stats(&stats), 3);
        // No new points → no new rows.
        assert_eq!(stream.extend_from_stats(&stats), 0);
        stats.extend(&data[10..]);
        assert_eq!(stream.extend_from_stats(&stats), 30);
        assert_eq!(stream.count, 33);
    }

    #[test]
    fn evict_front_is_bit_identical_to_fresh_suffix_stream() {
        let data = wave(220);
        let n = 20;
        let w = 4;
        for cut in [1usize, 50, 201, 210, 220] {
            let mut stats = egi_tskit::PrefixStats::new(&data);
            let mut stream = PaaStream::empty(n, w);
            stream.extend_from_stats(&stats);
            stats.rebase(&data[cut..]);
            stream.evict_front(cut, &stats);
            let fresh = PaaStream::new(&FastSax::new(&data[cut..]), n, w);
            assert_eq!(stream.count, fresh.count, "cut {cut}");
            assert_eq!(stream.coeffs, fresh.coeffs, "cut {cut}");
        }
    }

    #[test]
    fn evict_then_extend_matches_batch_over_suffix() {
        let data = wave(180);
        let n = 16;
        let w = 5;
        let mut stats = egi_tskit::PrefixStats::new(&data[..120]);
        let mut stream = PaaStream::empty(n, w);
        stream.extend_from_stats(&stats);
        stats.rebase(&data[70..120]);
        stream.evict_front(70, &stats);
        stats.extend(&data[120..]);
        stream.extend_from_stats(&stats);
        let fresh = PaaStream::new(&FastSax::new(&data[70..]), n, w);
        assert_eq!(stream.count, fresh.count);
        assert_eq!(stream.coeffs, fresh.coeffs);
    }

    #[test]
    fn evict_catches_up_a_lagging_stream() {
        // Streams extend lazily, so an eviction can strike while the
        // stream is behind the series; the rebuild must land on the
        // fresh suffix stream regardless.
        let data = wave(200);
        let n = 16;
        let w = 4;
        let mut stats = egi_tskit::PrefixStats::new(&data[..120]);
        let mut stream = PaaStream::empty(n, w);
        stream.extend_from_stats(&stats); // current through point 120…
        stats.extend(&data[120..]); // …but the series moved on
        stats.rebase(&data[50..]);
        stream.evict_front(50, &stats);
        let fresh = PaaStream::new(&FastSax::new(&data[50..]), n, w);
        assert_eq!(stream.count, fresh.count);
        assert_eq!(stream.coeffs, fresh.coeffs);
    }

    #[test]
    #[should_panic(expected = "already had")]
    fn evict_with_too_short_stats_panics() {
        let data = wave(100);
        let stats = egi_tskit::PrefixStats::new(&data);
        let mut stream = PaaStream::empty(10, 2);
        stream.extend_from_stats(&stats); // 91 windows
                                          // Stats from a far shorter series than the stream ever saw.
        stream.evict_front(5, &egi_tskit::PrefixStats::new(&data[..20]));
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn extend_with_shorter_stats_panics() {
        let data = wave(60);
        let mut stream = PaaStream::empty(8, 4);
        stream.extend_from_stats(&egi_tskit::PrefixStats::new(&data));
        stream.extend_from_stats(&egi_tskit::PrefixStats::new(&data[..20]));
    }

    #[test]
    #[should_panic(expected = "does not match stream")]
    fn mismatched_w_panics() {
        let data = wave(60);
        let fast = FastSax::new(&data);
        let stream = PaaStream::new(&fast, 12, 4);
        let multi = MultiResBreakpoints::new(4);
        discretize_from_stream(&stream, SaxConfig::new(3, 3), &multi);
    }
}
