//! Numerosity reduction (paper Section 4.2).
//!
//! Adjacent sliding windows differ by one point, so consecutive SAX words
//! are frequently identical; feeding those runs to grammar induction would
//! flood it with trivial-match rules. Numerosity reduction keeps only the
//! first word of each run together with its window offset, which is enough
//! to reconstruct time-series positions later (the paper's Eq. (2)→(3)
//! example).

use crate::word::SaxWord;

/// One retained token: a SAX word plus the offset (window start) of its
/// first occurrence in the run it represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The SAX word.
    pub word: SaxWord,
    /// Start index (in the original series) of the window that produced
    /// the first occurrence of this word in its run.
    pub offset: usize,
}

/// A numerosity-reduced token sequence.
///
/// `end_offset` records one past the start of the *last* window of the
/// underlying pass so that the span of the final token can be recovered
/// (`tokens[i]` covers window starts `tokens[i].offset ..` the next token's
/// offset, and the last token runs to `end_offset`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumerosityReduced {
    /// The retained tokens in order.
    pub tokens: Vec<Token>,
    /// One past the last window start that was examined (i.e. the number
    /// of sliding windows in the pass).
    pub end_offset: usize,
    /// The sliding-window length the tokens were generated with.
    pub window: usize,
}

impl NumerosityReduced {
    /// An empty sequence (no windows examined yet) for online building
    /// via [`NumerosityReduced::push_word`].
    pub fn empty(window: usize) -> Self {
        Self {
            tokens: Vec::new(),
            end_offset: 0,
            window,
        }
    }

    /// Feeds the SAX word of the next sliding window (offsets are
    /// assigned consecutively). Returns `true` when the word opened a
    /// new run and was retained as a token, `false` when it extended
    /// the current run (and was dropped).
    ///
    /// Folding a word sequence through `push_word` is exactly
    /// [`numerosity_reduce`] — the batch function is implemented as
    /// this fold — so an online consumer (the streaming ensemble
    /// detector) sees the identical token sequence for every append
    /// schedule.
    pub fn push_word(&mut self, word: SaxWord) -> bool {
        let offset = self.end_offset;
        self.end_offset += 1;
        match self.tokens.last() {
            Some(last) if last.word == word => false,
            _ => {
                self.tokens.push(Token { word, offset });
                true
            }
        }
    }

    /// Retires every token — the wholesale reset used by the streaming
    /// detector's eviction replay (allocation-reusing; `window` is
    /// kept).
    pub fn clear(&mut self) {
        self.tokens.clear();
        self.end_offset = 0;
    }

    /// Retires the tokens of the first `windows` sliding windows — the
    /// structural counterpart of a front eviction at the token level.
    ///
    /// Tokens whose entire run lies before `windows` are dropped; a run
    /// straddling the boundary keeps its token with the offset clamped
    /// to the boundary (its first surviving window); every surviving
    /// offset (and `end_offset`) is then shifted down by `windows`. The
    /// result equals [`numerosity_reduce`] over the word suffix
    /// `words[windows..]` exactly (property-tested): the straddling
    /// run's windows all carry the same word, so the fresh pass retains
    /// that word at the boundary too.
    ///
    /// Note for exact streaming use: this identity holds for a *fixed*
    /// word sequence. When an eviction rebases the z-normalization
    /// statistics (as the streaming ensemble detector's does), surviving
    /// windows can re-discretize to different words near breakpoint
    /// boundaries, so the bit-parity path there replays the suffix
    /// through [`NumerosityReduced::clear`] + fresh
    /// [`push_word`](NumerosityReduced::push_word)s instead; this
    /// method is the cheap retirement for pipelines whose words are
    /// stable across the cut.
    pub fn retire_front(&mut self, windows: usize) {
        if windows == 0 {
            return;
        }
        if windows >= self.end_offset {
            self.clear();
            return;
        }
        // First token whose run starts past the boundary; the token
        // before it (if any) owns the straddling run.
        let cut = self.tokens.partition_point(|t| t.offset <= windows);
        self.tokens.drain(..cut.saturating_sub(1));
        if let Some(first) = self.tokens.first_mut() {
            first.offset = first.offset.max(windows);
        }
        for token in &mut self.tokens {
            token.offset -= windows;
        }
        self.end_offset -= windows;
    }

    /// Number of retained tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when no tokens were retained.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The half-open range of window starts that token `i` stands for:
    /// `[tokens[i].offset, tokens[i+1].offset)` (or `end_offset` for the
    /// last token).
    pub fn run_range(&self, i: usize) -> (usize, usize) {
        let start = self.tokens[i].offset;
        let end = self
            .tokens
            .get(i + 1)
            .map(|t| t.offset)
            .unwrap_or(self.end_offset);
        (start, end)
    }

    /// The time-series interval covered by token `i`'s run:
    /// window starts in `run_range` each cover `window` points, so the
    /// union is `[run_start, run_end − 1 + window)`.
    pub fn series_span(&self, i: usize) -> (usize, usize) {
        let (s, e) = self.run_range(i);
        (s, e - 1 + self.window)
    }
}

impl serde::Serialize for Token {
    fn to_value(&self) -> serde::Value {
        (&self.word, self.offset).to_value()
    }
}

impl serde::Deserialize for Token {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeserializeError> {
        let (word, offset): (SaxWord, usize) = serde::Deserialize::from_value(value)?;
        Ok(Token { word, offset })
    }
}

impl serde::Serialize for NumerosityReduced {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("tokens".into(), self.tokens.to_value()),
            ("end_offset".into(), self.end_offset.to_value()),
            ("window".into(), self.window.to_value()),
        ])
    }
}

impl serde::Deserialize for NumerosityReduced {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeserializeError> {
        let tokens: Vec<Token> = value.field("tokens")?;
        let end_offset: usize = value.field("end_offset")?;
        let window: usize = value.field("window")?;
        // Structural invariants push_word maintains: offsets strictly
        // increase and stay inside the examined-window range, and
        // adjacent tokens differ (they would have been collapsed).
        for pair in tokens.windows(2) {
            if pair[1].offset <= pair[0].offset {
                return Err(serde::DeserializeError(
                    "token offsets not strictly increasing".into(),
                ));
            }
            if pair[1].word == pair[0].word {
                return Err(serde::DeserializeError(
                    "adjacent tokens carry the same word".into(),
                ));
            }
        }
        if let Some(last) = tokens.last() {
            if last.offset >= end_offset {
                return Err(serde::DeserializeError(
                    "token offset past end_offset".into(),
                ));
            }
        }
        Ok(NumerosityReduced {
            tokens,
            end_offset,
            window,
        })
    }
}

/// Collapses runs of identical consecutive words.
///
/// `words` is the full sliding-window word sequence; `window` the window
/// length it was produced with. Offsets in the output refer to positions in
/// `words` (= window start positions).
pub fn numerosity_reduce(words: Vec<SaxWord>, window: usize) -> NumerosityReduced {
    let mut nr = NumerosityReduced::empty(window);
    for word in words {
        nr.push_word(word);
    }
    nr
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &[u8]) -> SaxWord {
        SaxWord(s.to_vec())
    }

    #[test]
    fn paper_example_eq2_to_eq3() {
        // S = ba,ba,ba,dc,dc,aa,ac,ac  →  ba1,dc4,aa6,ac7 (1-based in the
        // paper; 0-based here: ba0,dc3,aa5,ac6).
        let words = vec![
            w(b"ba"),
            w(b"ba"),
            w(b"ba"),
            w(b"dc"),
            w(b"dc"),
            w(b"aa"),
            w(b"ac"),
            w(b"ac"),
        ];
        let nr = numerosity_reduce(words, 4);
        let got: Vec<(String, usize)> = nr
            .tokens
            .iter()
            .map(|t| (String::from_utf8(t.word.0.clone()).unwrap(), t.offset))
            .collect();
        assert_eq!(
            got,
            vec![
                ("ba".into(), 0),
                ("dc".into(), 3),
                ("aa".into(), 5),
                ("ac".into(), 6)
            ]
        );
        assert_eq!(nr.end_offset, 8);
    }

    #[test]
    fn no_adjacent_duplicates_remain() {
        let words = vec![w(b"aa"), w(b"aa"), w(b"bb"), w(b"aa"), w(b"aa")];
        let nr = numerosity_reduce(words, 2);
        for pair in nr.tokens.windows(2) {
            assert_ne!(pair[0].word, pair[1].word);
        }
        // Non-adjacent repeats are preserved.
        assert_eq!(nr.len(), 3);
    }

    #[test]
    fn all_identical_collapses_to_one() {
        let words = vec![w(b"zz"); 10];
        let nr = numerosity_reduce(words, 3);
        assert_eq!(nr.len(), 1);
        assert_eq!(nr.tokens[0].offset, 0);
        assert_eq!(nr.run_range(0), (0, 10));
        assert_eq!(nr.series_span(0), (0, 12)); // 9 + 3
    }

    #[test]
    fn all_distinct_keeps_everything() {
        let words: Vec<SaxWord> = (0..5u8).map(|i| w(&[i])).collect();
        let nr = numerosity_reduce(words, 1);
        assert_eq!(nr.len(), 5);
        for (i, t) in nr.tokens.iter().enumerate() {
            assert_eq!(t.offset, i);
        }
    }

    #[test]
    fn run_ranges_partition_input() {
        let words = vec![w(b"a"), w(b"a"), w(b"b"), w(b"c"), w(b"c"), w(b"c")];
        let nr = numerosity_reduce(words, 2);
        let mut covered = 0;
        for i in 0..nr.len() {
            let (s, e) = nr.run_range(i);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, nr.end_offset);
    }

    #[test]
    fn empty_input() {
        let nr = numerosity_reduce(Vec::new(), 4);
        assert!(nr.is_empty());
        assert_eq!(nr.end_offset, 0);
    }

    #[test]
    fn push_word_reports_retention() {
        let mut nr = NumerosityReduced::empty(3);
        assert!(nr.push_word(w(b"aa")));
        assert!(!nr.push_word(w(b"aa"))); // run continues
        assert!(nr.push_word(w(b"bb")));
        assert!(nr.push_word(w(b"aa"))); // non-adjacent repeat retained
        assert_eq!(nr.len(), 3);
        assert_eq!(nr.end_offset, 4);
        assert_eq!(nr.tokens[1].offset, 2);
    }

    #[test]
    fn retire_front_equals_reduce_over_word_suffix() {
        // Runs of varying length, including a straddling run at every
        // possible cut.
        let words: Vec<SaxWord> = [0u8, 0, 0, 1, 2, 2, 0, 0, 3, 3, 3, 3, 1]
            .iter()
            .map(|&s| w(&[s]))
            .collect();
        for cut in 0..=words.len() {
            let mut retired = numerosity_reduce(words.clone(), 4);
            retired.retire_front(cut);
            let fresh = numerosity_reduce(words[cut..].to_vec(), 4);
            assert_eq!(retired, fresh, "cut {cut}");
        }
    }

    #[test]
    fn retire_front_past_end_clears() {
        let mut nr = numerosity_reduce(vec![w(b"a"), w(b"a"), w(b"b")], 2);
        nr.retire_front(10);
        assert!(nr.is_empty());
        assert_eq!(nr.end_offset, 0);
        assert_eq!(nr.window, 2, "window length survives retirement");
    }

    #[test]
    fn clear_resets_for_replay() {
        let mut nr = numerosity_reduce(vec![w(b"a"), w(b"b"), w(b"b")], 3);
        nr.clear();
        assert!(nr.is_empty());
        assert_eq!(nr.end_offset, 0);
        assert!(nr.push_word(w(b"c")));
        assert_eq!(nr.tokens[0].offset, 0);
    }

    #[test]
    fn serde_round_trip_and_invariant_checks() {
        use serde::{Deserialize, Serialize};
        let nr = numerosity_reduce(vec![w(b"aa"), w(b"aa"), w(b"bb"), w(b"cc"), w(b"cc")], 4);
        let restored = NumerosityReduced::from_value(&nr.to_value()).unwrap();
        assert_eq!(restored, nr);

        // Out-of-order offsets and duplicated adjacent words are
        // rejected — a corrupted token stream must not restore.
        let mut bad = nr.clone();
        bad.tokens[1].offset = 0;
        assert!(NumerosityReduced::from_value(&bad.to_value()).is_err());
        let mut bad = nr.clone();
        bad.tokens[1].word = bad.tokens[0].word.clone();
        assert!(NumerosityReduced::from_value(&bad.to_value()).is_err());
        let mut bad = nr;
        bad.end_offset = 1;
        assert!(NumerosityReduced::from_value(&bad.to_value()).is_err());
    }

    #[test]
    fn online_fold_equals_batch_reduce() {
        let words = vec![w(b"x"), w(b"x"), w(b"y"), w(b"z"), w(b"z"), w(b"x")];
        let batch = numerosity_reduce(words.clone(), 5);
        let mut online = NumerosityReduced::empty(5);
        for word in words {
            online.push_word(word);
        }
        assert_eq!(online, batch);
    }
}
