//! Multi-resolution SAX symbol lookup (paper Section 6.2.2, Figure 6).
//!
//! The ensemble repeatedly discretizes the same subsequence under many
//! alphabet sizes. Rather than one breakpoint search per alphabet, we merge
//! the breakpoints of *all* alphabet sizes `2..=amax` into one sorted list.
//! The merged cuts partition the real line into intervals; for each
//! interval we precompute the symbol the interval maps to under every
//! alphabet size (a [`SymbolColumn`] — one column of the paper's "symbol
//! matrix"). A single binary search (`O(log Σ(a−1)) = O(log amax²) =
//! O(2 log amax)`, matching the paper's bound) then yields the symbol at
//! every resolution simultaneously.

use crate::breakpoints::{BreakpointTable, MAX_ALPHABET, MIN_ALPHABET};

/// Symbols of one merged-breakpoint interval under every alphabet size.
///
/// `symbols[a - 2]` is the symbol index assigned by alphabet size `a`
/// (the `i`-th entry of a column corresponds to `a = i + 2`, exactly the
/// layout of Figure 6's symbol sequences).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolColumn {
    /// Per-alphabet symbol indices, for `a = 2..=amax`.
    pub symbols: Vec<u8>,
}

impl SymbolColumn {
    /// Symbol under alphabet size `a`.
    #[inline]
    pub fn symbol(&self, a: usize) -> u8 {
        self.symbols[a - MIN_ALPHABET]
    }
}

/// Merged breakpoints of all alphabet sizes `2..=amax` plus the
/// precomputed symbol matrix.
#[derive(Debug, Clone)]
pub struct MultiResBreakpoints {
    amax: usize,
    /// Distinct breakpoints, ascending.
    merged: Vec<f64>,
    /// `merged.len() + 1` columns; column `i` covers
    /// `[merged[i-1], merged[i])` with the usual ±∞ ends.
    columns: Vec<SymbolColumn>,
}

impl MultiResBreakpoints {
    /// Builds the merged table for alphabet sizes `2..=amax`.
    ///
    /// # Panics
    ///
    /// Panics unless `MIN_ALPHABET ≤ amax ≤ MAX_ALPHABET`.
    pub fn new(amax: usize) -> Self {
        assert!(
            (MIN_ALPHABET..=MAX_ALPHABET).contains(&amax),
            "amax {amax} outside [{MIN_ALPHABET}, {MAX_ALPHABET}]"
        );
        let tables: Vec<BreakpointTable> =
            (MIN_ALPHABET..=amax).map(BreakpointTable::new).collect();

        let mut merged: Vec<f64> = tables
            .iter()
            .flat_map(|t| t.cuts().iter().copied())
            .collect();
        merged.sort_by(|x, y| x.partial_cmp(y).expect("breakpoints are finite"));
        merged.dedup_by(|x, y| (*x - *y).abs() < 1e-12);

        // Representative value inside each interval → symbol per alphabet.
        let columns = (0..=merged.len())
            .map(|i| {
                let rep = interval_representative(&merged, i);
                SymbolColumn {
                    symbols: tables.iter().map(|t| t.symbol(rep)).collect(),
                }
            })
            .collect();

        Self {
            amax,
            merged,
            columns,
        }
    }

    /// Largest alphabet size covered.
    pub fn amax(&self) -> usize {
        self.amax
    }

    /// Number of merged intervals (`distinct breakpoints + 1`).
    pub fn interval_count(&self) -> usize {
        self.columns.len()
    }

    /// The distinct merged breakpoints.
    pub fn merged_cuts(&self) -> &[f64] {
        &self.merged
    }

    /// Locates the interval containing `value` and returns its column.
    ///
    /// One binary search over the merged cuts — this is the whole point of
    /// the structure.
    #[inline]
    pub fn column(&self, value: f64) -> &SymbolColumn {
        let idx = self.merged.partition_point(|&c| c <= value);
        &self.columns[idx]
    }

    /// Symbol of `value` under alphabet size `a` (`2 ≤ a ≤ amax`).
    #[inline]
    pub fn symbol(&self, value: f64, a: usize) -> u8 {
        debug_assert!((MIN_ALPHABET..=self.amax).contains(&a));
        self.column(value).symbol(a)
    }
}

/// A point strictly inside interval `i` of the partition induced by `cuts`.
fn interval_representative(cuts: &[f64], i: usize) -> f64 {
    if cuts.is_empty() {
        return 0.0;
    }
    if i == 0 {
        cuts[0] - 1.0
    } else if i == cuts.len() {
        cuts[cuts.len() - 1] + 1.0
    } else {
        // Midpoint; adjacent cuts are distinct after dedup. If they are
        // pathologically close, nudge toward the lower bound, which is the
        // closed end of the interval.
        let lo = cuts[i - 1];
        let hi = cuts[i];
        let mid = 0.5 * (lo + hi);
        if mid > lo {
            mid
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure6_interval_count() {
        // a from 2 to 4: cuts {0} ∪ {±0.43} ∪ {−0.67, 0, 0.67} → 6 distinct
        // breakpoints? No: {0, −0.4307, 0.4307, −0.6745, 0, 0.6745} → 5
        // distinct values → 6 intervals, matching Figure 6.
        let m = MultiResBreakpoints::new(4);
        assert_eq!(m.merged_cuts().len(), 5);
        assert_eq!(m.interval_count(), 6);
    }

    #[test]
    fn figure6_symbol_sequences() {
        let m = MultiResBreakpoints::new(4);
        // PAA value −1.0 lies in (−∞, −0.6745): column "aaa" (a per res).
        assert_eq!(m.column(-1.0).symbols, vec![0, 0, 0]);
        // PAA value −0.2 lies in (−0.43, 0]: a=2 → 'a', a=3 → 'b', a=4 → 'b'
        // (paper's yellow dot example "abb").
        assert_eq!(m.column(-0.2).symbols, vec![0, 1, 1]);
        // PAA value 1.0 lies in (0.6745, ∞): a=2 → 'b', a=3 → 'c', a=4 → 'd'
        // ("bcd" in the paper).
        assert_eq!(m.column(1.0).symbols, vec![1, 2, 3]);
    }

    #[test]
    fn agrees_with_single_resolution_tables_everywhere() {
        let amax = 12;
        let m = MultiResBreakpoints::new(amax);
        let tables: Vec<BreakpointTable> = (2..=amax).map(BreakpointTable::new).collect();
        for i in -500..=500 {
            let v = i as f64 / 100.0;
            for t in &tables {
                assert_eq!(
                    m.symbol(v, t.alphabet()),
                    t.symbol(v),
                    "disagreement at v={v} a={}",
                    t.alphabet()
                );
            }
        }
    }

    #[test]
    fn agrees_exactly_on_breakpoints() {
        // Boundary values are where merged-table bugs live.
        let amax = 10;
        let m = MultiResBreakpoints::new(amax);
        for a in 2..=amax {
            let t = BreakpointTable::new(a);
            for &cut in t.cuts() {
                assert_eq!(m.symbol(cut, a), t.symbol(cut), "on-cut v={cut} a={a}");
                let below = cut - 1e-9;
                assert_eq!(
                    m.symbol(below, a),
                    t.symbol(below),
                    "below-cut v={below} a={a}"
                );
            }
        }
    }

    #[test]
    fn amax_two_has_single_cut() {
        let m = MultiResBreakpoints::new(2);
        assert_eq!(m.merged_cuts().len(), 1);
        assert_eq!(m.symbol(-0.5, 2), 0);
        assert_eq!(m.symbol(0.5, 2), 1);
    }

    #[test]
    fn merged_cuts_sorted_strictly() {
        let m = MultiResBreakpoints::new(20);
        for w in m.merged_cuts().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "amax")]
    fn rejects_amax_one() {
        MultiResBreakpoints::new(1);
    }
}
