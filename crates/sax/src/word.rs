//! SAX words and single-subsequence discretization.

use egi_tskit::stats;

use crate::breakpoints::BreakpointTable;
use crate::paa::paa_into;

/// Discretization parameters: PAA size `w` and alphabet size `a`
/// (the two parameters the paper's ensemble randomizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaxConfig {
    /// Number of PAA segments (word length).
    pub w: usize,
    /// Alphabet size.
    pub a: usize,
}

impl SaxConfig {
    /// Creates a config, validating both parameters.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `a` is outside the supported alphabet range.
    pub fn new(w: usize, a: usize) -> Self {
        assert!(w > 0, "PAA size must be positive");
        assert!(
            (crate::breakpoints::MIN_ALPHABET..=crate::breakpoints::MAX_ALPHABET).contains(&a),
            "alphabet size {a} unsupported"
        );
        Self { w, a }
    }
}

impl std::fmt::Display for SaxConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(w={}, a={})", self.w, self.a)
    }
}

/// A SAX word: `w` symbol indices, each in `0..a`.
///
/// Stored as raw `u8` indices rather than letters; [`SaxWord::to_letters`]
/// renders the conventional `abca`-style form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SaxWord(pub Vec<u8>);

impl SaxWord {
    /// Word length (`w`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty word.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Symbol indices.
    pub fn symbols(&self) -> &[u8] {
        &self.0
    }

    /// Renders as lowercase letters, e.g. `abca`.
    pub fn to_letters(&self) -> String {
        self.0.iter().map(|&s| BreakpointTable::letter(s)).collect()
    }
}

impl std::fmt::Display for SaxWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_letters())
    }
}

impl From<Vec<u8>> for SaxWord {
    fn from(symbols: Vec<u8>) -> Self {
        Self(symbols)
    }
}

impl serde::Serialize for SaxConfig {
    fn to_value(&self) -> serde::Value {
        (self.w, self.a).to_value()
    }
}

impl serde::Deserialize for SaxConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeserializeError> {
        let (w, a): (usize, usize) = serde::Deserialize::from_value(value)?;
        // The same bounds SaxConfig::new asserts, surfaced as an error:
        // the checkpoint loader must never feed a panicking constructor.
        if w == 0 {
            return Err(serde::DeserializeError("PAA size must be positive".into()));
        }
        if !(crate::breakpoints::MIN_ALPHABET..=crate::breakpoints::MAX_ALPHABET).contains(&a) {
            return Err(serde::DeserializeError(format!(
                "alphabet size {a} unsupported"
            )));
        }
        Ok(Self { w, a })
    }
}

impl serde::Serialize for SaxWord {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl serde::Deserialize for SaxWord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeserializeError> {
        Vec::<u8>::from_value(value).map(SaxWord)
    }
}

/// Discretizes one subsequence into a SAX word.
///
/// Pipeline (paper Figure 3): z-normalize → PAA(`w`) → breakpoint lookup.
/// `table` must have been built for `config.a`.
///
/// # Panics
///
/// Panics when `config.w > sub.len()` or `table.alphabet() != config.a`.
pub fn sax_word(sub: &[f64], config: SaxConfig, table: &BreakpointTable) -> SaxWord {
    assert_eq!(
        table.alphabet(),
        config.a,
        "breakpoint table alphabet mismatch"
    );
    let mut z = sub.to_vec();
    stats::znormalize(&mut z);
    let mut coeffs = vec![0.0; config.w];
    paa_into(&z, &mut coeffs);
    SaxWord(coeffs.iter().map(|&c| table.symbol(c)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure3_example_shape() {
        // A subsequence engineered to produce `abca` with w = 4, a = 3:
        // low, mid, high, low segments.
        let sub = [
            -1.0, -1.2, -0.9, -1.1, // 'a'
            0.1, -0.1, 0.0, 0.05, // 'b'
            1.3, 1.1, 1.2, 1.25, // 'c'
            -1.0, -1.1, -0.95, -1.05, // 'a'
        ];
        let cfg = SaxConfig::new(4, 3);
        let table = BreakpointTable::new(3);
        let word = sax_word(&sub, cfg, &table);
        assert_eq!(word.to_letters(), "abca");
    }

    #[test]
    fn flat_subsequence_maps_to_middle_symbols() {
        let sub = [5.0; 16];
        let table = BreakpointTable::new(4);
        let word = sax_word(&sub, SaxConfig::new(4, 4), &table);
        // Flat → z-normalized zeros → region containing 0 (index 2 for a=4).
        assert_eq!(word.symbols(), &[2, 2, 2, 2]);
    }

    #[test]
    fn word_is_amplitude_and_offset_invariant() {
        let base: Vec<f64> = (0..32).map(|i| (i as f64 / 5.0).sin()).collect();
        let shifted: Vec<f64> = base.iter().map(|v| v * 7.0 + 100.0).collect();
        let cfg = SaxConfig::new(8, 5);
        let table = BreakpointTable::new(5);
        assert_eq!(
            sax_word(&base, cfg, &table),
            sax_word(&shifted, cfg, &table)
        );
    }

    #[test]
    fn display_and_letters() {
        let w = SaxWord(vec![0, 1, 2, 0]);
        assert_eq!(w.to_letters(), "abca");
        assert_eq!(format!("{w}"), "abca");
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
    }

    #[test]
    fn config_display() {
        assert_eq!(SaxConfig::new(4, 3).to_string(), "(w=4, a=3)");
    }

    #[test]
    fn serde_round_trip_validates_bounds() {
        use serde::{Deserialize, Serialize};
        let cfg = SaxConfig::new(6, 5);
        assert_eq!(SaxConfig::from_value(&cfg.to_value()), Ok(cfg));
        let word = SaxWord(vec![0, 3, 1]);
        assert_eq!(SaxWord::from_value(&word.to_value()), Ok(word));
        // The panicking constructor's bounds surface as errors here.
        assert!(SaxConfig::from_value(&(0usize, 4usize).to_value()).is_err());
        assert!(SaxConfig::from_value(&(4usize, 1usize).to_value()).is_err());
        assert!(SaxConfig::from_value(&(4usize, 1_000usize).to_value()).is_err());
    }

    #[test]
    #[should_panic(expected = "alphabet mismatch")]
    fn mismatched_table_panics() {
        let table = BreakpointTable::new(3);
        sax_word(&[1.0, 2.0, 3.0, 4.0], SaxConfig::new(2, 4), &table);
    }

    #[test]
    fn symbols_in_alphabet_range() {
        let sub: Vec<f64> = (0..50).map(|i| ((i * i) as f64).sin() * 3.0).collect();
        for a in 2..=8 {
            let table = BreakpointTable::new(a);
            let word = sax_word(&sub, SaxConfig::new(10, a), &table);
            assert!(word.symbols().iter().all(|&s| (s as usize) < a));
        }
    }
}
