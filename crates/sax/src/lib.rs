//! # egi-sax — Symbolic Aggregate approXimation
//!
//! Discretization layer of the grammar-induction pipeline (paper Section 4
//! and Section 6.2):
//!
//! * [`mod@paa`] — Piecewise Aggregate Approximation of (z-normalized)
//!   subsequences, plus the prefix-sum **FastPAA** of Algorithm 2.
//! * [`breakpoints`] — Gaussian equiprobable breakpoint tables for any
//!   alphabet size, computed from the inverse normal CDF.
//! * [`word`] — [`SaxWord`] and single-subsequence discretization.
//! * [`discretize`] — whole-series discretization via a sliding window.
//! * [`numerosity`] — numerosity reduction: collapse runs of identical
//!   consecutive words, keeping the first offset (Section 4.2).
//! * [`mindist`] — the classic SAX lower-bounding distance (MINDIST),
//!   for downstream similarity-search users of this crate.
//! * [`multires`] — the multi-resolution symbol matrix of Section 6.2:
//!   one binary search per PAA coefficient yields its symbol under *every*
//!   alphabet size `2..=amax` at once.
//! * [`stream`] — shared PAA coefficient streams: compute each `(n, w)`
//!   stream once, reuse it for every alphabet (the ensemble's PAA
//!   deduplication); streams also grow incrementally
//!   ([`PaaStream::extend_from_stats`]) for the streaming detector,
//!   bit-identical to the batch build.
//!
//! The naive and fast paths are intentionally both kept public: the naive
//! implementations are the executable specification, the fast ones are what
//! the detectors run, and the test suites (unit + property) pin them to
//! agree exactly.
//!
//! # Examples
//!
//! Discretize one subsequence into a SAX word (`w = 4` PAA segments,
//! alphabet size `a = 3`):
//!
//! ```
//! use egi_sax::{sax_word, BreakpointTable, SaxConfig};
//!
//! let sub: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
//! let config = SaxConfig::new(4, 3);
//! let table = BreakpointTable::new(config.a);
//! let word = sax_word(&sub, config, &table);
//! assert_eq!(word.len(), 4);
//! // Symbols render as lowercase letters, 'a' for the lowest region.
//! assert!(word.to_letters().chars().all(|c| ('a'..='c').contains(&c)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod breakpoints;
pub mod discretize;
pub mod mindist;
pub mod multires;
pub mod numerosity;
pub mod paa;
pub mod stream;
pub mod word;

pub use breakpoints::BreakpointTable;
pub use discretize::{discretize_series, discretize_series_naive, paa_znorm_from_stats, FastSax};
pub use mindist::MindistTable;
pub use multires::{MultiResBreakpoints, SymbolColumn};
pub use numerosity::{numerosity_reduce, NumerosityReduced, Token};
pub use paa::{paa, paa_into};
pub use stream::{discretize_from_stream, PaaStream};
pub use word::{sax_word, SaxConfig, SaxWord};
