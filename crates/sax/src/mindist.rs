//! MINDIST — the classic SAX lower-bounding distance (Lin et al. 2007,
//! the paper's reference \[12\]).
//!
//! `MINDIST(Q̂, Ĉ) = √(n/w) · √(Σ_i cell(q_i, c_i)²)` where `cell(r, c)` is
//! the gap between the breakpoint regions of two symbols (zero for
//! adjacent or equal symbols). Its defining property — proved in the SAX
//! paper and pinned by our property tests — is that it *lower-bounds* the
//! Euclidean distance between the original z-normalized subsequences,
//! which is what makes SAX indexable. The anomaly pipeline itself does not
//! need MINDIST, but any downstream user of a SAX library (similarity
//! search, HOTSAX variants, iSAX-style indexing) does.

use crate::breakpoints::BreakpointTable;
use crate::word::SaxWord;

/// Precomputed symbol-pair distance table for one alphabet size.
///
/// `cell(r, c) = 0` when `|r − c| ≤ 1`, otherwise the gap between the
/// closer breakpoints: `β_{max(r,c)−1} − β_{min(r,c)}`.
#[derive(Debug, Clone)]
pub struct MindistTable {
    alphabet: usize,
    /// Row-major `alphabet × alphabet` cell distances.
    cells: Vec<f64>,
}

impl MindistTable {
    /// Builds the cell table for alphabet size `a`.
    pub fn new(a: usize) -> Self {
        let table = BreakpointTable::new(a);
        let cuts = table.cuts();
        let mut cells = vec![0.0; a * a];
        for r in 0..a {
            for c in 0..a {
                if r.abs_diff(c) > 1 {
                    let (lo, hi) = (r.min(c), r.max(c));
                    cells[r * a + c] = cuts[hi - 1] - cuts[lo];
                }
            }
        }
        Self { alphabet: a, cells }
    }

    /// Alphabet size of the table.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Cell distance between two symbols.
    #[inline]
    pub fn cell(&self, r: u8, c: u8) -> f64 {
        self.cells[r as usize * self.alphabet + c as usize]
    }

    /// MINDIST between two SAX words of equal length from this alphabet,
    /// for original subsequence length `n`.
    ///
    /// # Panics
    ///
    /// Panics when the words differ in length or are empty.
    pub fn mindist(&self, q: &SaxWord, c: &SaxWord, n: usize) -> f64 {
        assert_eq!(q.len(), c.len(), "word length mismatch");
        assert!(!q.is_empty(), "empty SAX words");
        let w = q.len();
        let sum: f64 = q
            .symbols()
            .iter()
            .zip(c.symbols())
            .map(|(&a, &b)| {
                let d = self.cell(a, b);
                d * d
            })
            .sum();
        ((n as f64) / (w as f64)).sqrt() * sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::{sax_word, SaxConfig};

    #[test]
    fn adjacent_symbols_cost_zero() {
        let t = MindistTable::new(4);
        for r in 0..4u8 {
            for c in 0..4u8 {
                if r.abs_diff(c) <= 1 {
                    assert_eq!(t.cell(r, c), 0.0, "cell({r},{c})");
                } else {
                    assert!(t.cell(r, c) > 0.0, "cell({r},{c})");
                }
            }
        }
    }

    #[test]
    fn cell_table_is_symmetric() {
        let t = MindistTable::new(8);
        for r in 0..8u8 {
            for c in 0..8u8 {
                assert_eq!(t.cell(r, c), t.cell(c, r));
            }
        }
    }

    #[test]
    fn known_cell_value_a4() {
        // a = 4: cuts ±0.6745, 0. cell(0, 2) = β_1 − β_0 = 0 − (−0.6745).
        let t = MindistTable::new(4);
        assert!((t.cell(0, 2) - 0.6745).abs() < 1e-3);
        assert!((t.cell(0, 3) - 2.0 * 0.6745).abs() < 1e-3);
    }

    #[test]
    fn identical_words_have_zero_mindist() {
        let t = MindistTable::new(5);
        let w = SaxWord(vec![0, 2, 4, 1]);
        assert_eq!(t.mindist(&w, &w, 64), 0.0);
    }

    /// The lower-bounding property on deterministic subsequences.
    #[test]
    fn mindist_lower_bounds_euclidean() {
        let cfg = SaxConfig::new(8, 6);
        let table = BreakpointTable::new(6);
        let mt = MindistTable::new(6);
        let n = 64;
        let make = |f: f64, phase: f64| -> Vec<f64> {
            (0..n).map(|i| (i as f64 * f + phase).sin() * 2.0).collect()
        };
        let series_a = make(0.2, 0.0);
        for &(f, p) in &[(0.2, 1.0), (0.5, 0.0), (0.05, 2.0), (0.9, 0.5)] {
            let series_b = make(f, p);
            // True Euclidean distance between z-normalized versions.
            let mut za = series_a.clone();
            let mut zb = series_b.clone();
            egi_tskit::stats::znormalize(&mut za);
            egi_tskit::stats::znormalize(&mut zb);
            let euclid: f64 = za
                .iter()
                .zip(&zb)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt();
            let wa = sax_word(&series_a, cfg, &table);
            let wb = sax_word(&series_b, cfg, &table);
            let lb = mt.mindist(&wa, &wb, n);
            assert!(
                lb <= euclid + 1e-9,
                "MINDIST {lb} exceeds Euclidean {euclid} (f={f}, p={p})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_words_panic() {
        let t = MindistTable::new(4);
        t.mindist(&SaxWord(vec![0, 1]), &SaxWord(vec![0, 1, 2]), 16);
    }
}
