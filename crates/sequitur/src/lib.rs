//! # egi-sequitur — linear-time grammar induction
//!
//! A from-scratch implementation of the Sequitur algorithm
//! (Nevill-Manning & Witten 1997), the grammar-induction engine of the
//! paper's Section 5.1. Sequitur reads a token sequence left to right and
//! maintains a context-free grammar satisfying two constraints:
//!
//! * **digram uniqueness** — no pair of adjacent symbols appears more than
//!   once in the grammar; a repeated digram is replaced by a rule;
//! * **rule utility** — every rule is referenced at least twice; a rule
//!   whose reference count drops to one is inlined and removed.
//!
//! The output [`Grammar`] exposes rule bodies, per-rule terminal expansion
//! lengths, and — crucial for anomaly detection — the position of every
//! (transitive) rule occurrence in the original token sequence, which is
//! what the rule density curve of `egi-core` integrates over.
//!
//! ```
//! use egi_sequitur::induce;
//!
//! // The paper's running example (Table 2), with tokens interned:
//! // ab=0, bc=1, aa=2, cc=3, ca=4.
//! let grammar = induce([0, 1, 2, 3, 4, 0, 1, 2]);
//! assert_eq!(grammar.rule_count(), 2); // R0 plus one induced rule
//! assert_eq!(grammar.expand_root(), vec![0, 1, 2, 3, 4, 0, 1, 2]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod grammar;

pub use engine::{OccDelta, Sequitur};
pub use grammar::{Grammar, GrammarRule, RuleOccurrence, Symbol};

/// Induces a grammar from a token iterator in one call.
pub fn induce(tokens: impl IntoIterator<Item = u32>) -> Grammar {
    let mut s = Sequitur::new();
    for t in tokens {
        s.push(t);
    }
    s.into_grammar()
}
