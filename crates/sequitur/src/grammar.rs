//! Immutable grammar produced by [`crate::Sequitur`], plus the occurrence
//! enumeration consumed by the rule density curve.

/// A grammar symbol: terminal token id or (dense) rule id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symbol {
    /// A terminal token (interned SAX word id in the anomaly pipeline).
    Terminal(u32),
    /// A reference to `Grammar::rules[id]`.
    Rule(u32),
}

/// One grammar rule. `rules[0]` is the root `R0`/`S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarRule {
    /// Right-hand side of the rule.
    pub body: Vec<Symbol>,
    /// How many times the rule is referenced in other bodies
    /// (0 for the root).
    pub uses: usize,
    /// Number of terminals the rule expands to.
    pub expansion_len: usize,
}

/// A (transitive) occurrence of a rule in the token sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleOccurrence {
    /// Dense rule id (never 0 — the root is not an occurrence).
    pub rule: u32,
    /// Token index where this occurrence starts.
    pub start: usize,
    /// Number of tokens covered (the rule's expansion length).
    pub len: usize,
}

/// A context-free grammar in the Sequitur normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    /// All rules; index 0 is the root.
    pub rules: Vec<GrammarRule>,
    token_count: usize,
}

impl Grammar {
    /// Internal constructor: computes expansion lengths bottom-up.
    pub(crate) fn finalize(mut rules: Vec<GrammarRule>, token_count: usize) -> Self {
        // Iterative memoized expansion-length computation (rule references
        // can nest arbitrarily deep, so no recursion).
        let n = rules.len();
        let mut lens: Vec<Option<usize>> = vec![None; n];
        for start in 0..n {
            if lens[start].is_some() {
                continue;
            }
            let mut stack = vec![start];
            'outer: while let Some(&r) = stack.last() {
                let mut total = 0usize;
                for sym in &rules[r].body {
                    match *sym {
                        Symbol::Terminal(_) => total += 1,
                        Symbol::Rule(q) => match lens[q as usize] {
                            Some(l) => total += l,
                            None => {
                                stack.push(q as usize);
                                continue 'outer;
                            }
                        },
                    }
                }
                lens[r] = Some(total);
                stack.pop();
            }
        }
        for (r, len) in rules.iter_mut().zip(&lens) {
            r.expansion_len = len.expect("all rules resolved");
        }
        Grammar { rules, token_count }
    }

    /// Number of rules including the root.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of tokens the grammar was induced from.
    pub fn token_count(&self) -> usize {
        self.token_count
    }

    /// Total grammar size: sum of all rule body lengths.
    pub fn total_size(&self) -> usize {
        self.rules.iter().map(|r| r.body.len()).sum()
    }

    /// Expands rule `id` to its terminal sequence.
    pub fn expand_rule(&self, id: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.rules[id as usize].expansion_len);
        // Explicit stack of (rule, body position).
        let mut stack: Vec<(u32, usize)> = vec![(id, 0)];
        while let Some((r, pos)) = stack.pop() {
            let body = &self.rules[r as usize].body;
            if pos >= body.len() {
                continue;
            }
            stack.push((r, pos + 1));
            match body[pos] {
                Symbol::Terminal(t) => out.push(t),
                Symbol::Rule(q) => stack.push((q, 0)),
            }
        }
        out
    }

    /// Reconstructs the original token sequence from the root rule.
    pub fn expand_root(&self) -> Vec<u32> {
        self.expand_rule(0)
    }

    /// Enumerates every transitive occurrence of every non-root rule, with
    /// token-sequence positions.
    ///
    /// A rule nested inside another rule occurs once per occurrence of its
    /// parent; this walk unrolls the derivation tree, which is exactly the
    /// counting the rule density curve needs ("the number of grammar rules
    /// that cover each point", paper Section 5.2). The output size is
    /// bounded by the derivation tree, i.e. O(token count).
    pub fn occurrences(&self) -> Vec<RuleOccurrence> {
        let mut out = Vec::new();
        // Stack frames: (rule, body position, absolute token start of the
        // *remaining* body suffix).
        let mut stack: Vec<(u32, usize, usize)> = vec![(0, 0, 0)];
        while let Some((r, pos, at)) = stack.pop() {
            let body = &self.rules[r as usize].body;
            if pos >= body.len() {
                continue;
            }
            match body[pos] {
                Symbol::Terminal(_) => {
                    stack.push((r, pos + 1, at + 1));
                }
                Symbol::Rule(q) => {
                    let len = self.rules[q as usize].expansion_len;
                    out.push(RuleOccurrence {
                        rule: q,
                        start: at,
                        len,
                    });
                    stack.push((r, pos + 1, at + len));
                    stack.push((q, 0, at));
                }
            }
        }
        out
    }

    /// Checks the structural invariants the algorithm promises:
    /// every non-root rule is used at least twice and has a body of at
    /// least two symbols; all rule references are in range; the root
    /// expands to `token_count` terminals.
    pub fn verify(&self) -> Result<(), String> {
        for (i, r) in self.rules.iter().enumerate() {
            for sym in &r.body {
                if let Symbol::Rule(q) = *sym {
                    if q as usize >= self.rules.len() {
                        return Err(format!("rule {i} references out-of-range rule {q}"));
                    }
                    if q == 0 {
                        return Err(format!("rule {i} references the root"));
                    }
                }
            }
            if i > 0 {
                if r.uses < 2 {
                    return Err(format!("rule {i} used {} < 2 times", r.uses));
                }
                if r.body.len() < 2 {
                    return Err(format!("rule {i} has body of {} symbols", r.body.len()));
                }
            }
        }
        let root_len = self.rules[0].expansion_len;
        if root_len != self.token_count {
            return Err(format!(
                "root expands to {root_len} terminals but {} tokens were pushed",
                self.token_count
            ));
        }
        Ok(())
    }

    /// Renders the grammar in the paper's Table 1/2 layout, one rule per
    /// line with its expanded terminal sequence alongside:
    ///
    /// ```text
    /// R0 -> R1 t3 R1            | t0 t1 t2 t3 t0 t1 t2
    /// R1 -> t0 t1 t2            | t0 t1 t2
    /// ```
    ///
    /// `label` maps terminal ids to display strings (e.g. SAX letters);
    /// pass `|t| format!("t{t}")` for raw ids.
    pub fn render(&self, mut label: impl FnMut(u32) -> String) -> String {
        let mut lines = Vec::with_capacity(self.rules.len());
        let mut rendered_bodies = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let body: Vec<String> = rule
                .body
                .iter()
                .map(|s| match *s {
                    Symbol::Terminal(t) => label(t),
                    Symbol::Rule(q) => format!("R{q}"),
                })
                .collect();
            rendered_bodies.push((format!("R{i}"), body.join(" ")));
        }
        let width = rendered_bodies
            .iter()
            .map(|(_, b)| b.len())
            .max()
            .unwrap_or(0)
            .min(60);
        for (i, (head, body)) in rendered_bodies.iter().enumerate() {
            let expansion: Vec<String> = self
                .expand_rule(i as u32)
                .into_iter()
                .map(&mut label)
                .collect();
            lines.push(format!(
                "{head} -> {body:<width$} | {}",
                expansion.join(" "),
                width = width
            ));
        }
        lines.join("\n")
    }
}

impl std::fmt::Display for Grammar {
    /// Default rendering with `tN`-style terminal labels.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render(|t| format!("t{t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induce;

    #[test]
    fn expansion_lengths_are_consistent() {
        let input: Vec<u32> = (0..300).map(|i| (i % 5) as u32).collect();
        let g = induce(input.clone());
        for (i, r) in g.rules.iter().enumerate() {
            assert_eq!(
                g.expand_rule(i as u32).len(),
                r.expansion_len,
                "rule {i} expansion length mismatch"
            );
        }
        assert_eq!(g.rules[0].expansion_len, input.len());
    }

    #[test]
    fn occurrences_cover_expected_positions() {
        // ab cd ab cd: two rules expected at known positions, or nested.
        let g = induce([0u32, 1, 2, 3, 0, 1, 2, 3]);
        let occs = g.occurrences();
        // Every occurrence must expand to the right slice of the input.
        let input = [0u32, 1, 2, 3, 0, 1, 2, 3];
        for occ in &occs {
            let expansion = g.expand_rule(occ.rule);
            assert_eq!(
                &input[occ.start..occ.start + occ.len],
                expansion.as_slice(),
                "occurrence {occ:?}"
            );
        }
        // The repeated half [0,1,2,3] must be covered by some occurrence
        // starting at 0 and some at 4.
        assert!(occs.iter().any(|o| o.start == 0));
        assert!(occs.iter().any(|o| o.start == 4));
    }

    #[test]
    fn occurrences_expand_correctly_on_nested_grammar() {
        let mut input = Vec::new();
        for _ in 0..16 {
            input.extend_from_slice(&[1u32, 2, 1, 3]);
        }
        let g = induce(input.clone());
        g.verify().unwrap();
        for occ in g.occurrences() {
            let expansion = g.expand_rule(occ.rule);
            assert_eq!(&input[occ.start..occ.start + occ.len], expansion.as_slice());
        }
    }

    #[test]
    fn occurrence_count_matches_uses_transitively() {
        // For a rule only referenced by the root, occurrence count == uses.
        let g = induce([0u32, 1, 9, 0, 1, 8, 0, 1]);
        g.verify().unwrap();
        let occs = g.occurrences();
        for (i, r) in g.rules.iter().enumerate().skip(1) {
            let direct_in_root = g.rules[0]
                .body
                .iter()
                .filter(|s| **s == Symbol::Rule(i as u32))
                .count();
            if direct_in_root == r.uses {
                let occ_count = occs.iter().filter(|o| o.rule == i as u32).count();
                assert_eq!(occ_count, r.uses, "rule {i}");
            }
        }
    }

    #[test]
    fn total_size_is_compression_measure() {
        let repetitive = induce(std::iter::repeat_n([0u32, 1], 64).flatten());
        let random: Vec<u32> = (0..128).collect();
        let incompressible = induce(random);
        assert!(repetitive.total_size() < incompressible.total_size() / 2);
    }

    #[test]
    fn render_matches_paper_layout() {
        // Section 3.2: aa,bb,cc,xx,aa,bb,cc with aa=0, bb=1, cc=2, xx=3.
        let g = induce([0u32, 1, 2, 3, 0, 1, 2]);
        let names = ["aa", "bb", "cc", "xx"];
        let rendered = g.render(|t| names[t as usize].to_string());
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("R0 -> R1 xx R1"), "{}", lines[0]);
        assert!(lines[0].ends_with("| aa bb cc xx aa bb cc"), "{}", lines[0]);
        assert!(lines[1].starts_with("R1 -> aa bb cc"), "{}", lines[1]);
        assert!(lines[1].ends_with("| aa bb cc"), "{}", lines[1]);
    }

    #[test]
    fn display_uses_default_labels() {
        let g = induce([5u32, 6, 5, 6]);
        let s = g.to_string();
        assert!(s.contains("t5 t6"), "{s}");
        assert!(s.contains("R1"), "{s}");
    }

    #[test]
    fn verify_catches_bad_root_length() {
        let g = Grammar::finalize(
            vec![GrammarRule {
                body: vec![Symbol::Terminal(1)],
                uses: 0,
                expansion_len: 0,
            }],
            5,
        );
        assert!(g.verify().is_err());
    }
}
