//! The Sequitur engine: slab-allocated doubly-linked symbol lists, a digram
//! hash table, and the two constraint-maintenance operations (digram
//! uniqueness, rule utility).
//!
//! The structure follows Nevill-Manning's reference `sequitur.cc` closely —
//! including the subtle pieces: guard nodes per rule, digram bookkeeping
//! inside `join`, the overlapping-digram ("aaa") repair, and inline
//! expansion of underused rules. One deviation: every rule keeps an
//! intrusive list of its occurrence nodes, so an underused rule's remaining
//! occurrence is found in O(1) wherever it lives (the reference
//! implementation only inspects the first body symbol of the rule involved
//! in the current match, which can leave a once-used rule behind in rare
//! interleavings).

use rustc_hash::FxHashMap;
use serde::{Deserialize, DeserializeError, Serialize, Value};

use crate::grammar::{Grammar, GrammarRule, RuleOccurrence, Symbol};

/// Sentinel "null" node index.
const NIL: u32 = u32::MAX;

/// Internal symbol: terminal token or rule reference (engine rule id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sym {
    T(u32),
    R(u32),
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Guard node delimiting the circular body list of `rule`.
    Guard { rule: u32 },
    /// Ordinary symbol node.
    Sym(Sym),
    /// On the free list.
    Free,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    kind: Kind,
    prev: u32,
    next: u32,
    /// Intrusive per-rule occurrence list (only for `Sym(R(_))` nodes).
    occ_prev: u32,
    occ_next: u32,
    /// Token offset of this symbol within its containing rule body
    /// (absolute token index for root-body nodes). Fixed at creation;
    /// only [`Sequitur::expand`] rewrites it, when a body is spliced
    /// into its parent. Meaningless for guards.
    pos: u32,
    /// Rule whose body contains this node (0 for the root body).
    /// Rewritten alongside `pos` during inline expansion.
    owner: u32,
}

impl Node {
    fn blank(kind: Kind) -> Self {
        Node {
            kind,
            prev: NIL,
            next: NIL,
            occ_prev: NIL,
            occ_next: NIL,
            pos: 0,
            owner: 0,
        }
    }
}

/// One change to the transitive rule-occurrence span multiset, emitted
/// by [`Sequitur::push`] when delta tracking is enabled
/// ([`Sequitur::set_delta_tracking`]).
///
/// The **net-delta cancellation property** keeps these rare and small:
/// a plain terminal push and a rule-body creation change no transitive
/// span, a substitution creates exactly one span per transitive
/// occurrence of the body it happens in, and an inline expansion
/// destroys exactly one span per transitive occurrence — every nested
/// contribution cancels because a rule's body expands to precisely the
/// tokens it replaced. Folding the drained deltas into a density curve
/// ([`RuleDensityCurve::apply_delta`] in `egi-core`) therefore costs
/// `O(changed coverage)` per push instead of the `O(series)` of a
/// [`Sequitur::occurrences`] rebuild, and lands on the bit-identical
/// curve (the adds are exact small integers either way).
///
/// [`RuleDensityCurve::apply_delta`]:
///     https://docs.rs/egi-core/latest/egi_core/density/struct.RuleDensityCurve.html
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccDelta {
    /// Token index where the occurrence span starts.
    pub start: usize,
    /// Number of tokens the span covers (the rule's expansion length).
    pub len: usize,
    /// `true` when the span was created, `false` when destroyed.
    pub created: bool,
}

#[derive(Debug, Clone, Copy)]
struct RuleRec {
    /// Guard node id; `NIL` once the rule has been expanded away.
    guard: u32,
    /// Head of the occurrence list.
    occ_head: u32,
    /// Number of occurrence nodes (reference count).
    uses: u32,
    /// Number of terminals the rule expands to, maintained
    /// incrementally (see [`Sequitur::occurrences`]): a non-root rule's
    /// expansion length is fixed at creation (substitution and inline
    /// expansion both preserve the expansion of the containing body),
    /// and the root's grows by one per pushed token.
    exp_len: usize,
}

/// Incremental Sequitur grammar builder.
///
/// Feed tokens with [`Sequitur::push`]; extract the final grammar with
/// [`Sequitur::into_grammar`]. Time is amortized O(1) per token.
#[derive(Debug)]
pub struct Sequitur {
    nodes: Vec<Node>,
    free: Vec<u32>,
    rules: Vec<RuleRec>,
    digrams: FxHashMap<(Sym, Sym), u32>,
    /// Rules whose use count dropped to one; drained after each match.
    underused: Vec<u32>,
    /// Number of tokens pushed so far.
    token_count: usize,
    /// When `true`, [`Sequitur::push`] records every change to the
    /// transitive occurrence-span multiset in `deltas`.
    track: bool,
    /// Pending [`OccDelta`]s since the last [`Sequitur::take_deltas`].
    deltas: Vec<OccDelta>,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    /// Creates an empty grammar (rule `R0` with an empty body).
    pub fn new() -> Self {
        let mut s = Sequitur {
            nodes: Vec::new(),
            free: Vec::new(),
            rules: Vec::new(),
            digrams: FxHashMap::default(),
            underused: Vec::new(),
            token_count: 0,
            track: false,
            deltas: Vec::new(),
        };
        s.new_rule(); // rule 0 = S
        s
    }

    /// Enables or disables occurrence-delta tracking.
    ///
    /// While enabled, every [`push`](Sequitur::push) appends the net
    /// changes to the transitive occurrence-span multiset to an
    /// internal buffer, drained by [`take_deltas`](Sequitur::take_deltas).
    /// Tracking must be switched on while the caller's derived state
    /// (e.g. a density curve) matches the engine's current
    /// [`occurrences`](Sequitur::occurrences) — from then on, folding
    /// the drained deltas keeps it exactly in sync. Disabling discards
    /// any pending deltas.
    pub fn set_delta_tracking(&mut self, on: bool) {
        self.track = on;
        if !on {
            self.deltas.clear();
        }
    }

    /// Whether occurrence-delta tracking is enabled.
    pub fn delta_tracking(&self) -> bool {
        self.track
    }

    /// Takes the occurrence deltas accumulated since the last call
    /// (empty unless [`set_delta_tracking`](Sequitur::set_delta_tracking)
    /// is on). Applying them — in any order — to the span multiset as
    /// of the previous drain yields exactly the current
    /// [`occurrences`](Sequitur::occurrences) span multiset.
    pub fn take_deltas(&mut self) -> Vec<OccDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// Number of tokens consumed so far.
    pub fn token_count(&self) -> usize {
        self.token_count
    }

    /// Number of slab slots currently allocated (live nodes plus
    /// free-list holes) — cheap accessor for memory-bound assertions on
    /// streaming workloads.
    pub fn slab_len(&self) -> usize {
        self.nodes.len()
    }

    /// Capacity (in nodes) retained by the slab allocation.
    pub fn slab_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Resets the engine to the empty grammar (rule `R0` with an empty
    /// body), **reusing the slab, table, and rule-record allocations**.
    ///
    /// This is the eviction-replay entry point of the streaming
    /// detector: grammar induction is order-dependent, so after a front
    /// eviction the grammar of the surviving token suffix must be
    /// re-derived from scratch — every rule whose occurrences lay in
    /// (or straddled) the retired region simply ceases to exist, and
    /// rules over the suffix re-form as the replay pushes tokens.
    /// Because the slab index sequence restarts exactly as in
    /// [`Sequitur::new`], a cleared-and-replayed engine is
    /// state-identical to a fresh one fed the same tokens (modulo
    /// retained capacity), which keeps the replay on the bitwise batch
    /// path.
    ///
    /// Clearing also **rebases the delta cursor**: pending
    /// [`OccDelta`]s refer to the retired token coordinates, so they
    /// are dropped (the tracking flag itself survives). A delta
    /// consumer must likewise reset its derived state to the empty
    /// baseline — the replay's deltas then rebuild it from zero.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.rules.clear();
        self.digrams.clear();
        self.underused.clear();
        self.token_count = 0;
        self.deltas.clear();
        self.new_rule();
    }

    /// Compacts the slab in place: drops free-list holes and
    /// tombstoned (expanded-away) rule records, remapping every node
    /// and rule id, and shrinks the allocations to fit — the
    /// "reclaim symbol storage" operation for long-running streams
    /// whose peak slab usage exceeded the current live grammar.
    ///
    /// Compaction is **observationally invisible**: the grammar
    /// ([`Sequitur::to_grammar`]), the occurrence spans
    /// ([`Sequitur::occurrences`]), and — because the digram table's
    /// *contents* are preserved under the remap — the evolution under
    /// every future [`push`](Sequitur::push) are identical to the
    /// uncompacted engine's, bit for bit (property-tested). Cost:
    /// `O(live nodes + rules + digrams)`.
    pub fn compact(&mut self) {
        // Dense remaps for live nodes (slab order) and live rules
        // (id order; the root is never tombstoned, so it stays 0).
        let mut node_map = vec![NIL; self.nodes.len()];
        let mut live_nodes = 0u32;
        for (i, node) in self.nodes.iter().enumerate() {
            if !matches!(node.kind, Kind::Free) {
                node_map[i] = live_nodes;
                live_nodes += 1;
            }
        }
        let mut rule_map = vec![NIL; self.rules.len()];
        let mut live_rules = 0u32;
        for (i, rec) in self.rules.iter().enumerate() {
            if rec.guard != NIL {
                rule_map[i] = live_rules;
                live_rules += 1;
            }
        }
        let map_node = |i: u32| {
            if i == NIL {
                NIL
            } else {
                node_map[i as usize]
            }
        };
        let map_sym = |s: Sym| match s {
            Sym::T(t) => Sym::T(t),
            Sym::R(r) => Sym::R(rule_map[r as usize]),
        };

        let mut nodes = Vec::with_capacity(live_nodes as usize);
        for node in &self.nodes {
            if matches!(node.kind, Kind::Free) {
                continue;
            }
            nodes.push(Node {
                kind: match node.kind {
                    Kind::Guard { rule } => Kind::Guard {
                        rule: rule_map[rule as usize],
                    },
                    Kind::Sym(s) => Kind::Sym(map_sym(s)),
                    Kind::Free => unreachable!("filtered above"),
                },
                prev: map_node(node.prev),
                next: map_node(node.next),
                occ_prev: map_node(node.occ_prev),
                occ_next: map_node(node.occ_next),
                pos: node.pos,
                owner: {
                    debug_assert_ne!(
                        rule_map[node.owner as usize], NIL,
                        "live node owned by a dead rule"
                    );
                    rule_map[node.owner as usize]
                },
            });
        }
        self.nodes = nodes;
        self.free = Vec::new();

        let mut rules = Vec::with_capacity(live_rules as usize);
        for rec in &self.rules {
            if rec.guard == NIL {
                continue;
            }
            rules.push(RuleRec {
                guard: map_node(rec.guard),
                occ_head: map_node(rec.occ_head),
                uses: rec.uses,
                exp_len: rec.exp_len,
            });
        }
        self.rules = rules;

        // The table's invariant — every entry points at a live node
        // whose digram is its key — makes the rebuild a pure remap.
        let mut digrams =
            FxHashMap::with_capacity_and_hasher(self.digrams.len(), Default::default());
        for (&(a, b), &n) in &self.digrams {
            debug_assert_ne!(node_map[n as usize], NIL, "digram table cites a free node");
            digrams.insert((map_sym(a), map_sym(b)), node_map[n as usize]);
        }
        self.digrams = digrams;

        // Drained after every push; remap defensively anyway.
        self.underused.retain(|&r| rule_map[r as usize] != NIL);
        for r in &mut self.underused {
            *r = rule_map[*r as usize];
        }
    }

    // ------------------------------------------------------------------
    // Slab plumbing
    // ------------------------------------------------------------------

    fn alloc(&mut self, kind: Kind) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = Node::blank(kind);
            id
        } else {
            let id = self.nodes.len() as u32;
            assert!(id < NIL, "sequitur node arena exhausted");
            self.nodes.push(Node::blank(kind));
            id
        }
    }

    fn release(&mut self, i: u32) {
        self.nodes[i as usize].kind = Kind::Free;
        self.free.push(i);
    }

    #[inline]
    fn next(&self, i: u32) -> u32 {
        self.nodes[i as usize].next
    }

    #[inline]
    fn prev(&self, i: u32) -> u32 {
        self.nodes[i as usize].prev
    }

    #[inline]
    fn is_guard(&self, i: u32) -> bool {
        matches!(self.nodes[i as usize].kind, Kind::Guard { .. })
    }

    /// Symbol of node `i`, or `None` for guards.
    #[inline]
    fn sym(&self, i: u32) -> Option<Sym> {
        match self.nodes[i as usize].kind {
            Kind::Sym(s) => Some(s),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Rule and occurrence bookkeeping
    // ------------------------------------------------------------------

    fn new_rule(&mut self) -> u32 {
        let rule = self.rules.len() as u32;
        let guard = self.alloc(Kind::Guard { rule });
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleRec {
            guard,
            occ_head: NIL,
            uses: 0,
            exp_len: 0,
        });
        rule
    }

    /// Terminal expansion length of one symbol.
    #[inline]
    fn sym_exp_len(&self, s: Sym) -> usize {
        match s {
            Sym::T(_) => 1,
            Sym::R(r) => self.rules[r as usize].exp_len,
        }
    }

    /// Creates an occurrence node for `sym`, registering rule usage.
    fn make_sym_node(&mut self, sym: Sym) -> u32 {
        let n = self.alloc(Kind::Sym(sym));
        if let Sym::R(r) = sym {
            let head = self.rules[r as usize].occ_head;
            self.nodes[n as usize].occ_next = head;
            if head != NIL {
                self.nodes[head as usize].occ_prev = n;
            }
            self.rules[r as usize].occ_head = n;
            self.rules[r as usize].uses += 1;
        }
        n
    }

    /// Unregisters a rule occurrence (node about to be destroyed).
    fn deuse(&mut self, n: u32, r: u32) {
        let (op, on) = {
            let nd = &self.nodes[n as usize];
            (nd.occ_prev, nd.occ_next)
        };
        if op != NIL {
            self.nodes[op as usize].occ_next = on;
        } else {
            self.rules[r as usize].occ_head = on;
        }
        if on != NIL {
            self.nodes[on as usize].occ_prev = op;
        }
        let rec = &mut self.rules[r as usize];
        rec.uses -= 1;
        if rec.uses == 1 {
            self.underused.push(r);
        }
    }

    // ------------------------------------------------------------------
    // Digram table
    // ------------------------------------------------------------------

    /// Key of the digram starting at `i`, if both members are symbols.
    #[inline]
    fn digram_key(&self, i: u32) -> Option<(Sym, Sym)> {
        let a = self.sym(i)?;
        let b = self.sym(self.next(i))?;
        Some((a, b))
    }

    /// Removes the table entry for the digram starting at `i`, but only if
    /// the table actually points at `i`.
    fn delete_digram(&mut self, i: u32) {
        if let Some(key) = self.digram_key(i) {
            if self.digrams.get(&key) == Some(&i) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Links `left → right`, maintaining digram-table consistency. Ports
    /// the reference `join`, including the same-symbol-triple repair that
    /// keeps runs like `aaa` from losing their table entries.
    fn join(&mut self, left: u32, right: u32) {
        if self.nodes[left as usize].next != NIL {
            self.delete_digram(left);

            // Triple repair: if `right` sits inside a run of equal symbols,
            // re-register the digram starting at `right`.
            {
                let rp = self.prev(right);
                let rn = self.next(right);
                if rp != NIL && rn != NIL {
                    if let (Some(v), Some(vp), Some(vn)) =
                        (self.sym(right), self.sym(rp), self.sym(rn))
                    {
                        if v == vp && v == vn {
                            self.digrams.insert((v, v), right);
                        }
                    }
                }
            }
            // Symmetric repair around `left`.
            {
                let lp = self.prev(left);
                let ln = self.next(left);
                if lp != NIL && ln != NIL {
                    if let (Some(v), Some(vp), Some(vn)) =
                        (self.sym(left), self.sym(lp), self.sym(ln))
                    {
                        if v == vp && v == vn {
                            self.digrams.insert((v, v), lp);
                        }
                    }
                }
            }
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    fn insert_after(&mut self, x: u32, y: u32) {
        let xn = self.next(x);
        self.join(y, xn);
        self.join(x, y);
    }

    /// Destroys node `i`: splices it out, cleans its digram entry, and
    /// de-registers a rule occurrence if applicable.
    fn delete_node(&mut self, i: u32) {
        let p = self.prev(i);
        let n = self.next(i);
        self.join(p, n);
        if let Some(sym) = self.sym(i) {
            self.delete_digram(i);
            if let Sym::R(r) = sym {
                self.deuse(i, r);
            }
        }
        self.release(i);
    }

    // ------------------------------------------------------------------
    // Core algorithm
    // ------------------------------------------------------------------

    /// Appends one terminal token and restores the grammar constraints.
    pub fn push(&mut self, token: u32) {
        self.token_count += 1;
        assert!(
            self.token_count <= u32::MAX as usize,
            "token position exceeds u32 range"
        );
        self.rules[0].exp_len += 1;
        let guard = self.rules[0].guard;
        let last = self.prev(guard);
        let n = self.make_sym_node(Sym::T(token));
        // Root-body positions are absolute token indices (owner 0 is
        // Node::blank's default).
        self.nodes[n as usize].pos = (self.token_count - 1) as u32;
        self.insert_after(last, n);
        if last != guard {
            self.check(last);
        }
        self.drain_underused();
    }

    /// Examines the digram starting at `i`. Returns `true` when the digram
    /// already existed in the table (whether or not a substitution
    /// happened).
    fn check(&mut self, i: u32) -> bool {
        if self.is_guard(i) || self.is_guard(self.next(i)) {
            return false;
        }
        let key = match self.digram_key(i) {
            Some(k) => k,
            None => return false,
        };
        match self.digrams.get(&key) {
            None => {
                self.digrams.insert(key, i);
                false
            }
            Some(&m) => {
                debug_assert_ne!(m, i, "digram table points at a just-formed digram");
                // Overlapping occurrence (e.g. `aaa`): do nothing.
                if self.next(m) != i {
                    self.process_match(i, m);
                }
                true
            }
        }
    }

    /// Handles a repeated digram: `ss` is the new occurrence, `m` the one
    /// recorded in the table.
    fn process_match(&mut self, ss: u32, m: u32) {
        let r;
        if self.is_guard(self.prev(m)) && self.is_guard(self.next(self.next(m))) {
            // `m` is the entire body of an existing rule: reuse it.
            r = match self.nodes[self.prev(m) as usize].kind {
                Kind::Guard { rule } => rule,
                _ => unreachable!("prev(m) tested as guard"),
            };
            self.substitute(ss, r);
        } else {
            // Create a new rule from the digram's symbols.
            let s1 = self.sym(ss).expect("digram member is a symbol");
            let s2 = self.sym(self.next(ss)).expect("digram member is a symbol");
            let l1 = self.sym_exp_len(s1);
            r = self.new_rule();
            self.rules[r as usize].exp_len = l1 + self.sym_exp_len(s2);
            let guard = self.rules[r as usize].guard;
            // Building the body changes no transitive span: the rule
            // has zero occurrences until the substitutions below.
            let c1 = self.make_sym_node(s1);
            self.nodes[c1 as usize].owner = r;
            self.insert_after(guard, c1);
            let c2 = self.make_sym_node(s2);
            self.nodes[c2 as usize].pos = l1 as u32;
            self.nodes[c2 as usize].owner = r;
            self.insert_after(c1, c2);
            self.substitute(m, r);
            self.substitute(ss, r);
            // The rule body is now the canonical location of this digram.
            self.digrams.insert((s1, s2), c1);
        }
        self.drain_underused();
    }

    /// Absolute token positions at which `rule`'s expansion starts,
    /// one per **transitive** occurrence — the walk goes *up* the
    /// ownership chain (occurrence node → containing rule → its
    /// occurrences …), so the cost is proportional to the changed
    /// coverage, never the series length. The root's sole "occurrence"
    /// starts at 0; root-body node positions are absolute.
    fn transitive_starts(&self, rule: u32, memo: &mut FxHashMap<u32, Vec<usize>>) -> Vec<usize> {
        if rule == 0 {
            return vec![0];
        }
        if let Some(v) = memo.get(&rule) {
            return v.clone();
        }
        let mut starts = Vec::new();
        let mut occ = self.rules[rule as usize].occ_head;
        while occ != NIL {
            let node = self.nodes[occ as usize];
            for s in self.transitive_starts(node.owner, memo) {
                starts.push(s + node.pos as usize);
            }
            occ = node.occ_next;
        }
        memo.insert(rule, starts.clone());
        starts
    }

    /// Records one span change of length `len` at `pos` within `owner`'s
    /// body, fanned out over every transitive occurrence of `owner`.
    fn emit_delta(&mut self, owner: u32, pos: u32, len: usize, created: bool) {
        let mut memo = FxHashMap::default();
        let starts = self.transitive_starts(owner, &mut memo);
        for s in starts {
            self.deltas.push(OccDelta {
                start: s + pos as usize,
                len,
                created,
            });
        }
    }

    /// Replaces the digram starting at `i` with a reference to rule `r`.
    fn substitute(&mut self, i: u32, r: u32) {
        let q = self.prev(i);
        let second = self.next(i);
        // Net-delta accounting: this is the only operation that adds a
        // transitive span. The two replaced symbols keep their spans
        // (if rule references, they recur inside `r`'s body at the
        // same absolute positions), so the net change is exactly one
        // new `r`-span per transitive occurrence of the body being
        // edited — emitted before the structure changes, while the
        // ownership chain is still consistent.
        let (pos, owner) = {
            let nd = &self.nodes[i as usize];
            (nd.pos, nd.owner)
        };
        if self.track {
            let len = self.rules[r as usize].exp_len;
            self.emit_delta(owner, pos, len, true);
        }
        self.delete_node(second);
        self.delete_node(i);
        let n = self.make_sym_node(Sym::R(r));
        self.nodes[n as usize].pos = pos;
        self.nodes[n as usize].owner = owner;
        self.insert_after(q, n);
        if !self.check(q) {
            let qn = self.next(q);
            self.check(qn);
        }
    }

    /// Expands rules whose use count has dropped to one (rule utility).
    fn drain_underused(&mut self) {
        while let Some(r) = self.underused.pop() {
            let rec = self.rules[r as usize];
            if rec.guard == NIL || rec.uses != 1 {
                continue; // already dead, or re-used since being queued
            }
            let occ = rec.occ_head;
            debug_assert_ne!(occ, NIL, "uses == 1 but no occurrence recorded");
            self.expand(occ, r);
        }
    }

    /// Inlines rule `r`'s body at its sole remaining occurrence `n` and
    /// deletes the rule.
    fn expand(&mut self, n: u32, r: u32) {
        let left = self.prev(n);
        let right = self.next(n);
        let guard = self.rules[r as usize].guard;
        let first = self.next(guard);
        let last = self.prev(guard);
        debug_assert!(first != guard, "expanding an empty rule");

        // Net-delta accounting: inlining destroys exactly the
        // `r`-span(s) at this sole occurrence; the spliced body symbols
        // keep their transitive spans (their positions are rebased
        // below so absolute starts are unchanged). Emit before any
        // structural edit.
        let (n_pos, n_owner) = {
            let nd = &self.nodes[n as usize];
            (nd.pos, nd.owner)
        };
        if self.track {
            let len = self.rules[r as usize].exp_len;
            self.emit_delta(n_owner, n_pos, len, false);
        }
        // Rebase the spliced body into the parent's coordinates: each
        // body node's offset becomes relative to the parent body, and
        // its owner becomes the parent rule.
        let mut cur = first;
        loop {
            self.nodes[cur as usize].pos += n_pos;
            self.nodes[cur as usize].owner = n_owner;
            if cur == last {
                break;
            }
            cur = self.next(cur);
        }

        // The digram (n, right) is about to disappear.
        self.delete_digram(n);
        // (left, n) is cleaned inside join(left, first).
        self.join(left, first);
        self.join(last, right);

        // Register the digram that now starts at `last`. The reference
        // implementation overwrites unconditionally; a pre-existing entry
        // elsewhere only costs a missed match, never incorrectness.
        if let Some(key) = self.digram_key(last) {
            self.digrams.insert(key, last);
        }

        // Kill the rule: the occurrence node and guard are recycled; the
        // rule record is tombstoned.
        self.rules[r as usize].guard = NIL;
        self.rules[r as usize].occ_head = NIL;
        self.rules[r as usize].uses = 0;
        self.release(n);
        self.release(guard);
    }

    // ------------------------------------------------------------------
    // Extraction
    // ------------------------------------------------------------------

    /// Enumerates every transitive occurrence of every live non-root
    /// rule over the token sequence pushed so far — **without**
    /// consuming or copying the grammar.
    ///
    /// This is the incremental-accounting entry point for streaming
    /// density maintenance: after each batch of
    /// [`push`](Sequitur::push)es, a caller can re-enumerate rule
    /// coverage straight off the live slab, paying only the derivation
    /// walk (`O(token count)`) instead of a full
    /// [`into_grammar`](Sequitur::into_grammar) extraction (rule-body
    /// materialization + dense renumbering). The walk uses the
    /// incrementally maintained per-rule expansion lengths, so no
    /// bottom-up recomputation happens either.
    ///
    /// The reported [`RuleOccurrence::rule`] ids are **engine** rule
    /// ids (the root is 0 and never reported; dead rules leave gaps),
    /// not the dense ids of an extracted [`Grammar`] — but the
    /// `(start, len)` span multiset is identical to
    /// [`Grammar::occurrences`] on the extracted grammar, which is the
    /// part rule-density construction consumes (property-tested).
    pub fn occurrences(&self) -> Vec<RuleOccurrence> {
        let mut out = Vec::new();
        let root_guard = self.rules[0].guard;
        // Frames: (node to visit, guard of the body it belongs to,
        // absolute token position of the node).
        let mut stack: Vec<(u32, u32, usize)> = vec![(self.next(root_guard), root_guard, 0)];
        while let Some((node, guard, at)) = stack.pop() {
            if node == guard {
                continue;
            }
            match self.sym(node).expect("rule bodies contain only symbols") {
                Sym::T(_) => stack.push((self.next(node), guard, at + 1)),
                Sym::R(q) => {
                    let len = self.rules[q as usize].exp_len;
                    debug_assert!(len >= 2, "non-root rule expands to >= 2 terminals");
                    out.push(RuleOccurrence {
                        rule: q,
                        start: at,
                        len,
                    });
                    stack.push((self.next(node), guard, at + len));
                    let g = self.rules[q as usize].guard;
                    debug_assert_ne!(g, NIL, "live body references a dead rule");
                    stack.push((self.next(g), g, at));
                }
            }
        }
        out
    }

    /// Extracts an immutable [`Grammar`] snapshot (densely renumbered
    /// rules, dead rules dropped, `R0` first) without consuming the
    /// engine — induction can continue afterwards.
    pub fn to_grammar(&self) -> Grammar {
        // Dense renumbering of live rules.
        let mut remap: Vec<u32> = vec![u32::MAX; self.rules.len()];
        let mut live = 0u32;
        for (id, rec) in self.rules.iter().enumerate() {
            if rec.guard != NIL {
                remap[id] = live;
                live += 1;
            }
        }

        let mut rules = Vec::with_capacity(live as usize);
        for (id, rec) in self.rules.iter().enumerate() {
            if rec.guard == NIL {
                continue;
            }
            let mut body = Vec::new();
            let mut cur = self.next(rec.guard);
            while cur != rec.guard {
                match self.sym(cur).expect("rule bodies contain only symbols") {
                    Sym::T(t) => body.push(Symbol::Terminal(t)),
                    Sym::R(r) => {
                        let dense = remap[r as usize];
                        debug_assert_ne!(dense, u32::MAX, "reference to dead rule {r}");
                        body.push(Symbol::Rule(dense));
                    }
                }
                cur = self.next(cur);
            }
            rules.push(GrammarRule {
                body,
                uses: if id == 0 { 0 } else { rec.uses as usize },
                expansion_len: 0, // filled by Grammar::finalize
            });
        }
        Grammar::finalize(rules, self.token_count)
    }

    /// Finalizes induction and converts the internal state into an
    /// immutable [`Grammar`] with densely renumbered rules (dead rules
    /// dropped, `R0` first).
    pub fn into_grammar(self) -> Grammar {
        self.to_grammar()
    }
}

// ----------------------------------------------------------------------
// Serde-shim impls (checkpoint/restore)
//
// The streaming detector checkpoints a *live* engine mid-induction, so
// the entire slab state — nodes, free-list order (allocation pops from
// the back, so order is behavioral), rule records including tombstones,
// the digram table, and the token count — must round-trip exactly for a
// restored engine to evolve bit-identically under further pushes. The
// digram table is emitted sorted by key so checkpoints are
// byte-deterministic; reinsertion order into the hash map is
// unobservable (the table is only ever probed by key).
// ----------------------------------------------------------------------

/// Total order on symbols for deterministic digram emission.
fn sym_rank(s: Sym) -> (u8, u32) {
    match s {
        Sym::T(t) => (0, t),
        Sym::R(r) => (1, r),
    }
}

impl Serialize for Sym {
    fn to_value(&self) -> Value {
        let (tag, v) = sym_rank(*self);
        Value::Arr(vec![Value::UInt(tag as u64), Value::UInt(v as u64)])
    }
}

impl Deserialize for Sym {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        let (tag, v): (u8, u32) = Deserialize::from_value(value)?;
        match tag {
            0 => Ok(Sym::T(v)),
            1 => Ok(Sym::R(v)),
            _ => Err(DeserializeError(format!("unknown symbol tag {tag}"))),
        }
    }
}

impl Serialize for Kind {
    fn to_value(&self) -> Value {
        match self {
            Kind::Guard { rule } => Value::Arr(vec![Value::UInt(0), Value::UInt(*rule as u64)]),
            Kind::Sym(s) => Value::Arr(vec![Value::UInt(1), s.to_value()]),
            Kind::Free => Value::Arr(vec![Value::UInt(2)]),
        }
    }
}

impl Deserialize for Kind {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        let items = match value {
            Value::Arr(items) if !items.is_empty() => items,
            other => return Err(DeserializeError::expected("node kind array", other)),
        };
        match (u64::from_value(&items[0])?, items.len()) {
            (0, 2) => Ok(Kind::Guard {
                rule: u32::from_value(&items[1])?,
            }),
            (1, 2) => Ok(Kind::Sym(Sym::from_value(&items[1])?)),
            (2, 1) => Ok(Kind::Free),
            (tag, len) => Err(DeserializeError(format!(
                "malformed node kind (tag {tag}, {len} items)"
            ))),
        }
    }
}

impl Serialize for Node {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.kind.to_value(),
            Value::UInt(self.prev as u64),
            Value::UInt(self.next as u64),
            Value::UInt(self.occ_prev as u64),
            Value::UInt(self.occ_next as u64),
            Value::UInt(self.pos as u64),
            Value::UInt(self.owner as u64),
        ])
    }
}

impl Deserialize for Node {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        let items = match value {
            Value::Arr(items) if items.len() == 7 => items,
            other => return Err(DeserializeError::expected("array of 7", other)),
        };
        Ok(Node {
            kind: Kind::from_value(&items[0])?,
            prev: u32::from_value(&items[1])?,
            next: u32::from_value(&items[2])?,
            occ_prev: u32::from_value(&items[3])?,
            occ_next: u32::from_value(&items[4])?,
            pos: u32::from_value(&items[5])?,
            owner: u32::from_value(&items[6])?,
        })
    }
}

impl Serialize for OccDelta {
    fn to_value(&self) -> Value {
        (self.start, self.len, self.created).to_value()
    }
}

impl Deserialize for OccDelta {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        let (start, len, created): (usize, usize, bool) = Deserialize::from_value(value)?;
        Ok(OccDelta {
            start,
            len,
            created,
        })
    }
}

impl Serialize for Sequitur {
    fn to_value(&self) -> Value {
        let rules: Vec<(u32, u32, u32, usize)> = self
            .rules
            .iter()
            .map(|r| (r.guard, r.occ_head, r.uses, r.exp_len))
            .collect();
        let mut digrams: Vec<(Sym, Sym, u32)> =
            self.digrams.iter().map(|(&(a, b), &n)| (a, b, n)).collect();
        digrams.sort_unstable_by_key(|&(a, b, _)| (sym_rank(a), sym_rank(b)));
        Value::Obj(vec![
            ("nodes".into(), self.nodes.to_value()),
            ("free".into(), self.free.to_value()),
            ("rules".into(), rules.to_value()),
            ("digrams".into(), digrams.to_value()),
            ("underused".into(), self.underused.to_value()),
            ("token_count".into(), self.token_count.to_value()),
            ("track".into(), self.track.to_value()),
            ("deltas".into(), self.deltas.to_value()),
        ])
    }
}

impl Deserialize for Sequitur {
    fn from_value(value: &Value) -> Result<Self, DeserializeError> {
        let nodes: Vec<Node> = value.field("nodes")?;
        let free: Vec<u32> = value.field("free")?;
        let rules_raw: Vec<(u32, u32, u32, usize)> = value.field("rules")?;
        let digrams_raw: Vec<(Sym, Sym, u32)> = value.field("digrams")?;
        let underused: Vec<u32> = value.field("underused")?;
        let token_count: usize = value.field("token_count")?;
        let track: bool = value.field("track")?;
        let deltas: Vec<OccDelta> = value.field("deltas")?;

        let rules: Vec<RuleRec> = rules_raw
            .into_iter()
            .map(|(guard, occ_head, uses, exp_len)| RuleRec {
                guard,
                occ_head,
                uses,
                exp_len,
            })
            .collect();

        // Structural validation: every index a restored engine will
        // chase must land inside the slab, or the first push after a
        // restore would panic instead of erroring here.
        let node_ok = |i: u32| i == NIL || (i as usize) < nodes.len();
        for node in &nodes {
            if !(node_ok(node.prev)
                && node_ok(node.next)
                && node_ok(node.occ_prev)
                && node_ok(node.occ_next))
            {
                return Err(DeserializeError("node link out of slab range".into()));
            }
            let rule_ref = match node.kind {
                Kind::Guard { rule } => Some(rule),
                Kind::Sym(Sym::R(r)) => Some(r),
                _ => None,
            };
            if let Some(r) = rule_ref {
                if (r as usize) >= rules.len() {
                    return Err(DeserializeError(format!("rule reference {r} out of range")));
                }
            }
            if (node.owner as usize) >= rules.len() {
                return Err(DeserializeError(format!(
                    "node owner {} out of range",
                    node.owner
                )));
            }
        }
        if rules.is_empty() || rules[0].guard == NIL {
            return Err(DeserializeError("missing live root rule".into()));
        }
        for rec in &rules {
            if !(node_ok(rec.guard) && node_ok(rec.occ_head)) {
                return Err(DeserializeError(
                    "rule record cites a node out of range".into(),
                ));
            }
        }
        for &f in &free {
            if (f as usize) >= nodes.len() || !matches!(nodes[f as usize].kind, Kind::Free) {
                return Err(DeserializeError("free list cites a non-free node".into()));
            }
        }
        for &(_, _, n) in &digrams_raw {
            if (n as usize) >= nodes.len() {
                return Err(DeserializeError(
                    "digram table cites a node out of range".into(),
                ));
            }
        }
        for &r in &underused {
            if (r as usize) >= rules.len() {
                return Err(DeserializeError(
                    "underused queue cites a rule out of range".into(),
                ));
            }
        }

        let mut digrams =
            FxHashMap::with_capacity_and_hasher(digrams_raw.len(), Default::default());
        for (a, b, n) in digrams_raw {
            digrams.insert((a, b), n);
        }
        Ok(Sequitur {
            nodes,
            free,
            rules,
            digrams,
            underused,
            token_count,
            track,
            deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induce;

    /// Paper Table 2: SNR = ab,bc,aa,cc,ca,ab,bc,aa with interning
    /// ab=0, bc=1, aa=2, cc=3, ca=4 yields S → R,cc,ca,R ; R → ab,bc,aa.
    #[test]
    fn paper_table2_example() {
        let g = induce([0u32, 1, 2, 3, 4, 0, 1, 2]);
        assert_eq!(g.rule_count(), 2, "expected R0 plus exactly one rule");
        let root = &g.rules[0];
        assert_eq!(
            root.body,
            vec![
                Symbol::Rule(1),
                Symbol::Terminal(3),
                Symbol::Terminal(4),
                Symbol::Rule(1)
            ]
        );
        let r1 = &g.rules[1];
        assert_eq!(
            r1.body,
            vec![
                Symbol::Terminal(0),
                Symbol::Terminal(1),
                Symbol::Terminal(2)
            ]
        );
        assert_eq!(r1.uses, 2);
        assert_eq!(r1.expansion_len, 3);
    }

    /// Section 3.2 example: S = aa,bb,cc,xx,aa,bb,cc → R1 = aa,bb,cc and
    /// the incompressible xx stays a terminal in R0.
    #[test]
    fn paper_section32_example() {
        // aa=0, bb=1, cc=2, xx=3.
        let g = induce([0u32, 1, 2, 3, 0, 1, 2]);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(
            g.rules[0].body,
            vec![Symbol::Rule(1), Symbol::Terminal(3), Symbol::Rule(1)]
        );
        assert_eq!(
            g.rules[1].body,
            vec![
                Symbol::Terminal(0),
                Symbol::Terminal(1),
                Symbol::Terminal(2)
            ]
        );
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let g = induce(std::iter::empty());
        assert_eq!(g.rule_count(), 1);
        assert!(g.rules[0].body.is_empty());
        assert_eq!(g.expand_root(), Vec::<u32>::new());

        let g = induce([7u32]);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(g.expand_root(), vec![7]);
    }

    #[test]
    fn no_repeats_creates_no_rules() {
        let g = induce(0u32..20);
        assert_eq!(g.rule_count(), 1);
        assert_eq!(g.expand_root(), (0u32..20).collect::<Vec<_>>());
    }

    #[test]
    fn abab_forms_one_rule() {
        let g = induce([0u32, 1, 0, 1]);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.rules[0].body, vec![Symbol::Rule(1), Symbol::Rule(1)]);
        assert_eq!(g.expand_root(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn run_of_identical_tokens_is_handled() {
        // The classic `aaaa...` stress: overlapping digrams must not
        // corrupt the grammar.
        for len in 2..40usize {
            let input = vec![5u32; len];
            let g = induce(input.clone());
            assert_eq!(g.expand_root(), input, "run length {len}");
            g.verify().unwrap_or_else(|e| panic!("len {len}: {e}"));
        }
    }

    #[test]
    fn nested_repetition_compresses_hierarchically() {
        // (ab)^8: expect nested rules, root much shorter than input.
        let mut input = Vec::new();
        for _ in 0..8 {
            input.extend_from_slice(&[0u32, 1]);
        }
        let g = induce(input.clone());
        assert_eq!(g.expand_root(), input);
        assert!(
            g.rules[0].body.len() <= 4,
            "root body: {:?}",
            g.rules[0].body
        );
        g.verify().unwrap();
    }

    #[test]
    fn rule_reuse_branch_is_exercised() {
        // abcdbc: digram bc repeats, rule created; then abcd again forces
        // reuse of existing full-body rule.
        let g = induce([0u32, 1, 2, 3, 1, 2, 0, 1, 2, 3, 1, 2]);
        assert_eq!(g.expand_root(), vec![0, 1, 2, 3, 1, 2, 0, 1, 2, 3, 1, 2]);
        g.verify().unwrap();
    }

    #[test]
    fn all_rules_used_at_least_twice() {
        let input: Vec<u32> = (0..200).map(|i| (i % 7) as u32).collect();
        let g = induce(input.clone());
        g.verify().unwrap();
        for (i, r) in g.rules.iter().enumerate().skip(1) {
            assert!(r.uses >= 2, "rule {i} used {} times", r.uses);
        }
        assert_eq!(g.expand_root(), input);
    }

    #[test]
    fn rule_bodies_have_at_least_two_symbols() {
        let input: Vec<u32> = (0..500).map(|i| ((i * i) % 11) as u32).collect();
        let g = induce(input);
        for (i, r) in g.rules.iter().enumerate().skip(1) {
            assert!(r.body.len() >= 2, "rule {i} body {:?}", r.body);
        }
    }

    /// The live-slab occurrence walk must report the same `(start, len)`
    /// span multiset as the extracted grammar's derivation walk — the
    /// part rule-density construction consumes.
    fn assert_live_occurrences_match_extracted(input: &[u32]) {
        let mut s = Sequitur::new();
        for &t in input {
            s.push(t);
        }
        let mut live: Vec<(usize, usize)> =
            s.occurrences().iter().map(|o| (o.start, o.len)).collect();
        let g = s.to_grammar();
        let mut extracted: Vec<(usize, usize)> =
            g.occurrences().iter().map(|o| (o.start, o.len)).collect();
        live.sort_unstable();
        extracted.sort_unstable();
        assert_eq!(live, extracted, "input {input:?}");
    }

    #[test]
    fn live_occurrences_match_extracted_grammar() {
        assert_live_occurrences_match_extracted(&[]);
        assert_live_occurrences_match_extracted(&[7]);
        assert_live_occurrences_match_extracted(&[0, 1, 0, 1]);
        assert_live_occurrences_match_extracted(&[0, 1, 2, 3, 4, 0, 1, 2]);
        assert_live_occurrences_match_extracted(&[5; 30]);
        let nested: Vec<u32> = (0..200).map(|i| (i % 7) as u32).collect();
        assert_live_occurrences_match_extracted(&nested);
        let quadratic: Vec<u32> = (0..300).map(|i| ((i * i) % 11) as u32).collect();
        assert_live_occurrences_match_extracted(&quadratic);
    }

    #[test]
    fn incremental_expansion_lengths_match_finalized_grammar() {
        // The engine's per-rule exp_len (maintained across pushes,
        // substitutions, and inline expansions) must agree with the
        // bottom-up recomputation Grammar::finalize performs.
        let input: Vec<u32> = (0..250).map(|i| ((i * 13) % 9) as u32).collect();
        let mut s = Sequitur::new();
        for &t in &input {
            s.push(t);
        }
        let g = s.to_grammar();
        // Recover the engine→dense remap the same way to_grammar does.
        let mut dense = 0usize;
        for rec in s.rules.iter() {
            if rec.guard != NIL {
                assert_eq!(
                    rec.exp_len, g.rules[dense].expansion_len,
                    "dense rule {dense}"
                );
                dense += 1;
            }
        }
        assert_eq!(dense, g.rule_count());
        assert_eq!(s.rules[0].exp_len, input.len());
    }

    #[test]
    fn to_grammar_snapshot_lets_induction_continue() {
        let mut s = Sequitur::new();
        for t in [0u32, 1, 0, 1] {
            s.push(t);
        }
        let snap = s.to_grammar();
        assert_eq!(snap.expand_root(), vec![0, 1, 0, 1]);
        // Keep pushing after the snapshot; the final grammar covers
        // everything, and matches a from-scratch induction.
        for t in [2u32, 0, 1, 2] {
            s.push(t);
        }
        let g = s.into_grammar();
        assert_eq!(g.expand_root(), vec![0, 1, 0, 1, 2, 0, 1, 2]);
        let fresh = induce([0u32, 1, 0, 1, 2, 0, 1, 2]);
        assert_eq!(g, fresh);
    }

    #[test]
    fn occurrences_on_empty_engine() {
        let s = Sequitur::new();
        assert!(s.occurrences().is_empty());
    }

    #[test]
    fn token_count_tracks_pushes() {
        let mut s = Sequitur::new();
        for t in [1u32, 2, 1, 2, 3] {
            s.push(t);
        }
        assert_eq!(s.token_count(), 5);
    }

    #[test]
    fn clear_resets_to_a_fresh_engine_bitwise() {
        let mut reused = Sequitur::new();
        for t in (0..300).map(|i| ((i * 7) % 12) as u32) {
            reused.push(t);
        }
        reused.clear();
        assert_eq!(reused.token_count(), 0);
        assert!(reused.occurrences().is_empty());
        // Replaying a sequence into the cleared engine yields a grammar
        // identical to a fresh induction — slab ids and all downstream
        // behavior restart exactly.
        let input: Vec<u32> = (0..200).map(|i| ((i * i) % 9) as u32).collect();
        for &t in &input {
            reused.push(t);
        }
        let fresh = induce(input.iter().copied());
        assert_eq!(reused.to_grammar(), fresh);
        assert!(reused.slab_capacity() >= reused.slab_len());
    }

    /// Compaction must be observationally invisible: same grammar, same
    /// occurrence spans, and identical evolution under further pushes —
    /// while actually reclaiming free-list holes.
    #[test]
    fn compact_preserves_grammar_and_future_evolution() {
        // Inputs chosen to churn rules (substitutions + inline
        // expansions leave holes and tombstones behind).
        let inputs: Vec<Vec<u32>> = vec![
            (0..240).map(|i| ((i * 13) % 9) as u32).collect(),
            (0..160).map(|i| ((i * i) % 7) as u32).collect(),
            vec![5; 40],
            (0..120).map(|i| (i % 3) as u32).collect(),
        ];
        for input in inputs {
            for cut in [1usize, input.len() / 3, input.len() / 2, input.len() - 1] {
                let mut compacted = Sequitur::new();
                let mut plain = Sequitur::new();
                for &t in &input[..cut] {
                    compacted.push(t);
                    plain.push(t);
                }
                compacted.compact();
                assert!(
                    compacted.slab_len() <= plain.slab_len(),
                    "compaction grew the slab"
                );
                let mut live: Vec<(usize, usize)> = compacted
                    .occurrences()
                    .iter()
                    .map(|o| (o.start, o.len))
                    .collect();
                let mut reference: Vec<(usize, usize)> = plain
                    .occurrences()
                    .iter()
                    .map(|o| (o.start, o.len))
                    .collect();
                live.sort_unstable();
                reference.sort_unstable();
                assert_eq!(live, reference, "cut {cut}");
                assert_eq!(compacted.to_grammar(), plain.to_grammar(), "cut {cut}");
                // Future pushes evolve identically.
                for &t in &input[cut..] {
                    compacted.push(t);
                    plain.push(t);
                }
                assert_eq!(compacted.to_grammar(), plain.to_grammar(), "cut {cut}");
                assert_eq!(compacted.to_grammar(), induce(input.iter().copied()));
            }
        }
    }

    #[test]
    fn compact_reclaims_free_slots_after_rule_churn() {
        // A run of identical tokens builds and expands nested rules,
        // leaving free-list holes; compaction must shrink the slab to
        // the live node count.
        let mut s = Sequitur::new();
        for _ in 0..64 {
            s.push(9);
        }
        let before = s.slab_len();
        s.compact();
        assert!(s.slab_len() <= before);
        // Every slot is now live: a further compaction is a no-op.
        let len = s.slab_len();
        s.compact();
        assert_eq!(s.slab_len(), len);
        assert_eq!(s.to_grammar(), induce(std::iter::repeat_n(9u32, 64)));
    }

    #[test]
    fn compact_on_empty_engine_is_a_noop() {
        let mut s = Sequitur::new();
        s.compact();
        assert_eq!(s.token_count(), 0);
        assert!(s.occurrences().is_empty());
        s.push(1);
        s.push(2);
        assert_eq!(s.to_grammar(), induce([1u32, 2]));
    }

    /// A serde round-trip of a live mid-induction engine must restore
    /// *behavioral* state: the rebuilt engine evolves bit-identically
    /// under every further push (the checkpoint/restore contract).
    #[test]
    fn serde_round_trip_preserves_future_evolution() {
        let inputs: Vec<Vec<u32>> = vec![
            (0..240).map(|i| ((i * 13) % 9) as u32).collect(),
            vec![5; 40],
            (0..160).map(|i| ((i * i) % 7) as u32).collect(),
            vec![],
        ];
        for input in inputs {
            for cut in [0, input.len() / 3, input.len() / 2, input.len()] {
                let mut original = Sequitur::new();
                for &t in &input[..cut] {
                    original.push(t);
                }
                let mut restored = Sequitur::from_value(&original.to_value()).expect("round trip");
                assert_eq!(restored.token_count(), original.token_count());
                assert_eq!(restored.to_grammar(), original.to_grammar());
                for &t in &input[cut..] {
                    original.push(t);
                    restored.push(t);
                }
                assert_eq!(restored.to_grammar(), original.to_grammar(), "cut {cut}");
                let live: Vec<_> = restored.occurrences();
                let reference: Vec<_> = original.occurrences();
                assert_eq!(live, reference, "cut {cut}");
            }
        }
    }

    /// Malformed value trees — wrong shapes, dangling indices, a dead
    /// root — error instead of building an engine that panics later.
    #[test]
    fn serde_rejects_malformed_state() {
        assert!(Sequitur::from_value(&Value::Null).is_err());
        assert!(Sequitur::from_value(&Value::Obj(vec![])).is_err());

        let mut s = Sequitur::new();
        for t in [0u32, 1, 0, 1, 2, 0, 1] {
            s.push(t);
        }
        let good = s.to_value();

        // Dangling node link.
        let mut bad = good.clone();
        if let Value::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "nodes" {
                    if let Value::Arr(nodes) = v {
                        if let Value::Arr(fields) = &mut nodes[1] {
                            fields[2] = Value::UInt(9_999);
                        }
                    }
                }
            }
        }
        assert!(Sequitur::from_value(&bad).is_err());

        // Empty rule table (no root).
        let mut bad = good.clone();
        if let Value::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "rules" {
                    *v = Value::Arr(vec![]);
                }
            }
        }
        assert!(Sequitur::from_value(&bad).is_err());

        // Free list citing a live node.
        let mut bad = good;
        if let Value::Obj(pairs) = &mut bad {
            for (k, v) in pairs.iter_mut() {
                if k == "free" {
                    *v = Value::Arr(vec![Value::UInt(0)]);
                }
            }
        }
        assert!(Sequitur::from_value(&bad).is_err());
    }

    /// Folds a batch of deltas into a span-count multiset, panicking on
    /// a destroy without a matching create.
    fn fold_deltas(
        counts: &mut std::collections::HashMap<(usize, usize), i64>,
        deltas: &[OccDelta],
    ) {
        for d in deltas {
            *counts.entry((d.start, d.len)).or_insert(0) += if d.created { 1 } else { -1 };
        }
        counts.retain(|span, &mut c| {
            assert!(c >= 0, "span {span:?} destroyed more often than created");
            c != 0
        });
    }

    /// The live span multiset from [`Sequitur::occurrences`].
    fn occurrence_counts(s: &Sequitur) -> std::collections::HashMap<(usize, usize), i64> {
        let mut counts = std::collections::HashMap::new();
        for o in s.occurrences() {
            *counts.entry((o.start, o.len)).or_insert(0) += 1;
        }
        counts
    }

    /// The tentpole differential at the engine level: after **every**
    /// push, the delta-accumulated span multiset equals the
    /// `occurrences()` span multiset exactly.
    fn assert_deltas_track_occurrences(input: &[u32]) {
        let mut s = Sequitur::new();
        s.set_delta_tracking(true);
        let mut counts = std::collections::HashMap::new();
        for (i, &t) in input.iter().enumerate() {
            s.push(t);
            fold_deltas(&mut counts, &s.take_deltas());
            assert_eq!(counts, occurrence_counts(&s), "after push {i} of {input:?}");
        }
    }

    #[test]
    fn deltas_track_occurrences_per_push() {
        assert_deltas_track_occurrences(&[]);
        assert_deltas_track_occurrences(&[7]);
        assert_deltas_track_occurrences(&[0, 1, 0, 1]);
        // Paper Table 2: rule reuse of a full body.
        assert_deltas_track_occurrences(&[0, 1, 2, 3, 4, 0, 1, 2]);
        // Overlapping-digram runs: heavy rule churn, nested expansion.
        assert_deltas_track_occurrences(&[5; 40]);
        // Substitutions that retire digrams mid-rule, and expansions at
        // utility 1 (rule churn under modular repetition).
        let nested: Vec<u32> = (0..220).map(|i| (i % 7) as u32).collect();
        assert_deltas_track_occurrences(&nested);
        let quadratic: Vec<u32> = (0..300).map(|i| ((i * i) % 11) as u32).collect();
        assert_deltas_track_occurrences(&quadratic);
        let mixed: Vec<u32> = (0..260).map(|i| ((i * 13) % 9) as u32).collect();
        assert_deltas_track_occurrences(&mixed);
    }

    #[test]
    fn deltas_rebase_across_clear() {
        let mut s = Sequitur::new();
        s.set_delta_tracking(true);
        for t in (0..150).map(|i| ((i * 7) % 12) as u32) {
            s.push(t);
        }
        assert!(!s.take_deltas().is_empty());
        for t in (0..10).map(|i| (i % 3) as u32) {
            s.push(t);
        }
        // clear() drops the pending (stale-coordinate) deltas but keeps
        // tracking on; a replay rebuilds the multiset from zero.
        s.clear();
        assert!(s.delta_tracking());
        assert!(s.take_deltas().is_empty());
        let mut counts = std::collections::HashMap::new();
        for (i, t) in (0..200).map(|i| ((i * i) % 9) as u32).enumerate() {
            s.push(t);
            fold_deltas(&mut counts, &s.take_deltas());
            assert_eq!(counts, occurrence_counts(&s), "after replay push {i}");
        }
    }

    #[test]
    fn delta_tracking_off_by_default_and_discards_when_disabled() {
        let mut s = Sequitur::new();
        assert!(!s.delta_tracking());
        for t in [0u32, 1, 0, 1] {
            s.push(t);
        }
        assert!(s.take_deltas().is_empty());
        s.set_delta_tracking(true);
        for t in [2u32, 0, 1, 2, 0, 1] {
            s.push(t);
        }
        assert!(!s.deltas.is_empty());
        s.set_delta_tracking(false);
        assert!(s.take_deltas().is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_pending_deltas_and_tracking() {
        let mut s = Sequitur::new();
        s.set_delta_tracking(true);
        let input: Vec<u32> = (0..120).map(|i| ((i * 5) % 8) as u32).collect();
        for &t in &input {
            s.push(t);
        }
        assert!(!s.deltas.is_empty(), "input should have induced rules");
        let mut restored = Sequitur::from_value(&s.to_value()).expect("round trip");
        assert!(restored.delta_tracking());
        assert_eq!(restored.take_deltas(), s.take_deltas());
        // Tracking continues identically after the restore.
        let mut counts = occurrence_counts(&restored);
        for t in (0..60).map(|i| ((i * 5) % 8) as u32) {
            restored.push(t);
            fold_deltas(&mut counts, &restored.take_deltas());
        }
        assert_eq!(counts, occurrence_counts(&restored));
    }

    #[test]
    fn compresses_repetitive_input_substantially() {
        // 64 copies of a 4-token motif: grammar total size must be far
        // below the 256-token input (compressibility = regularity).
        let mut input = Vec::new();
        for _ in 0..64 {
            input.extend_from_slice(&[3u32, 1, 4, 1]);
        }
        let g = induce(input.clone());
        assert_eq!(g.expand_root(), input);
        let total: usize = g.rules.iter().map(|r| r.body.len()).sum();
        assert!(
            total < 40,
            "grammar size {total} for 256-token repetitive input"
        );
    }
}
