//! Property-based tests for Sequitur.
//!
//! The two hard guarantees: (1) the grammar is lossless — expanding the
//! root reproduces the input exactly; (2) the Sequitur normal form holds —
//! every rule used ≥ 2 times, every body ≥ 2 symbols. A third, soft
//! property is monotone compression on repetitive inputs.

use egi_sequitur::{induce, Sequitur};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Incremental occurrence accounting (PR 4): the live-engine
    /// enumeration over incrementally maintained expansion lengths
    /// reports the same `(start, len)` span multiset as the extracted
    /// grammar's derivation walk, for arbitrary token sequences —
    /// the spans are exactly what rule-density construction consumes.
    #[test]
    fn live_occurrence_spans_match_extracted_grammar(
        tokens in prop::collection::vec(0u32..5, 0..300),
    ) {
        let mut s = Sequitur::new();
        for &t in &tokens {
            s.push(t);
        }
        let mut live: Vec<(usize, usize)> =
            s.occurrences().iter().map(|o| (o.start, o.len)).collect();
        let g = s.to_grammar();
        let mut extracted: Vec<(usize, usize)> =
            g.occurrences().iter().map(|o| (o.start, o.len)).collect();
        live.sort_unstable();
        extracted.sort_unstable();
        prop_assert_eq!(live, extracted);
        // Every span expands to a real slice of the input.
        for occ in g.occurrences() {
            let expansion = g.expand_rule(occ.rule);
            prop_assert_eq!(&tokens[occ.start..occ.start + occ.len], expansion.as_slice());
        }
    }

    /// Round trip over arbitrary token sequences, including long runs of
    /// identical tokens (small alphabet forces heavy rule churn).
    #[test]
    fn roundtrip_small_alphabet(tokens in prop::collection::vec(0u32..4, 0..400)) {
        let g = induce(tokens.clone());
        prop_assert_eq!(g.expand_root(), tokens);
        g.verify().map_err(TestCaseError::fail)?;
    }

    /// Round trip over a larger alphabet (fewer matches, more terminals).
    #[test]
    fn roundtrip_large_alphabet(tokens in prop::collection::vec(0u32..1000, 0..300)) {
        let g = induce(tokens.clone());
        prop_assert_eq!(g.expand_root(), tokens);
        g.verify().map_err(TestCaseError::fail)?;
    }

    /// Pathological runs: blocks of repeated symbols (aa..bb..aa..).
    #[test]
    fn roundtrip_block_runs(blocks in prop::collection::vec((0u32..3, 1usize..20), 1..20)) {
        let tokens: Vec<u32> = blocks
            .iter()
            .flat_map(|&(sym, len)| std::iter::repeat_n(sym, len))
            .collect();
        let g = induce(tokens.clone());
        prop_assert_eq!(g.expand_root(), tokens);
        g.verify().map_err(TestCaseError::fail)?;
    }

    /// Every reported rule occurrence expands to exactly the input slice
    /// it claims to cover — the property the rule density curve builds on.
    #[test]
    fn occurrences_match_input_slices(tokens in prop::collection::vec(0u32..6, 2..250)) {
        let g = induce(tokens.clone());
        for occ in g.occurrences() {
            let expansion = g.expand_rule(occ.rule);
            prop_assert_eq!(
                &tokens[occ.start..occ.start + occ.len],
                expansion.as_slice(),
                "occurrence {:?}", occ
            );
        }
    }

    /// Grammar size never exceeds input size plus the root overhead, and
    /// repeating the input twice never increases total grammar size by
    /// more than the motif length (sanity of the compression behaviour).
    #[test]
    fn grammar_size_is_bounded(tokens in prop::collection::vec(0u32..5, 1..150)) {
        let g = induce(tokens.clone());
        prop_assert!(g.total_size() <= tokens.len() + 2);
    }
}

/// Deterministic heavy stress: pseudo-random token stream, checked once.
#[test]
fn long_stream_stress() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let tokens: Vec<u32> = (0..50_000)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 8) as u32
        })
        .collect();
    let g = induce(tokens.clone());
    assert_eq!(g.expand_root(), tokens);
    g.verify().unwrap();
    assert!(
        g.total_size() < tokens.len() / 2,
        "8-symbol stream should compress: {} vs {}",
        g.total_size(),
        tokens.len()
    );
}
