//! One benchmark per evaluation workload: the Figure 1 parameter grid,
//! the Table 4/5 per-method detection runs, and the Figure 9 case study.
//!
//! These are *workload* benchmarks: each measures the wall-clock cost of
//! regenerating one table/figure cell at reduced but representative scale,
//! so regressions in any pipeline stage show up in the table they affect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use egi_bench::fixture_series;
use egi_core::{EnsembleConfig, EnsembleDetector, GiConfig, SingleGiDetector};
use egi_discord::{DiscordConfig, DiscordDetector};
use egi_sax::SaxConfig;
use egi_tskit::gen::power::{dishwasher_series, fridge_freezer_series};
use egi_tskit::gen::UcrFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 1: full (w, a) grid of single runs on a dishwasher trace.
fn bench_fig1_param_grid(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let profile = dishwasher_series(14, Some(7), &mut rng);
    let window = profile.values.len() / 14;
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("fig1_param_grid", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in 2..=10usize {
                for a in 2..=10usize {
                    let det = SingleGiDetector::new(GiConfig {
                        window,
                        sax: SaxConfig::new(w.min(window), a),
                    });
                    total += det.detect(black_box(&profile.values), 3).anomalies.len();
                }
            }
            total
        })
    });
    group.finish();
}

/// Table 4/5: each compared method on one GunPoint series.
fn bench_table4_methods(c: &mut Criterion) {
    let ls = fixture_series(UcrFamily::GunPoint, 11);
    let window = ls.gt_len;
    let mut group = c.benchmark_group("table4_accuracy");
    group.sample_size(10);

    group.bench_function("proposed_N25", |b| {
        let det = EnsembleDetector::new(EnsembleConfig {
            window,
            ensemble_size: 25,
            ..EnsembleConfig::default()
        });
        b.iter(|| det.detect(black_box(&ls.series), 3, 1))
    });
    group.bench_function("gi_fix", |b| {
        let det = SingleGiDetector::new(GiConfig::fixed(window));
        b.iter(|| det.detect(black_box(&ls.series), 3))
    });
    group.bench_function("gi_select", |b| {
        b.iter(|| {
            let cfg = egi_core::select_parameters(black_box(&ls.series), window, 10, 10, 0.1);
            SingleGiDetector::new(GiConfig { window, sax: cfg }).detect(&ls.series, 3)
        })
    });
    group.bench_function("discord_stomp", |b| {
        let det = DiscordDetector::new(DiscordConfig::new(window));
        b.iter(|| det.detect(black_box(&ls.series), 3))
    });
    group.finish();
}

/// Table 10/11 workload: ensemble cost as N grows.
fn bench_ensemble_size(c: &mut Criterion) {
    let ls = fixture_series(UcrFamily::Wafer, 3);
    let window = ls.gt_len;
    let mut group = c.benchmark_group("table10_ensemble_size");
    group.sample_size(10);
    for n in [5usize, 10, 25, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let det = EnsembleDetector::new(EnsembleConfig {
                window,
                ensemble_size: n,
                ..EnsembleConfig::default()
            });
            b.iter(|| det.detect(black_box(&ls.series), 3, 1))
        });
    }
    group.finish();
}

/// Figure 9: case-study detection on a (scaled-down) fridge-freezer trace.
fn bench_fig9_case_study(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let profile = fridge_freezer_series(60_000, 900, &mut rng);
    let mut group = c.benchmark_group("fig9_case_study");
    group.sample_size(10);
    group.bench_function("ensemble_60k_w900", |b| {
        let det = EnsembleDetector::new(EnsembleConfig {
            window: 900,
            ensemble_size: 25,
            ..EnsembleConfig::default()
        });
        b.iter(|| det.detect(black_box(&profile.values), 2, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1_param_grid,
    bench_table4_methods,
    bench_ensemble_size,
    bench_fig9_case_study
);
criterion_main!(benches);
