//! Design-choice ablations called out in DESIGN.md:
//!
//! * `ablation_fastpaa` — prefix-sum FastPAA (Algorithm 2) vs naive
//!   per-window z-normalize + PAA.
//! * `ablation_multires` — merged-breakpoint multi-resolution SAX vs one
//!   breakpoint table per alphabet size (Section 6.2).
//! * `ablation_matrix_profile` — STOMP vs STAMP vs brute force.
//! * `ablation_numerosity` — Sequitur on numerosity-reduced vs raw token
//!   streams (Section 4.2's scalability claim).
//! * `ablation_combiner` — median vs mean vs min ensemble combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use egi_bench::fixture_ecg;
use egi_core::{Combiner, EnsembleConfig, EnsembleDetector};
use egi_sax::{
    discretize_series, discretize_series_naive, numerosity_reduce, BreakpointTable, FastSax,
    MultiResBreakpoints, SaxConfig,
};
use egi_sequitur::Sequitur;

fn bench_fastpaa(c: &mut Criterion) {
    let series = fixture_ecg(20_000, 4);
    let n = 256;
    let cfg = SaxConfig::new(8, 6);
    let mut group = c.benchmark_group("ablation_fastpaa");
    group.sample_size(10);
    group.bench_function("fast_prefix_sum", |b| {
        let multi = MultiResBreakpoints::new(10);
        b.iter(|| {
            let fast = FastSax::new(black_box(&series));
            discretize_series(&fast, n, cfg, &multi)
        })
    });
    group.bench_function("naive_per_window", |b| {
        b.iter(|| discretize_series_naive(black_box(&series), n, cfg))
    });
    group.finish();
}

fn bench_multires(c: &mut Criterion) {
    let series = fixture_ecg(10_000, 4);
    let n = 128;
    let w = 6;
    let alphabets: Vec<usize> = (2..=10).collect();
    let mut group = c.benchmark_group("ablation_multires");
    group.sample_size(10);

    // The ensemble's access pattern: for one window, symbols under *all*
    // alphabet sizes. Merged table: one PAA pass + one binary search per
    // coefficient, whose column yields every resolution at once.
    group.bench_function("merged_table", |b| {
        let fast = FastSax::new(&series);
        let multi = MultiResBreakpoints::new(10);
        let mut coeffs = vec![0.0; w];
        b.iter(|| {
            let mut total = 0usize;
            for start in 0..series.len() - n {
                fast.paa_znorm_into(start, n, &mut coeffs);
                for &cst in &coeffs {
                    let col = multi.column(cst);
                    for &a in &alphabets {
                        total += col.symbol(a) as usize;
                    }
                }
            }
            total
        })
    });
    // Per-resolution: same PAA pass, but one breakpoint search per
    // alphabet size per coefficient.
    group.bench_function("per_resolution_tables", |b| {
        let fast = FastSax::new(&series);
        let tables: Vec<BreakpointTable> =
            alphabets.iter().map(|&a| BreakpointTable::new(a)).collect();
        let mut coeffs = vec![0.0; w];
        b.iter(|| {
            let mut total = 0usize;
            for start in 0..series.len() - n {
                fast.paa_znorm_into(start, n, &mut coeffs);
                for &cst in &coeffs {
                    for t in &tables {
                        total += t.symbol(cst) as usize;
                    }
                }
            }
            total
        })
    });
    group.finish();
}

fn bench_matrix_profile(c: &mut Criterion) {
    let series = fixture_ecg(3_000, 4);
    let m = 100;
    let mut group = c.benchmark_group("ablation_matrix_profile");
    group.sample_size(10);
    group.bench_function("stomp", |b| {
        b.iter(|| egi_discord::stomp(black_box(&series), m))
    });
    group.bench_function("stamp", |b| {
        b.iter(|| egi_discord::stamp(black_box(&series), m))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| egi_discord::brute::brute_force(black_box(&series), m, m / 2))
    });
    group.finish();
}

fn bench_numerosity(c: &mut Criterion) {
    let series = fixture_ecg(20_000, 4);
    let n = 256;
    let cfg = SaxConfig::new(6, 5);
    let fast = FastSax::new(&series);
    let multi = MultiResBreakpoints::new(10);

    // Raw word stream (no numerosity reduction) vs the reduced stream.
    let mut scratch = Vec::new();
    let raw_words: Vec<egi_sax::SaxWord> = (0..series.len() - n + 1)
        .map(|s| fast.word_multires(s, n, cfg, &multi, &mut scratch))
        .collect();
    let reduced = numerosity_reduce(raw_words.clone(), n);
    eprintln!(
        "numerosity reduction: {} raw tokens → {} reduced",
        raw_words.len(),
        reduced.len()
    );

    let intern = |words: &[egi_sax::SaxWord]| -> Vec<u32> {
        let mut table = std::collections::HashMap::new();
        words
            .iter()
            .map(|w| {
                let next = table.len() as u32;
                *table.entry(w.clone()).or_insert(next)
            })
            .collect()
    };
    let raw_tokens = intern(&raw_words);
    let reduced_tokens: Vec<u32> = intern(
        &reduced
            .tokens
            .iter()
            .map(|t| t.word.clone())
            .collect::<Vec<_>>(),
    );

    let mut group = c.benchmark_group("ablation_numerosity");
    group.sample_size(10);
    group.bench_function("sequitur_with_reduction", |b| {
        b.iter(|| {
            let mut s = Sequitur::new();
            for &t in black_box(&reduced_tokens) {
                s.push(t);
            }
            s.into_grammar().rule_count()
        })
    });
    group.bench_function("sequitur_without_reduction", |b| {
        b.iter(|| {
            let mut s = Sequitur::new();
            for &t in black_box(&raw_tokens) {
                s.push(t);
            }
            s.into_grammar().rule_count()
        })
    });
    group.finish();
}

fn bench_combiner(c: &mut Criterion) {
    let series = fixture_ecg(8_000, 4);
    let mut group = c.benchmark_group("ablation_combiner");
    group.sample_size(10);
    for (name, combiner) in [
        ("median", Combiner::Median),
        ("mean", Combiner::Mean),
        ("min", Combiner::Min),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &combiner, |b, &comb| {
            let det = EnsembleDetector::new(EnsembleConfig {
                window: 256,
                ensemble_size: 20,
                combiner: comb,
                ..EnsembleConfig::default()
            });
            b.iter(|| det.detect(black_box(&series), 3, 1))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fastpaa,
    bench_multires,
    bench_matrix_profile,
    bench_numerosity,
    bench_combiner
);
criterion_main!(benches);
