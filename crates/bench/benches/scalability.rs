//! Figure 8: computation time vs. series length, ensemble grammar
//! induction (linear) vs. STOMP (quadratic).
//!
//! Criterion gives the per-length timings whose growth curves are the
//! figure; the `experiments fig8` binary prints the same series with
//! explicit wall-clock numbers and speedups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use egi_bench::{fixture_ecg, fixture_walk};
use egi_core::{EnsembleConfig, EnsembleDetector};
use egi_discord::stomp;

const WINDOW: usize = 300;

fn bench_fig8_ensemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ensemble");
    group.sample_size(10);
    for len in [5_000usize, 10_000, 20_000, 40_000] {
        let series = fixture_ecg(len, 8);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("ecg", len), &series, |b, s| {
            let det = EnsembleDetector::new(EnsembleConfig {
                window: WINDOW,
                ensemble_size: 25,
                ..EnsembleConfig::default()
            });
            b.iter(|| det.detect(black_box(s), 3, 1))
        });
    }
    for len in [5_000usize, 10_000, 20_000, 40_000] {
        let series = fixture_walk(len, 8);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("rw", len), &series, |b, s| {
            let det = EnsembleDetector::new(EnsembleConfig {
                window: WINDOW,
                ensemble_size: 25,
                ..EnsembleConfig::default()
            });
            b.iter(|| det.detect(black_box(s), 3, 1))
        });
    }
    group.finish();
}

fn bench_fig8_stomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_stomp");
    group.sample_size(10);
    // Quadratic baseline: keep lengths modest so the suite terminates.
    for len in [2_500usize, 5_000, 10_000] {
        let series = fixture_ecg(len, 8);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("ecg", len), &series, |b, s| {
            b.iter(|| stomp(black_box(s), WINDOW))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8_ensemble, bench_fig8_stomp);
criterion_main!(benches);
