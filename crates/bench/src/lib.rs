//! # egi-bench — benchmark support
//!
//! The actual benchmarks live in `benches/` (Criterion, `harness = false`):
//!
//! * `tables` — one benchmark per evaluation table/figure workload
//!   (Figure 1 grid, Table 4 per-method runs, Figure 9 case study).
//! * `scalability` — Figure 8: ensemble vs STOMP across series lengths.
//! * `ablations` — design-choice ablations from DESIGN.md: FastPAA vs
//!   naive PAA, multi-resolution vs per-resolution SAX, STOMP vs STAMP vs
//!   brute force, numerosity reduction on/off, median vs mean vs min
//!   combiner.
//!
//! This library only hosts shared fixture builders so the three bench
//! binaries don't repeat corpus construction.

#![warn(missing_docs)]

use egi_tskit::corpus::{CorpusSpec, LabeledSeries};
use egi_tskit::gen::UcrFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One deterministic labeled series for `family`.
pub fn fixture_series(family: UcrFamily, seed: u64) -> LabeledSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    CorpusSpec::paper(family).generate_one(&mut rng)
}

/// A deterministic ECG-like trace of `len` points (scalability workload).
pub fn fixture_ecg(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    egi_tskit::gen::ecg_series(len, 256, 0.02, &mut rng)
}

/// A deterministic random walk of `len` points.
pub fn fixture_walk(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    egi_tskit::gen::random_walk(len, 1.0, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = fixture_series(UcrFamily::GunPoint, 1);
        let b = fixture_series(UcrFamily::GunPoint, 1);
        assert_eq!(a.series, b.series);
        assert_eq!(fixture_ecg(1000, 2), fixture_ecg(1000, 2));
        assert_eq!(fixture_walk(1000, 3), fixture_walk(1000, 3));
    }
}
