//! Perf baseline for the discord fast paths and the ensemble runtime.
//!
//! Times, on deterministic fixtures:
//!
//! * **MASS** — per-query FFT (`mass_self`) vs shared-spectrum
//!   (`MassPrecomputed`), over a fixed query subset;
//! * **STAMP** — full run, naive per-query-FFT path vs shared-spectrum
//!   path (the ≥ 2× acceptance gate of the shared-spectrum work);
//! * **STOMP** — diagonal-parallel kernel across worker counts;
//! * **Anytime STAMP** — convergence trajectory: wall-clock and
//!   fraction-of-profile-settled at query budgets from 5% to 100%
//!   (finished run asserted bit-identical to `stamp_with_exclusion`);
//! * **Parallel STAMP** — `AnytimeStamp::finish_parallel` across worker
//!   counts (each asserted bit-identical to the sequential profile);
//! * **Streaming** — `StreamingDiscordMonitor`: append throughput and
//!   per-append refresh latency at several chunk sizes, streaming the
//!   second half of the fixture (caught-up profile asserted
//!   bit-identical to batch STAMP);
//! * **Eviction** — `StreamingDiscordMonitor` in sliding-window steady
//!   state: append a chunk, evict a chunk (live window pinned), refresh
//!   — per-evict latency and sustained append+evict+refresh throughput
//!   at several chunk sizes (finished profile asserted bit-identical to
//!   batch STAMP over the surviving suffix);
//! * **Segmented backend** — the same unbounded-stream schedule run
//!   once per `MassBackend` (`Exact` vs `Segmented`): append throughput
//!   and per-append refresh latency per chunk size, with the segmented
//!   finish asserted within the ≤1e-9 parity budget of batch STAMP
//!   (distance or squared distance, see `profile_close`) and early/late
//!   per-append costs recorded so append-cost growth is visible;
//! * **Streaming ensemble** — `StreamingEnsembleDetector`: append
//!   throughput and per-append member-refresh latency at several chunk
//!   sizes, streaming the second half of the fixture (finished report
//!   asserted bit-identical to batch `EnsembleDetector::detect`);
//! * **Serve fleet** — the `egi-serve` runtime at 10 / 100 / 1,000
//!   concurrent streams: per-tick ingest-coalesce + fair-share refresh
//!   latency (mean and p99) and sustained fleet-wide points/s, with
//!   every stream's catch-up profile asserted bit-identical to batch
//!   STAMP over its own series;
//! * **Checkpoint** — the snapshot/restore subsystem: checkpoint size
//!   and save/load latency for one mid-stream session per kind (monitor
//!   on both MASS backends, streaming ensemble, 100-stream fleet), with
//!   every reload asserted onto the bit-identical finish of the session
//!   it was saved from;
//! * **Ensemble** — `EnsembleDetector::detect`, serial vs parallel.
//! * **Observability overhead** — the streaming schedule run
//!   instrumented vs bare (`egi_obs::set_enabled(false)`), interleaved
//!   min-of-N with alternating arm order, gated at < 3%
//!   sustained-throughput overhead with both
//!   arms bit-identical to batch STAMP; the suite-wide `egi-obs`
//!   registry dump is embedded under the `"obs"` key.
//!
//! Writes `BENCH_discord.json` into the current directory (override with
//! the first CLI argument) so successive PRs accumulate a perf
//! trajectory. Pass `--quick` for a fast smoke run at reduced sizes.

use std::time::Instant;

use egi_bench::fixture_ecg;
use egi_core::{EnsembleConfig, EnsembleDetector, StreamingEnsembleDetector};
use egi_discord::anytime::AnytimeStamp;
use egi_discord::dist::WindowStats;
use egi_discord::mass::{mass_self, MassPrecomputed, MassScratch};
use egi_discord::mass_seg::MassBackend;
use egi_discord::stamp::{stamp_per_query_fft, stamp_with_exclusion};
use egi_discord::stomp::stomp_with_exclusion;
use egi_discord::streaming::{StreamingDiscordMonitor, DEFAULT_MONITOR_SEED};
use egi_serve::Fleet;
use egi_tskit::checkpoint::Checkpoint;
use egi_tskit::Deadline;

fn seconds<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// The segmented backend's ≤1e-9 parity budget, in distance or squared
/// distance: `d = √(2m(1 − corr))` amplifies correlation round-off
/// without bound as `d → 0`, while `d²` is linear in it, so near-zero
/// entries compare in the squared domain. Equality first covers `+∞`
/// entries (no admissible neighbor), where the subtraction is NaN.
const SEGMENTED_TOL: f64 = 1e-9;
fn profile_close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= SEGMENTED_TOL || (a * a - b * b).abs() <= SEGMENTED_TOL
}

/// Faithful re-creation of the pre-PR FFT path — full complex buffers,
/// per-call trigonometric recurrence (no cached plan), convolution with
/// the reversed query sized `next_pow2(m + n − 1)` — so the recorded
/// baseline stays the true seed wall-clock even as the library paths
/// improve.
mod seed_baseline {
    type Complex = (f64, f64);

    fn c_mul(a: Complex, b: Complex) -> Complex {
        (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
    }

    fn fft_in_place(buf: &mut [Complex], inverse: bool) {
        let n = buf.len();
        if n <= 1 {
            return;
        }
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                buf.swap(i, j);
            }
        }
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut len = 2;
        while len <= n {
            let ang = sign * std::f64::consts::TAU / len as f64;
            let wlen = (ang.cos(), ang.sin());
            let mut i = 0;
            while i < n {
                let mut w: Complex = (1.0, 0.0);
                for k in 0..len / 2 {
                    let u = buf[i + k];
                    let v = c_mul(buf[i + k + len / 2], w);
                    buf[i + k] = (u.0 + v.0, u.1 + v.1);
                    buf[i + k + len / 2] = (u.0 - v.0, u.1 - v.1);
                    w = c_mul(w, wlen);
                }
                i += len;
            }
            len <<= 1;
        }
    }

    pub fn sliding_dot_products(query: &[f64], series: &[f64]) -> Vec<f64> {
        let m = query.len();
        let n = series.len();
        let out_len = m + n - 1;
        let size = out_len.next_power_of_two();
        let mut fa: Vec<Complex> = query.iter().rev().map(|&x| (x, 0.0)).collect();
        let mut fb: Vec<Complex> = series.iter().map(|&x| (x, 0.0)).collect();
        fa.resize(size, (0.0, 0.0));
        fb.resize(size, (0.0, 0.0));
        fft_in_place(&mut fa, false);
        fft_in_place(&mut fb, false);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = c_mul(*x, *y);
        }
        fft_in_place(&mut fa, true);
        let scale = 1.0 / size as f64;
        (m - 1..n).map(|i| fa[i].0 * scale).collect()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_discord.json".to_string());

    let (series_len, m, mass_queries) = if quick {
        (4_000, 64, 50)
    } else {
        (20_000, 256, 200)
    };
    let series = fixture_ecg(series_len, 8);
    let exclusion = m / 2;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!("fixture: ECG {series_len} points, m={m}, {cores} cores");

    // MASS: K queries — seed path, improved per-query path, shared
    // spectrum.
    let ws = WindowStats::new(&series, m);
    let count = ws.count();
    let stride = (count / mass_queries).max(1);
    let queries: Vec<usize> = (0..count).step_by(stride).take(mass_queries).collect();
    let (mass_seed_secs, seed_sum) = seconds(|| {
        let mut acc = 0.0;
        for &q in &queries {
            let dots = seed_baseline::sliding_dot_products(&series[q..q + m], &series);
            acc += dots
                .iter()
                .enumerate()
                .map(|(j, &qt)| ws.dist(q, j, qt))
                .sum::<f64>();
        }
        acc
    });
    let (mass_naive_secs, naive_sum) = seconds(|| {
        let mut acc = 0.0;
        for &q in &queries {
            acc += mass_self(&series, q, &ws).iter().sum::<f64>();
        }
        acc
    });
    let (mass_pre_secs, pre_sum) = seconds(|| {
        let pre = MassPrecomputed::new(&series, m);
        let mut scratch = MassScratch::default();
        let mut dp = Vec::new();
        let mut acc = 0.0;
        for &q in &queries {
            pre.distance_profile_into(q, &mut scratch, &mut dp);
            acc += dp.iter().sum::<f64>();
        }
        acc
    });
    assert!(
        (naive_sum - pre_sum).abs() < 1e-4 * (1.0 + naive_sum.abs()),
        "MASS paths disagree: {naive_sum} vs {pre_sum}"
    );
    assert!(
        (seed_sum - pre_sum).abs() < 1e-4 * (1.0 + seed_sum.abs()),
        "MASS seed path disagrees: {seed_sum} vs {pre_sum}"
    );
    eprintln!(
        "MASS   {} queries: seed {mass_seed_secs:.3}s, per-query rfft {mass_naive_secs:.3}s, \
         shared-spectrum {mass_pre_secs:.3}s ({:.2}x vs seed)",
        queries.len(),
        mass_seed_secs / mass_pre_secs
    );

    // STAMP: full matrix profile. The seed-path run is extrapolated from
    // the per-query MASS timing above (the full seed run at 20k points
    // takes ~2 minutes and measures the identical inner loop), unless
    // --full-seed is passed.
    let full_seed = std::env::args().any(|a| a == "--full-seed");
    let stamp_seed_secs = if full_seed {
        let (secs, _) = seconds(|| {
            let mut profile = vec![f64::INFINITY; count];
            for q in 0..count {
                let dots = seed_baseline::sliding_dot_products(&series[q..q + m], &series);
                for (j, &qt) in dots.iter().enumerate() {
                    if q.abs_diff(j) <= exclusion {
                        continue;
                    }
                    let d = ws.dist(q, j, qt);
                    if d < profile[q] {
                        profile[q] = d;
                    }
                    if d < profile[j] {
                        profile[j] = d;
                    }
                }
            }
            profile
        });
        secs
    } else {
        mass_seed_secs / queries.len() as f64 * count as f64
    };
    let (stamp_naive_secs, naive_mp) = seconds(|| stamp_per_query_fft(&series, m, exclusion));
    let (stamp_fast_secs, fast_mp) = seconds(|| stamp_with_exclusion(&series, m, exclusion));
    let max_dev = naive_mp
        .profile
        .iter()
        .zip(&fast_mp.profile)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 1e-6, "STAMP paths deviate by {max_dev}");
    eprintln!(
        "STAMP  full: seed {stamp_seed_secs:.3}s{}, per-query rfft {stamp_naive_secs:.3}s, \
         shared-spectrum {stamp_fast_secs:.3}s ({:.2}x vs seed, {:.2}x vs rfft)",
        if full_seed { "" } else { " (extrapolated)" },
        stamp_seed_secs / stamp_fast_secs,
        stamp_naive_secs / stamp_fast_secs
    );

    // STOMP: diagonal kernel across worker counts.
    let mut stomp_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (secs, mp) = seconds(|| pool.install(|| stomp_with_exclusion(&series, m, exclusion)));
        assert_eq!(mp.len(), count);
        eprintln!("STOMP  {threads} worker(s): {secs:.3}s");
        stomp_rows.push(format!(
            "    {{ \"threads\": {threads}, \"secs\": {secs:.6} }}"
        ));
    }

    // Anytime STAMP: convergence trajectory. Queries run in the seeded
    // random order; at each budget we record cumulative query-processing
    // wall-clock (snapshot clones excluded from the timer) and
    // (post-hoc, against the finished profile) the fraction of entries
    // already settled to final.
    let anytime_seed = 0xA17u64;
    let settle_tol = 1e-6f64;
    let fractions = [0.05f64, 0.10, 0.25, 0.50, 1.00];
    let mut driver = AnytimeStamp::with_seed(&series, m, exclusion, anytime_seed);
    let mut snapshots = Vec::new();
    let mut anytime_secs = 0.0;
    for &frac in &fractions {
        let target = ((count as f64) * frac).round() as usize;
        let (secs, _) = seconds(|| driver.run_for(target.saturating_sub(driver.processed())));
        anytime_secs += secs;
        snapshots.push((frac, driver.processed(), anytime_secs, driver.snapshot()));
    }
    let anytime_final = driver.finish();
    assert_eq!(
        anytime_final.profile, fast_mp.profile,
        "anytime STAMP profile deviates from sequential STAMP"
    );
    assert_eq!(
        anytime_final.index, fast_mp.index,
        "anytime STAMP index deviates from sequential STAMP"
    );
    let mut anytime_rows = Vec::new();
    for (frac, queries, secs, snap) in &snapshots {
        let settled = snap
            .profile
            .iter()
            .zip(&anytime_final.profile)
            .filter(|(partial, full)| (**partial - **full).abs() < settle_tol)
            .count();
        let settled_frac = settled as f64 / count as f64;
        eprintln!(
            "ANYTIME {:>3.0}% of queries ({queries}): {secs:.3}s, {:.1}% of profile settled",
            frac * 100.0,
            settled_frac * 100.0
        );
        anytime_rows.push(format!(
            "    {{ \"fraction\": {frac}, \"queries\": {queries}, \"secs\": {secs:.6}, \
             \"settled_frac\": {settled_frac:.4} }}"
        ));
    }

    // Parallel STAMP: batch mode across worker counts, each run pinned
    // bit-identical to the sequential profile.
    let mut pstamp_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (secs, mp) = seconds(|| {
            pool.install(|| {
                AnytimeStamp::with_seed(&series, m, exclusion, anytime_seed).finish_parallel()
            })
        });
        assert_eq!(
            mp.profile, fast_mp.profile,
            "parallel STAMP ({threads} workers) deviates from sequential"
        );
        assert_eq!(mp.index, fast_mp.index);
        eprintln!("PSTAMP {threads} worker(s): {secs:.3}s");
        pstamp_rows.push(format!(
            "    {{ \"threads\": {threads}, \"secs\": {secs:.6} }}"
        ));
    }

    // Streaming monitor: append throughput and per-append refresh
    // latency at several chunk sizes. Each run warms up on the first
    // half of the fixture, streams the second half in chunks (append +
    // refresh of exactly the new windows), then catches up; the caught-
    // up profile is asserted bit-identical to batch STAMP, so the CI
    // perf smoke fails on any streaming/batch divergence.
    let stream_chunks: [usize; 3] = if quick {
        [32, 128, 512]
    } else {
        [64, 256, 1024]
    };
    let warm = series_len / 2;
    let mut streaming_rows = Vec::new();
    for &chunk in &stream_chunks {
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exclusion);
        monitor.append(&series[..warm]);
        let (warm_secs, _) = seconds(|| monitor.run_for(usize::MAX));
        let mut append_secs = 0.0f64;
        let mut appends = 0usize;
        let (mut refresh_total, mut refresh_max) = (0.0f64, 0.0f64);
        for part in series[warm..].chunks(chunk) {
            let (a, ()) = seconds(|| monitor.append(part));
            append_secs += a;
            appends += 1;
            let (r, ran) = seconds(|| monitor.run_for(part.len()));
            assert_eq!(ran, part.len(), "fresh windows must be first in the queue");
            refresh_total += r;
            refresh_max = refresh_max.max(r);
        }
        let (catchup_secs, finished) = seconds(|| monitor.finish());
        assert_eq!(
            finished.profile, fast_mp.profile,
            "streaming monitor (chunk {chunk}) deviates from batch STAMP"
        );
        assert_eq!(finished.index, fast_mp.index);
        let streamed = series_len - warm;
        let points_per_sec = streamed as f64 / (append_secs + refresh_total);
        let refresh_mean = refresh_total / appends as f64;
        eprintln!(
            "STREAM chunk {chunk:>4}: {appends} appends, append {append_secs:.3}s, \
             refresh mean {refresh_mean:.4}s / max {refresh_max:.4}s, \
             {points_per_sec:.0} pts/s sustained, catch-up {catchup_secs:.3}s"
        );
        streaming_rows.push(format!(
            "    {{ \"chunk\": {chunk}, \"appends\": {appends}, \"warmup_secs\": {warm_secs:.6}, \
             \"append_secs\": {append_secs:.6}, \"refresh_mean_secs\": {refresh_mean:.6}, \
             \"refresh_max_secs\": {refresh_max:.6}, \"points_per_sec\": {points_per_sec:.1}, \
             \"catchup_secs\": {catchup_secs:.6} }}"
        ));
    }

    // Observability overhead: the instrumented-vs-bare row. The same
    // streaming schedule (middle chunk size) runs alternately with
    // observability disabled via `egi_obs::set_enabled(false)` (bare —
    // span timers stop reading the clock, which is the only per-unit
    // cost the instrumentation adds) and enabled (instrumented, the
    // default every other section runs under). Interleaved min-of-N
    // per arm with the arm order alternating each rep — a fixed order
    // would let any sustained slowdown across a rep (shared-box load,
    // frequency decay) land entirely on the second arm and read as
    // fake overhead. The gate asserts the sustained-throughput
    // overhead stays under 3% and both arms' finished profiles are
    // bit-identical to batch STAMP — instrumentation never touches
    // the f64 path, so parity must hold by construction.
    let obs_chunk = stream_chunks[1];
    let obs_reps = if quick { 3usize } else { 5usize };
    let run_streaming_schedule = |chunk: usize| {
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exclusion);
        monitor.append(&series[..warm]);
        monitor.run_for(usize::MAX);
        let start = Instant::now();
        for part in series[warm..].chunks(chunk) {
            monitor.append(part);
            monitor.run_for(part.len());
        }
        (start.elapsed().as_secs_f64(), monitor.finish())
    };
    let (mut bare_min, mut instr_min) = (f64::INFINITY, f64::INFINITY);
    let (mut bare_finish, mut instr_finish) = (None, None);
    for rep in 0..obs_reps {
        for arm in 0..2 {
            // rep 0: bare, instrumented; rep 1: instrumented, bare; …
            if (rep + arm) % 2 == 0 {
                egi_obs::set_enabled(false);
                let (secs, finished) = run_streaming_schedule(obs_chunk);
                bare_min = bare_min.min(secs);
                bare_finish = Some(finished);
            } else {
                egi_obs::set_enabled(true);
                let (secs, finished) = run_streaming_schedule(obs_chunk);
                instr_min = instr_min.min(secs);
                instr_finish = Some(finished);
            }
        }
    }
    egi_obs::set_enabled(true);
    let (bare_finish, instr_finish) = (bare_finish.unwrap(), instr_finish.unwrap());
    assert_eq!(
        instr_finish.profile, bare_finish.profile,
        "instrumented and bare runs must be bit-identical"
    );
    assert_eq!(instr_finish.index, bare_finish.index);
    assert_eq!(
        instr_finish.profile, fast_mp.profile,
        "bit-parity gate must hold with instrumentation enabled"
    );
    let obs_overhead_frac = instr_min / bare_min - 1.0;
    assert!(
        obs_overhead_frac < 0.03,
        "observability overhead {:.2}% exceeds the 3% budget \
         (bare {bare_min:.4}s, instrumented {instr_min:.4}s)",
        obs_overhead_frac * 100.0
    );
    eprintln!(
        "OBS    chunk {obs_chunk:>4}: bare {bare_min:.3}s, instrumented {instr_min:.3}s, \
         overhead {:.2}% (min of {obs_reps} interleaved)",
        obs_overhead_frac * 100.0
    );

    // Eviction: sliding-window steady state. Warm the monitor to
    // `retain` points, then stream the rest of the fixture as
    // append-chunk / evict-chunk / refresh cycles — the live window
    // stays pinned at `retain`, so `evict_*` measures the front-
    // truncation re-transform (the dominant eviction cost) at a fixed
    // padded size, and `points_per_sec` is the sustained bounded-memory
    // ingest rate. The finished profile is asserted bit-identical to
    // batch STAMP over the surviving suffix (the PR 5 suffix-parity
    // contract), so the CI perf smoke fails on any eviction/batch
    // divergence.
    let retain = series_len / 4;
    let evict_reference = stamp_with_exclusion(&series[series_len - retain..], m, exclusion);
    let mut eviction_rows = Vec::new();
    for &chunk in &stream_chunks {
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exclusion);
        monitor.append(&series[..retain]);
        let (warm_secs, _) = seconds(|| monitor.run_for(usize::MAX));
        let mut append_secs = 0.0f64;
        let mut refresh_secs = 0.0f64;
        let (mut evict_total, mut evict_max) = (0.0f64, 0.0f64);
        let mut cycles = 0usize;
        for part in series[retain..].chunks(chunk) {
            let (a, ()) = seconds(|| monitor.append(part));
            let (e, evicted) = seconds(|| monitor.evict(part.len()));
            evicted.expect("steady-state eviction keeps at least one window");
            let (f, _) = seconds(|| monitor.run_for(part.len()));
            append_secs += a;
            evict_total += e;
            evict_max = evict_max.max(e);
            refresh_secs += f;
            cycles += 1;
            assert_eq!(monitor.series_len(), retain, "live window must stay pinned");
        }
        let (evict_finish_secs, finished) = seconds(|| monitor.finish());
        assert_eq!(
            finished.profile, evict_reference.profile,
            "eviction steady state (chunk {chunk}) deviates from suffix batch STAMP"
        );
        assert_eq!(finished.index, evict_reference.index);
        assert_eq!(monitor.stream_offset(), series_len - retain);
        let streamed = series_len - retain;
        let points_per_sec = streamed as f64 / (append_secs + evict_total + refresh_secs);
        let evict_mean = evict_total / cycles as f64;
        eprintln!(
            "EVICT  chunk {chunk:>4}: {cycles} cycles at window {retain}, \
             evict mean {evict_mean:.4}s / max {evict_max:.4}s, \
             {points_per_sec:.0} pts/s sustained, catch-up {evict_finish_secs:.3}s"
        );
        eviction_rows.push(format!(
            "    {{ \"chunk\": {chunk}, \"cycles\": {cycles}, \"warmup_secs\": {warm_secs:.6}, \
             \"append_secs\": {append_secs:.6}, \"evict_mean_secs\": {evict_mean:.6}, \
             \"evict_max_secs\": {evict_max:.6}, \"refresh_secs\": {refresh_secs:.6}, \
             \"points_per_sec\": {points_per_sec:.1}, \"catchup_secs\": {evict_finish_secs:.6} }}"
        ));
    }

    // Segmented backend: the versioned parity contract measured end to
    // end. The same unbounded-stream schedule as the streaming section
    // (warm on the first half, stream the second half in chunks,
    // refresh exactly the fresh windows per append) runs once per
    // `MassBackend`. The Exact run's finish is asserted bit-identical
    // to batch STAMP (the oracle must stay the oracle through the
    // backend plumbing); the Segmented run's finish is asserted within
    // the ≤1e-9 parity budget of the same batch profile — so the CI
    // perf smoke fails on any contract violation. Early/late per-append
    // costs are recorded separately because that is the whole point of
    // the segmented backend: the Exact path re-transforms the entire
    // series on every append (an O(S log S) tax that grows with the
    // stream), while the segmented path only transforms the tail
    // block(s) (flat in S).
    let mut segmented_rows = Vec::new();
    for &chunk in &stream_chunks {
        let mut exact_pps = f64::NAN;
        for backend in [MassBackend::Exact, MassBackend::Segmented] {
            let mut monitor =
                StreamingDiscordMonitor::with_backend(m, exclusion, DEFAULT_MONITOR_SEED, backend);
            monitor.append(&series[..warm]);
            let (warm_secs, _) = seconds(|| monitor.run_for(usize::MAX));
            let mut append_times = Vec::new();
            let mut refresh_times = Vec::new();
            for part in series[warm..].chunks(chunk) {
                let (a, ()) = seconds(|| monitor.append(part));
                append_times.push(a);
                let (r, ran) = seconds(|| monitor.run_for(part.len()));
                assert_eq!(ran, part.len(), "fresh windows must be first in the queue");
                refresh_times.push(r);
            }
            let (catchup_secs, finished) = seconds(|| monitor.finish());
            let mut max_dev = 0.0f64;
            match backend {
                MassBackend::Exact => {
                    assert_eq!(
                        finished.profile, fast_mp.profile,
                        "exact backend (chunk {chunk}) deviates from batch STAMP"
                    );
                    assert_eq!(finished.index, fast_mp.index);
                }
                MassBackend::Segmented => {
                    for (i, (&s, &e)) in finished.profile.iter().zip(&fast_mp.profile).enumerate() {
                        assert!(
                            profile_close(s, e),
                            "segmented backend (chunk {chunk}) breaks the 1e-9 \
                             parity contract at entry {i}: {s} vs {e}"
                        );
                        if s.is_finite() && e.is_finite() {
                            max_dev = max_dev.max((s - e).abs().min((s * s - e * e).abs()));
                        }
                    }
                }
            }
            let appends = append_times.len();
            let append_secs: f64 = append_times.iter().sum();
            let refresh_total: f64 = refresh_times.iter().sum();
            let refresh_max = refresh_times.iter().fold(0.0f64, |a, &b| a.max(b));
            let refresh_mean = refresh_total / appends as f64;
            let quarter = (appends / 4).max(1);
            let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len() as f64;
            let append_early = mean(&append_times[..quarter]);
            let append_late = mean(&append_times[appends - quarter..]);
            let streamed = series_len - warm;
            let points_per_sec = streamed as f64 / (append_secs + refresh_total);
            let label = match backend {
                MassBackend::Exact => "exact",
                MassBackend::Segmented => "segmented",
            };
            match backend {
                MassBackend::Exact => {
                    exact_pps = points_per_sec;
                    eprintln!(
                        "SEGBE  chunk {chunk:>4} {label:>9}: append/chunk early \
                         {append_early:.5}s -> late {append_late:.5}s, refresh mean \
                         {refresh_mean:.4}s, {points_per_sec:.0} pts/s sustained"
                    );
                }
                MassBackend::Segmented => {
                    eprintln!(
                        "SEGBE  chunk {chunk:>4} {label:>9}: append/chunk early \
                         {append_early:.5}s -> late {append_late:.5}s, refresh mean \
                         {refresh_mean:.4}s, {points_per_sec:.0} pts/s sustained \
                         ({:.2}x vs exact, max dev {max_dev:.2e})",
                        points_per_sec / exact_pps
                    );
                }
            }
            segmented_rows.push(format!(
                "    {{ \"chunk\": {chunk}, \"backend\": \"{label}\", \"appends\": {appends}, \
                 \"warmup_secs\": {warm_secs:.6}, \"append_secs\": {append_secs:.6}, \
                 \"append_early_mean_secs\": {append_early:.8}, \
                 \"append_late_mean_secs\": {append_late:.8}, \
                 \"refresh_mean_secs\": {refresh_mean:.6}, \"refresh_max_secs\": {refresh_max:.6}, \
                 \"points_per_sec\": {points_per_sec:.1}, \"catchup_secs\": {catchup_secs:.6}, \
                 \"max_profile_dev\": {max_dev:e} }}"
            ));
        }
    }

    // Streaming ensemble: append throughput and per-append refresh
    // latency of StreamingEnsembleDetector at several chunk sizes,
    // streaming the second half of the fixture. Each run's finished
    // report is asserted bit-identical to batch EnsembleDetector::detect
    // (scores, ranked indices, tie-breaks, curve), so the CI perf smoke
    // fails on any streaming/batch ensemble divergence. Refreshes are
    // served by the incremental density-delta path, so two extra gates
    // run in the same breath: a mid-stream parity assert (the
    // delta-maintained curves must equal from-scratch
    // `from_occurrences` rebuilds bit-for-bit — exactness, not time)
    // and a steady-state delta-vs-rebuild refresh-cost comparison (a
    // full-ensemble rebuild is exactly what the pre-delta refresh paid
    // per append; the full run gates the speedup at >= 5x).
    let (es_window, es_members) = if quick { (64, 8) } else { (256, 10) };
    let es_seed = 1u64;
    let es_config = EnsembleConfig {
        window: es_window,
        ensemble_size: es_members,
        ..EnsembleConfig::default()
    };
    let es_reference = EnsembleDetector::new(es_config).detect(&series, 3, es_seed);
    let mut es_rows = Vec::new();
    for &chunk in &stream_chunks {
        let deltas_before = egi_obs::counter!("egi_core_density_deltas_applied_total").get();
        let coverage_before =
            egi_obs::counter!("egi_core_density_delta_coverage_points_total").get();
        let equiv_before = egi_obs::counter!("egi_core_density_rebuild_equiv_points_total").get();
        let mut detector = StreamingEnsembleDetector::new(es_config, es_seed);
        detector.append(&series[..warm]);
        let (es_warm_secs, _) = seconds(|| detector.run_for(usize::MAX));
        let mut append_secs = 0.0f64;
        let mut appends = 0usize;
        let (mut refresh_total, mut refresh_max) = (0.0f64, 0.0f64);
        for (i, part) in series[warm..].chunks(chunk).enumerate() {
            let (a, ()) = seconds(|| detector.append(part));
            append_secs += a;
            appends += 1;
            // Per-append refresh: bring every member current again.
            let (r, ran) = seconds(|| detector.run_for(usize::MAX));
            assert_eq!(ran, es_members, "every member refreshes once per append");
            refresh_total += r;
            refresh_max = refresh_max.max(r);
            // In-run parity gate, off the timed path: sampled so the
            // oracle rebuild doesn't dominate the run.
            if i % 8 == 0 {
                assert!(
                    detector.delta_curves_match_rebuild(),
                    "delta curve diverged from rebuild mid-stream (chunk {chunk}, append {i})"
                );
            }
        }
        // Steady-state rebuild-equivalent cost: one from-scratch
        // rebuild of every member curve, with parity asserted by the
        // same call.
        let (rebuild_secs, parity) = seconds(|| detector.delta_curves_match_rebuild());
        assert!(
            parity,
            "delta curve diverged from rebuild at steady state (chunk {chunk})"
        );
        let (finish_secs, report) = seconds(|| detector.finish(3));
        assert_eq!(
            report, es_reference,
            "streaming ensemble (chunk {chunk}) deviates from batch detect"
        );
        let streamed = series_len - warm;
        let points_per_sec = streamed as f64 / (append_secs + refresh_total);
        let refresh_mean = refresh_total / appends as f64;
        // Refresh-throughput improvement vs. the pre-delta refresh,
        // which paid a full from-scratch rebuild per append *on top
        // of* the discretization + grammar pushes both paths share:
        // old ~= measured refresh + one rebuild, new = measured
        // refresh (the delta application inside it is a few
        // microseconds). Gated at the smallest chunk — the per-append
        // steady state the delta path exists for; large chunks
        // amortize the rebuild and converge toward 1x by design.
        let delta_speedup = (refresh_mean + rebuild_secs) / refresh_mean;
        if !quick && chunk == stream_chunks[0] {
            assert!(
                delta_speedup >= 5.0,
                "delta refresh only {delta_speedup:.2}x the rebuild-per-append refresh (chunk {chunk})"
            );
        }
        let deltas_applied =
            egi_obs::counter!("egi_core_density_deltas_applied_total").get() - deltas_before;
        let coverage_points = egi_obs::counter!("egi_core_density_delta_coverage_points_total")
            .get()
            - coverage_before;
        let equiv_points =
            egi_obs::counter!("egi_core_density_rebuild_equiv_points_total").get() - equiv_before;
        eprintln!(
            "ESTREAM chunk {chunk:>4}: {appends} appends, append {append_secs:.3}s, \
             refresh mean {refresh_mean:.4}s / max {refresh_max:.4}s, \
             {points_per_sec:.0} pts/s sustained, finish {finish_secs:.3}s, \
             delta {delta_speedup:.1}x vs rebuild ({coverage_points} coverage pts \
             vs {equiv_points} rebuild-equiv)"
        );
        es_rows.push(format!(
            "    {{ \"chunk\": {chunk}, \"appends\": {appends}, \"warmup_secs\": {es_warm_secs:.6}, \
             \"append_secs\": {append_secs:.6}, \"refresh_mean_secs\": {refresh_mean:.6}, \
             \"refresh_max_secs\": {refresh_max:.6}, \"points_per_sec\": {points_per_sec:.1}, \
             \"finish_secs\": {finish_secs:.6}, \"rebuild_equiv_secs\": {rebuild_secs:.6}, \
             \"delta_speedup\": {delta_speedup:.3}, \"deltas_applied\": {deltas_applied}, \
             \"delta_coverage_points\": {coverage_points}, \
             \"rebuild_equiv_points\": {equiv_points} }}"
        ));
    }

    // Serve fleet: the multi-stream runtime measured end to end at
    // 10 / 100 / 1,000 concurrent streams. Each stream is a distinct
    // deterministic series (phase-offset per stream id) behind the
    // Exact backend so per-stream parity stays bitwise. Per tick every
    // stream ingests one chunk through the coalescing front door, then
    // one flush + fair-share refresh spreads a budget of exactly the
    // fleet-wide pending queries across all dirty streams — so the
    // scheduler must hand every stream precisely its own share for the
    // fleet to come out clean (asserted). Recorded: per-tick
    // latency mean/p99 and sustained fleet-wide points/s; afterwards
    // every stream's catch-up profile is asserted bit-identical to
    // batch STAMP over its own series, so the CI perf smoke fails on
    // any fleet/standalone divergence.
    let (fleet_warm, fleet_chunk, fleet_ticks, fleet_m) = if quick {
        (96usize, 16usize, 4usize, 8usize)
    } else {
        (256, 32, 8, 16)
    };
    let serve_point = |id: u64, i: usize| {
        let t = i as f64;
        (t * 0.19 + id as f64 * 0.61).sin() * 1.2 + 0.4 * (t * 0.023 + id as f64 * 0.17).cos()
    };
    let mut serve_rows = Vec::new();
    for &n_streams in &[10u64, 100, 1_000] {
        let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
        let (ingest_warm_secs, ()) = seconds(|| {
            for id in 0..n_streams {
                let warm_series: Vec<f64> = (0..fleet_warm).map(|i| serve_point(id, i)).collect();
                let mut monitor = StreamingDiscordMonitor::with_exclusion(fleet_m, fleet_m / 2);
                monitor.append(&warm_series);
                fleet.create(id, monitor).unwrap();
            }
        });
        let (fleet_warm_secs, _) = seconds(|| fleet.refresh(Deadline::unbounded()));
        let mut tick_times = Vec::with_capacity(fleet_ticks);
        let mut ingest_secs = 0.0f64;
        let fresh_points = n_streams as usize * fleet_chunk;
        for t in 0..fleet_ticks {
            let base = fleet_warm + t * fleet_chunk;
            let (i_secs, ()) = seconds(|| {
                for id in 0..n_streams {
                    let chunk: Vec<f64> = (base..base + fleet_chunk)
                        .map(|i| serve_point(id, i))
                        .collect();
                    fleet.ingest(id, &chunk).unwrap();
                }
            });
            ingest_secs += i_secs;
            // One tick = flush every inbox (one coalesced append per
            // stream), then refresh with a budget of exactly the
            // fleet-wide pending queries — the Exact backend restarts
            // its fold per append, so that is the full window count,
            // and the fair-share rotation must drain every stream.
            let (t_secs, ()) = seconds(|| {
                let flushed = fleet.flush_all();
                assert_eq!(flushed, fresh_points, "one coalesced append per stream");
                let budget = fleet.pending_units();
                let ran = fleet.refresh(Deadline::queries(budget));
                assert_eq!(ran, budget, "refresh must consume the whole budget");
                assert_eq!(
                    fleet.dirty_count(),
                    0,
                    "fair share must hand every stream exactly its share"
                );
            });
            tick_times.push(t_secs);
        }
        let (serve_catchup_secs, reports) = seconds(|| fleet.finish_all());
        assert_eq!(reports.len(), n_streams as usize);
        let total = fleet_warm + fleet_ticks * fleet_chunk;
        for (id, profile) in &reports {
            let full: Vec<f64> = (0..total).map(|i| serve_point(*id, i)).collect();
            let reference = stamp_with_exclusion(&full, fleet_m, fleet_m / 2);
            assert_eq!(
                profile.profile, reference.profile,
                "fleet stream {id} deviates from standalone batch STAMP"
            );
            assert_eq!(profile.index, reference.index);
        }
        let mut sorted = tick_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tick_p99 =
            sorted[((sorted.len() as f64 * 0.99).ceil() as usize - 1).min(sorted.len() - 1)];
        let tick_mean = tick_times.iter().sum::<f64>() / tick_times.len() as f64;
        let streamed = fresh_points * fleet_ticks;
        let serve_pps = streamed as f64 / (ingest_secs + tick_times.iter().sum::<f64>());
        eprintln!(
            "SERVE  {n_streams:>5} streams: {fleet_ticks} ticks of {fleet_chunk} pts/stream, \
             tick mean {tick_mean:.4}s / p99 {tick_p99:.4}s, \
             {serve_pps:.0} pts/s fleet-wide, catch-up {serve_catchup_secs:.3}s"
        );
        serve_rows.push(format!(
            "    {{ \"streams\": {n_streams}, \"warm_points\": {fleet_warm}, \
             \"chunk\": {fleet_chunk}, \"ticks\": {fleet_ticks}, \
             \"create_secs\": {ingest_warm_secs:.6}, \"warmup_secs\": {fleet_warm_secs:.6}, \
             \"ingest_secs\": {ingest_secs:.6}, \"tick_mean_secs\": {tick_mean:.6}, \
             \"tick_p99_secs\": {tick_p99:.6}, \"points_per_sec\": {serve_pps:.1}, \
             \"catchup_secs\": {serve_catchup_secs:.6} }}"
        ));
    }

    // Ensemble serve fleet: the same 10 / 100 / 1,000-stream runtime
    // with StreamingEnsembleDetector sessions, so the delta-maintained
    // density curves are exercised behind the fleet scheduler at
    // scale. Per tick every stream ingests one chunk, one flush +
    // fair-share refresh drains the fleet (asserted), and the
    // structural-staleness gauge is sampled fleet-wide right after the
    // appends land (every curve is short by the fresh tail) and
    // asserted back to zero once the refresh heals it. The delta
    // parity oracle runs on sampled streams per tick and on every
    // stream at catch-up; per-stream finishes are asserted
    // bit-identical to batch EnsembleDetector::detect.
    let (ens_fleet_warm, ens_fleet_chunk, ens_fleet_ticks, ens_fleet_window, ens_fleet_members) =
        if quick {
            (48usize, 8usize, 3usize, 16usize, 3usize)
        } else {
            (128, 16, 4, 32, 4)
        };
    let ens_fleet_config = EnsembleConfig {
        window: ens_fleet_window,
        ensemble_size: ens_fleet_members,
        parallel: false,
        ..EnsembleConfig::default()
    };
    let mut ens_serve_rows = Vec::new();
    for &n_streams in &[10u64, 100, 1_000] {
        let mut fleet: Fleet<StreamingEnsembleDetector> = Fleet::new();
        let (ens_create_secs, ()) = seconds(|| {
            for id in 0..n_streams {
                let warm_series: Vec<f64> =
                    (0..ens_fleet_warm).map(|i| serve_point(id, i)).collect();
                let mut session = StreamingEnsembleDetector::new(ens_fleet_config, id);
                session.append(&warm_series);
                fleet.create(id, session).unwrap();
            }
        });
        let (ens_warm_secs, _) = seconds(|| fleet.refresh(Deadline::unbounded()));
        let mut tick_times = Vec::with_capacity(ens_fleet_ticks);
        let mut ingest_secs = 0.0f64;
        let mut stale_after_append = 0u64;
        let fresh_points = n_streams as usize * ens_fleet_chunk;
        for t in 0..ens_fleet_ticks {
            let base = ens_fleet_warm + t * ens_fleet_chunk;
            let (i_secs, ()) = seconds(|| {
                for id in 0..n_streams {
                    let chunk: Vec<f64> = (base..base + ens_fleet_chunk)
                        .map(|i| serve_point(id, i))
                        .collect();
                    fleet.ingest(id, &chunk).unwrap();
                }
            });
            ingest_secs += i_secs;
            let (t_secs, ()) = seconds(|| {
                let flushed = fleet.flush_all();
                assert_eq!(flushed, fresh_points, "one coalesced append per stream");
                let budget = fleet.pending_units();
                let ran = fleet.refresh(Deadline::queries(budget));
                assert_eq!(ran, budget, "refresh must consume the whole budget");
                assert_eq!(fleet.dirty_count(), 0, "fair share must drain every stream");
            });
            tick_times.push(t_secs);
            // Gauge + parity gates, off the timed path. The appends
            // have been healed by the refresh above, so staleness is
            // re-sampled on a throwaway append pattern instead: the
            // gauge reading comes from the *next* tick's flush; here
            // assert the healed state and sampled delta parity.
            for id in (0..n_streams).take(3) {
                let session = fleet.session(id).unwrap();
                assert_eq!(
                    session.metrics().structural_staleness,
                    0,
                    "stream {id} still structurally stale after a drained tick"
                );
                assert!(
                    session.delta_curves_match_rebuild(),
                    "stream {id} delta curve diverged from rebuild at tick {t}"
                );
            }
        }
        // One more fleet-wide append sampled *before* the refresh, so
        // the recorded gauge shows what operators see mid-tick: every
        // curve short by exactly the fresh tail.
        let base = ens_fleet_warm + ens_fleet_ticks * ens_fleet_chunk;
        for id in 0..n_streams {
            let chunk: Vec<f64> = (base..base + ens_fleet_chunk)
                .map(|i| serve_point(id, i))
                .collect();
            fleet.ingest(id, &chunk).unwrap();
        }
        fleet.flush_all();
        for id in 0..n_streams {
            stale_after_append += fleet.session(id).unwrap().metrics().structural_staleness;
        }
        assert_eq!(
            stale_after_append, fresh_points as u64,
            "mid-tick structural staleness must be exactly the fresh tail"
        );
        let (ens_catchup_secs, reports) = seconds(|| fleet.finish_all());
        assert_eq!(reports.len(), n_streams as usize);
        let total = ens_fleet_warm + (ens_fleet_ticks + 1) * ens_fleet_chunk;
        for (id, report) in &reports {
            let session = fleet.session(*id).unwrap();
            assert_eq!(session.metrics().structural_staleness, 0);
            assert!(
                session.delta_curves_match_rebuild(),
                "stream {id} delta curve diverged from rebuild at catch-up"
            );
            let full: Vec<f64> = (0..total).map(|i| serve_point(*id, i)).collect();
            // The trait-level finish reports every candidate
            // (k = window_count), so the batch reference asks for the
            // same.
            let reference =
                EnsembleDetector::new(ens_fleet_config).detect(&full, session.window_count(), *id);
            assert_eq!(
                report, &reference,
                "ensemble fleet stream {id} deviates from batch detect"
            );
        }
        let mut sorted = tick_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tick_p99 =
            sorted[((sorted.len() as f64 * 0.99).ceil() as usize - 1).min(sorted.len() - 1)];
        let tick_mean = tick_times.iter().sum::<f64>() / tick_times.len() as f64;
        let streamed = fresh_points * ens_fleet_ticks;
        let ens_pps = streamed as f64 / (ingest_secs + tick_times.iter().sum::<f64>());
        eprintln!(
            "ESERVE {n_streams:>5} streams: {ens_fleet_ticks} ticks of {ens_fleet_chunk} pts/stream, \
             tick mean {tick_mean:.4}s / p99 {tick_p99:.4}s, \
             {ens_pps:.0} pts/s fleet-wide, mid-tick staleness {stale_after_append} pts, \
             catch-up {ens_catchup_secs:.3}s"
        );
        ens_serve_rows.push(format!(
            "    {{ \"streams\": {n_streams}, \"warm_points\": {ens_fleet_warm}, \
             \"chunk\": {ens_fleet_chunk}, \"ticks\": {ens_fleet_ticks}, \
             \"create_secs\": {ens_create_secs:.6}, \"warmup_secs\": {ens_warm_secs:.6}, \
             \"ingest_secs\": {ingest_secs:.6}, \"tick_mean_secs\": {tick_mean:.6}, \
             \"tick_p99_secs\": {tick_p99:.6}, \"points_per_sec\": {ens_pps:.1}, \
             \"mid_tick_structural_staleness\": {stale_after_append}, \
             \"catchup_secs\": {ens_catchup_secs:.6} }}"
        ));
    }

    // Checkpoint: persistence cost of the snapshot/restore subsystem.
    // One mid-stream session per kind — monitor on both MASS backends,
    // the streaming ensemble, and a 100-stream fleet — saved and
    // reloaded once, recording checkpoint size and save/load latency.
    // Every reload is asserted onto the bit-identical finish of the
    // session it was saved from (the checkpoint-at-any-point contract),
    // so the CI perf smoke fails on any persistence divergence.
    let mut checkpoint_rows = Vec::new();
    for backend in [MassBackend::Exact, MassBackend::Segmented] {
        let label = match backend {
            MassBackend::Exact => "monitor_exact",
            MassBackend::Segmented => "monitor_segmented",
        };
        let mut monitor =
            StreamingDiscordMonitor::with_backend(m, exclusion, DEFAULT_MONITOR_SEED, backend);
        monitor.append(&series[..warm]);
        monitor.run_for(warm / 2);
        monitor.append(&series[warm..]);
        let (save_secs, bytes) = seconds(|| monitor.checkpoint_bytes().unwrap());
        let (load_secs, restored) =
            seconds(|| StreamingDiscordMonitor::from_checkpoint_bytes(&bytes).unwrap());
        let mut restored = restored;
        let original = monitor.finish();
        let resumed = restored.finish();
        assert_eq!(
            resumed.profile, original.profile,
            "{label}: restored session deviates from the one it was saved from"
        );
        assert_eq!(resumed.index, original.index);
        eprintln!(
            "CKPT   {label:>17}: {} pts -> {} bytes, save {save_secs:.5}s, load {load_secs:.5}s",
            series_len,
            bytes.len()
        );
        checkpoint_rows.push(format!(
            "    {{ \"kind\": \"{label}\", \"state_points\": {series_len}, \
             \"bytes\": {}, \"save_secs\": {save_secs:.6}, \"load_secs\": {load_secs:.6} }}",
            bytes.len()
        ));
    }
    {
        let mut detector = StreamingEnsembleDetector::new(es_config, es_seed);
        detector.append(&series[..warm]);
        detector.run_for(es_members / 2);
        let (save_secs, bytes) = seconds(|| detector.checkpoint_bytes().unwrap());
        let (load_secs, restored) =
            seconds(|| StreamingEnsembleDetector::from_checkpoint_bytes(&bytes).unwrap());
        let mut restored = restored;
        assert_eq!(
            restored.finish(3),
            detector.finish(3),
            "ensemble: restored session deviates from the one it was saved from"
        );
        eprintln!(
            "CKPT   {:>17}: {warm} pts -> {} bytes, save {save_secs:.5}s, load {load_secs:.5}s",
            "ensemble",
            bytes.len()
        );
        checkpoint_rows.push(format!(
            "    {{ \"kind\": \"ensemble\", \"state_points\": {warm}, \
             \"bytes\": {}, \"save_secs\": {save_secs:.6}, \"load_secs\": {load_secs:.6} }}",
            bytes.len()
        ));
    }
    {
        let ckpt_streams = 100u64;
        let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
        for id in 0..ckpt_streams {
            let warm_series: Vec<f64> = (0..fleet_warm).map(|i| serve_point(id, i)).collect();
            let mut monitor = StreamingDiscordMonitor::with_exclusion(fleet_m, fleet_m / 2);
            monitor.append(&warm_series);
            fleet.create(id, monitor).unwrap();
        }
        fleet.refresh(Deadline::queries(ckpt_streams as usize * 5));
        let (save_secs, bytes) = seconds(|| fleet.checkpoint_bytes().unwrap());
        let (load_secs, restored) =
            seconds(|| Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bytes).unwrap());
        let mut restored = restored;
        let original = fleet.finish_all();
        let resumed = restored.finish_all();
        assert_eq!(resumed.len(), original.len());
        for ((id_a, fin_a), (id_b, fin_b)) in resumed.iter().zip(&original) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                fin_a.profile, fin_b.profile,
                "fleet stream {id_a}: restored session deviates from the one it was saved from"
            );
            assert_eq!(fin_a.index, fin_b.index);
        }
        let state_points = ckpt_streams as usize * fleet_warm;
        eprintln!(
            "CKPT   {:>17}: {state_points} pts over {ckpt_streams} streams -> {} bytes, \
             save {save_secs:.5}s, load {load_secs:.5}s",
            "fleet_100",
            bytes.len()
        );
        checkpoint_rows.push(format!(
            "    {{ \"kind\": \"fleet_100\", \"state_points\": {state_points}, \
             \"bytes\": {}, \"save_secs\": {save_secs:.6}, \"load_secs\": {load_secs:.6} }}",
            bytes.len()
        ));
    }

    // Ensemble detection: serial vs parallel members.
    let (ens_len, ens_window, ens_members) = if quick {
        (8_000, 128, 10)
    } else {
        (40_000, 300, 25)
    };
    let ens_series = fixture_ecg(ens_len, 9);
    let config = |parallel| EnsembleConfig {
        window: ens_window,
        ensemble_size: ens_members,
        parallel,
        ..EnsembleConfig::default()
    };
    let (ens_serial_secs, serial_report) =
        seconds(|| EnsembleDetector::new(config(false)).detect(&ens_series, 3, 1));
    let (ens_parallel_secs, parallel_report) =
        seconds(|| EnsembleDetector::new(config(true)).detect(&ens_series, 3, 1));
    assert_eq!(serial_report, parallel_report, "ensemble paths disagree");
    eprintln!(
        "ENSEMBLE {ens_len} pts, {ens_members} members: serial {ens_serial_secs:.3}s, parallel {ens_parallel_secs:.3}s"
    );

    // The process-wide registry, as accumulated by every instrumented
    // tier across the whole suite, embedded verbatim (compact JSON).
    let obs_json = egi_obs::global().render_json();

    let json = format!(
        "{{\n  \"suite\": \"discord-perf\",\n  \"quick\": {quick},\n  \"host_cores\": {cores},\n  \
         \"mass\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \"queries\": {nq},\n    \
         \"seed_per_query_fft_secs\": {mass_seed_secs:.6},\n    \
         \"per_query_rfft_secs\": {mass_naive_secs:.6},\n    \"shared_spectrum_secs\": {mass_pre_secs:.6},\n    \
         \"speedup_vs_seed\": {mass_speedup:.3}\n  }},\n  \
         \"stamp\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \
         \"seed_per_query_fft_secs\": {stamp_seed_secs:.6},\n    \"seed_extrapolated\": {seed_extrapolated},\n    \
         \"per_query_rfft_secs\": {stamp_naive_secs:.6},\n    \"shared_spectrum_secs\": {stamp_fast_secs:.6},\n    \
         \"speedup_vs_seed\": {stamp_speedup:.3},\n    \"speedup_vs_rfft\": {stamp_speedup_rfft:.3}\n  }},\n  \
         \"stomp\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \"runs\": [\n{stomp_rows}\n    ]\n  }},\n  \
         \"anytime\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \
         \"order_seed\": {anytime_seed},\n    \"settle_tol\": {settle_tol:e},\n    \
         \"snapshots\": [\n{anytime_rows}\n    ]\n  }},\n  \
         \"parallel_stamp\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \"runs\": [\n{pstamp_rows}\n    ]\n  }},\n  \
         \"streaming\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \
         \"warmup_points\": {warm},\n    \"runs\": [\n{streaming_rows}\n    ]\n  }},\n  \
         \"eviction\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \
         \"retain\": {retain},\n    \"runs\": [\n{eviction_rows}\n    ]\n  }},\n  \
         \"segmented\": {{\n    \"series_len\": {series_len},\n    \"m\": {m},\n    \
         \"warmup_points\": {warm},\n    \"tolerance\": {SEGMENTED_TOL:e},\n    \
         \"runs\": [\n{segmented_rows}\n    ]\n  }},\n  \
         \"ensemble_streaming\": {{\n    \"series_len\": {series_len},\n    \"window\": {es_window},\n    \
         \"members\": {es_members},\n    \"seed\": {es_seed},\n    \"warmup_points\": {warm},\n    \
         \"runs\": [\n{es_rows}\n    ]\n  }},\n  \
         \"serve\": {{\n    \"m\": {fleet_m},\n    \"runs\": [\n{serve_rows}\n    ]\n  }},\n  \
         \"ensemble_serve\": {{\n    \"window\": {ens_fleet_window},\n    \
         \"members\": {ens_fleet_members},\n    \"runs\": [\n{ens_serve_rows}\n    ]\n  }},\n  \
         \"checkpoint\": {{\n    \"runs\": [\n{checkpoint_rows}\n    ]\n  }},\n  \
         \"ensemble\": {{\n    \"series_len\": {ens_len},\n    \"window\": {ens_window},\n    \
         \"members\": {ens_members},\n    \"serial_secs\": {ens_serial_secs:.6},\n    \
         \"parallel_secs\": {ens_parallel_secs:.6}\n  }},\n  \
         \"obs_overhead\": {{\n    \"chunk\": {obs_chunk},\n    \"reps\": {obs_reps},\n    \
         \"bare_secs\": {bare_min:.6},\n    \"instrumented_secs\": {instr_min:.6},\n    \
         \"overhead_frac\": {obs_overhead_frac:.6}\n  }},\n  \
         \"obs\": {obs_json}\n}}\n",
        nq = queries.len(),
        mass_speedup = mass_seed_secs / mass_pre_secs,
        seed_extrapolated = !full_seed,
        stamp_speedup = stamp_seed_secs / stamp_fast_secs,
        stamp_speedup_rfft = stamp_naive_secs / stamp_fast_secs,
        stomp_rows = stomp_rows.join(",\n"),
        anytime_rows = anytime_rows.join(",\n"),
        pstamp_rows = pstamp_rows.join(",\n"),
        streaming_rows = streaming_rows.join(",\n"),
        eviction_rows = eviction_rows.join(",\n"),
        segmented_rows = segmented_rows.join(",\n"),
        es_rows = es_rows.join(",\n"),
        serve_rows = serve_rows.join(",\n"),
        ens_serve_rows = ens_serve_rows.join(",\n"),
        checkpoint_rows = checkpoint_rows.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
