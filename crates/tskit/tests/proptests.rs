//! Property-based tests for the time series substrate.

use egi_tskit::corpus::CorpusSpec;
use egi_tskit::gen::UcrFamily;
use egi_tskit::stats::{mean, stddev, PrefixStats};
use egi_tskit::window::{intervals_overlap, sliding_windows, window_count};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Prefix-sum statistics agree with direct computation on every
    /// subrange.
    #[test]
    fn prefix_stats_match_direct(
        xs in prop::collection::vec(-1e4f64..1e4, 2..200),
        a in 0usize..200,
        b in 0usize..200,
    ) {
        let (mut s, mut e) = (a % xs.len(), b % xs.len());
        if s > e {
            std::mem::swap(&mut s, &mut e);
        }
        e += 1;
        let ps = PrefixStats::new(&xs);
        let direct_sum: f64 = xs[s..e].iter().sum();
        // Tolerance scales with magnitude: prefix sums accumulate error.
        let tol = 1e-7 * (1.0 + direct_sum.abs() + xs.len() as f64);
        prop_assert!((ps.range_sum(s, e) - direct_sum).abs() < tol);
        prop_assert!((ps.range_mean(s, e) - mean(&xs[s..e])).abs() < tol);
        if e - s >= 2 {
            let d = stddev(&xs[s..e]);
            prop_assert!((ps.range_stddev(s, e) - d).abs() < 1e-5 * (1.0 + d));
        }
    }

    /// z-normalization: output has mean ≈ 0 and stddev ≈ 1 (or is all
    /// zeros for flat input), and is idempotent.
    #[test]
    fn znormalize_properties(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let mut z = xs.clone();
        egi_tskit::stats::znormalize(&mut z);
        let flat = z.iter().all(|&v| v == 0.0);
        if !flat {
            prop_assert!(mean(&z).abs() < 1e-8);
            prop_assert!((stddev(&z) - 1.0).abs() < 1e-8);
            let mut zz = z.clone();
            egi_tskit::stats::znormalize(&mut zz);
            for (a, b) in z.iter().zip(&zz) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    /// Window iteration yields exactly window_count windows, each the
    /// right slice.
    #[test]
    fn sliding_windows_consistency(len in 0usize..80, n in 0usize..20) {
        let xs: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let ws: Vec<_> = sliding_windows(&xs, n).collect();
        prop_assert_eq!(ws.len(), window_count(len, n));
        for (start, w) in ws {
            prop_assert_eq!(w, &xs[start..start + n]);
        }
    }

    /// Interval overlap is symmetric and consistent with arithmetic.
    #[test]
    fn overlap_symmetry(a in 0usize..100, la in 1usize..20, b in 0usize..100, lb in 1usize..20) {
        let o1 = intervals_overlap(a, la, b, lb);
        let o2 = intervals_overlap(b, lb, a, la);
        prop_assert_eq!(o1, o2);
        let expected = a < b + lb && b < a + la;
        prop_assert_eq!(o1, expected);
    }

    /// Corpus generation invariants across families and seeds: length,
    /// boundary alignment, plant band, and ground-truth distinctness.
    #[test]
    fn corpus_invariants(seed in 0u64..500, fam_idx in 0usize..6) {
        let family = UcrFamily::ALL[fam_idx];
        let spec = CorpusSpec::paper(family);
        let mut rng = StdRng::seed_from_u64(seed);
        let ls = spec.generate_one(&mut rng);
        let ilen = family.instance_length();
        prop_assert_eq!(ls.series.len(), 21 * ilen);
        prop_assert_eq!(ls.gt_len, ilen);
        prop_assert_eq!(ls.gt_start % ilen, 0);
        let frac = ls.gt_start as f64 / ls.series.len() as f64;
        let slack = ilen as f64 / ls.series.len() as f64;
        prop_assert!(frac >= 0.4 - slack && frac <= 0.8 + slack);
        prop_assert!(ls.series.iter().all(|v| v.is_finite()));
    }
}
