//! The shared sliding-window eviction contract.
//!
//! Both streaming subsystems (`egi_discord::streaming`'s discord
//! monitor and `egi_core::streaming`'s ensemble detector) retire old
//! points through the same front-eviction rule, validated here so the
//! boundary behaviour is identical on both sides:
//!
//! * an eviction may never reach past the ingested series
//!   ([`EvictError::PastEnd`]);
//! * the surviving suffix must either be **empty** (the stream resets
//!   and the next append starts a fresh warm-up) or hold at least one
//!   full analysis window ([`EvictError::BelowMinimum`]) — a live
//!   window shorter than the subsequence length has no batch
//!   counterpart, so allowing it would leave the suffix-parity
//!   contract undefined.
//!
//! Violations are reported as [`EvictError`] values, never panics: an
//! online service feeding `evict` from untrusted traffic must be able
//! to reject a bad retirement request and keep running.

use std::error::Error;
use std::fmt;

/// Why an eviction (or retention-policy) request was rejected.
///
/// Returned by `evict` / `retain_last` on both streaming subsystems.
/// The request is rejected **atomically**: on `Err` the stream state is
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictError {
    /// More points were requested than the stream currently holds.
    PastEnd {
        /// Points the caller asked to retire.
        requested: usize,
        /// Points currently live in the stream.
        available: usize,
    },
    /// The eviction would leave a non-empty suffix shorter than one
    /// analysis window (`m` for the discord monitor, `window` for the
    /// ensemble detector). Evict everything (suffix length zero) or
    /// leave at least `minimum` points.
    BelowMinimum {
        /// Points that would survive the eviction.
        remaining: usize,
        /// Minimum viable non-empty suffix length.
        minimum: usize,
    },
}

impl fmt::Display for EvictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EvictError::PastEnd {
                requested,
                available,
            } => write!(
                f,
                "cannot evict {requested} points: only {available} are live"
            ),
            EvictError::BelowMinimum { remaining, minimum } => write!(
                f,
                "eviction would leave {remaining} points, below the minimum \
                 viable window of {minimum} (evict everything or leave at \
                 least one full window)"
            ),
        }
    }
}

impl Error for EvictError {}

/// Validates a front-eviction of `requested` points from a stream
/// holding `available`, where a non-empty suffix must keep at least
/// `minimum` points (one analysis window).
///
/// This is the single boundary rule both streaming subsystems apply —
/// see the [module docs](self).
///
/// # Examples
///
/// ```
/// use egi_tskit::evict::{validate_evict, EvictError};
///
/// assert!(validate_evict(100, 40, 16).is_ok()); // 60 points survive
/// assert!(validate_evict(100, 100, 16).is_ok()); // evict everything
/// assert_eq!(
///     validate_evict(100, 90, 16), // 10 < 16 points would survive
///     Err(EvictError::BelowMinimum { remaining: 10, minimum: 16 })
/// );
/// assert_eq!(
///     validate_evict(100, 101, 16),
///     Err(EvictError::PastEnd { requested: 101, available: 100 })
/// );
/// ```
pub fn validate_evict(
    available: usize,
    requested: usize,
    minimum: usize,
) -> Result<(), EvictError> {
    if requested == 0 {
        // A no-op request is always valid — even while the stream is
        // below `minimum` (warm-up), since nothing changes.
        return Ok(());
    }
    if requested > available {
        return Err(EvictError::PastEnd {
            requested,
            available,
        });
    }
    let remaining = available - requested;
    if remaining != 0 && remaining < minimum {
        return Err(EvictError::BelowMinimum { remaining, minimum });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_eviction_is_always_valid() {
        assert!(validate_evict(0, 0, 8).is_ok());
        assert!(validate_evict(5, 0, 8).is_ok());
    }

    #[test]
    fn full_drain_is_valid_even_below_minimum() {
        assert!(validate_evict(5, 5, 8).is_ok());
    }

    #[test]
    fn partial_drain_of_a_short_stream_errors() {
        // 5 live points, minimum 8: any non-empty suffix is below the
        // minimum, so only the full drain passes.
        for c in 1..5 {
            assert_eq!(
                validate_evict(5, c, 8),
                Err(EvictError::BelowMinimum {
                    remaining: 5 - c,
                    minimum: 8
                })
            );
        }
    }

    #[test]
    fn exact_minimum_suffix_is_valid() {
        assert!(validate_evict(24, 16, 8).is_ok());
    }

    #[test]
    fn errors_render_useful_messages() {
        let past = EvictError::PastEnd {
            requested: 9,
            available: 4,
        };
        assert!(past.to_string().contains("only 4 are live"));
        let below = EvictError::BelowMinimum {
            remaining: 3,
            minimum: 8,
        };
        assert!(below.to_string().contains("minimum viable window of 8"));
    }
}
