//! # egi-tskit — time series substrate
//!
//! Foundation crate for the EGI (Ensemble Grammar Induction) workspace. It
//! provides:
//!
//! * [`TimeSeries`] — an owned, ordered sequence of `f64` observations with
//!   convenience constructors and statistics.
//! * [`stats`] — prefix-sum statistics (the `ESum_x`, `ESum_xx` vectors of
//!   the paper's Algorithm 2) enabling O(1) mean/stddev of any subsequence,
//!   plus z-normalization utilities.
//! * [`window`] — sliding-window subsequence extraction.
//! * [`deadline`] — the shared [`Deadline`] stopping condition for the
//!   workspace's budgeted streaming refresh loops (discord monitor,
//!   streaming ensemble detector).
//! * [`evict`] — the shared sliding-window eviction contract
//!   ([`EvictError`] + the boundary rule) both streaming subsystems
//!   apply when retiring old points.
//! * [`session`] — the [`StreamSession`] trait every online monitor
//!   implements (append/step/evict lifecycle, budgeted drivers
//!   provided once over `step`) plus the [`StreamClock`]
//!   epoch/offset/retention bookkeeping; the contract the `egi-serve`
//!   fleet runtime schedules against.
//! * [`gen`] — synthetic data generators: random walks, periodic signals,
//!   ECG/EEG-like traces, appliance power-usage cycles, and six UCR-style
//!   dataset families used by the paper's evaluation (Section 7.1.1).
//! * [`corpus`] — assembly of labeled evaluation corpora following the
//!   paper's protocol (concatenate 20 normal instances, plant one anomalous
//!   instance at a random position in `[40%, 80%]` of the series).
//! * [`io`] — minimal CSV reading/writing for series interchange.
//! * [`checkpoint`] — the versioned snapshot/restore substrate: the
//!   [`Checkpoint`] trait every streaming session implements, the
//!   length-prefixed checksummed container format, and the typed
//!   [`CheckpointError`] every malformed input maps to. A restored
//!   session replays the remainder of any schedule bit-identically to
//!   the uninterrupted original.
//!
//! Everything is dependency-light (only `rand`) and deterministic when
//! seeded, which the evaluation harness relies on for reproducibility.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod corpus;
pub mod deadline;
pub mod evict;
pub mod gen;
pub mod io;
pub mod series;
pub mod session;
pub mod stats;
pub mod window;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use corpus::{CorpusSpec, LabeledSeries};
pub use deadline::Deadline;
pub use evict::EvictError;
pub use series::TimeSeries;
pub use session::{StreamClock, StreamSession};
pub use stats::{mean, stddev, znormalize, znormalize_into, PrefixStats};
pub use window::{sliding_windows, SlidingWindows};
