//! The [`TimeSeries`] container.
//!
//! A time series `T = t1, ..., tN` is an ordered set of real-valued
//! observations (paper, Section 3.1). The container is a thin wrapper over
//! `Vec<f64>` that adds domain constructors and summary statistics while
//! dereferencing to a slice so that algorithmic code can stay slice-based.

use std::ops::{Deref, Index, Range};

/// An owned univariate time series.
///
/// Derefs to `&[f64]`, so all slice methods are available. Algorithms in the
/// workspace accept `&[f64]`; `TimeSeries` exists to give construction,
/// labeling, and statistics a home.
///
/// # Examples
///
/// ```
/// use egi_tskit::TimeSeries;
///
/// let ts = TimeSeries::from(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ts.len(), 4);
/// assert_eq!(ts.mean(), 2.5);
/// assert_eq!(&ts[1..3], &[2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self { values: Vec::new() }
    }

    /// Creates an empty series with room for `capacity` observations.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            values: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector of observations.
    pub fn from_vec(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Builds a series of length `n` from a function of the time index.
    ///
    /// ```
    /// use egi_tskit::TimeSeries;
    /// let ramp = TimeSeries::from_fn(5, |i| i as f64);
    /// assert_eq!(ramp.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    /// ```
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Self {
            values: (0..n).map(f).collect(),
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows the observations as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrows the observations.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning the underlying vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Appends an observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Appends all observations from `other`.
    pub fn extend_from_slice(&mut self, other: &[f64]) {
        self.values.extend_from_slice(other);
    }

    /// The subsequence `T[p..p+n]` as an owned series.
    ///
    /// This is the paper's `T_{p,q}` with `q = p + n - 1` (0-based here).
    ///
    /// # Panics
    ///
    /// Panics if `p + n > self.len()`.
    pub fn subsequence(&self, p: usize, n: usize) -> TimeSeries {
        TimeSeries::from_vec(self.values[p..p + n].to_vec())
    }

    /// Arithmetic mean; `NaN` for an empty series.
    pub fn mean(&self) -> f64 {
        crate::stats::mean(&self.values)
    }

    /// Sample standard deviation (n-1 denominator); `NaN` if `len() < 2`.
    pub fn stddev(&self) -> f64 {
        crate::stats::stddev(&self.values)
    }

    /// Minimum value; `NaN` for an empty series.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(
            f64::NAN,
            |acc, v| if v < acc || acc.is_nan() { v } else { acc },
        )
    }

    /// Maximum value; `NaN` for an empty series.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(
            f64::NAN,
            |acc, v| if v > acc || acc.is_nan() { v } else { acc },
        )
    }

    /// Returns a z-normalized copy (mean 0, stddev 1).
    ///
    /// Near-constant series (stddev below [`crate::stats::FLAT_EPSILON`])
    /// are mapped to all-zeros rather than amplifying noise, matching the
    /// convention used by SAX implementations.
    pub fn znormalized(&self) -> TimeSeries {
        let mut out = self.values.clone();
        crate::stats::znormalize(&mut out);
        TimeSeries::from_vec(out)
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        Self::from_vec(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        Self::from_vec(values.to_vec())
    }
}

impl FromIterator<f64> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

impl Deref for TimeSeries {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.values
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.values[index]
    }
}

impl Index<Range<usize>> for TimeSeries {
    type Output = [f64];

    fn index(&self, index: Range<usize>) -> &[f64] {
        &self.values[index]
    }
}

impl IntoIterator for TimeSeries {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.into_iter()
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.len(), 0);
    }

    #[test]
    fn from_fn_builds_expected_values() {
        let ts = TimeSeries::from_fn(4, |i| (i * i) as f64);
        assert_eq!(ts.as_slice(), &[0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn mean_and_stddev() {
        let ts = TimeSeries::from(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((ts.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic example is sqrt(32/7).
        assert!((ts.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let ts = TimeSeries::from(vec![3.0, -1.0, 2.0]);
        assert_eq!(ts.min(), -1.0);
        assert_eq!(ts.max(), 3.0);
    }

    #[test]
    fn min_max_empty_is_nan() {
        let ts = TimeSeries::new();
        assert!(ts.min().is_nan());
        assert!(ts.max().is_nan());
    }

    #[test]
    fn subsequence_matches_slice() {
        let ts = TimeSeries::from_fn(10, |i| i as f64);
        let sub = ts.subsequence(3, 4);
        assert_eq!(sub.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn znormalized_has_zero_mean_unit_std() {
        let ts = TimeSeries::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let z = ts.znormalized();
        assert!(z.mean().abs() < 1e-12);
        assert!((z.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalized_flat_series_is_zeros() {
        let ts = TimeSeries::from(vec![7.0; 8]);
        let z = ts.znormalized();
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deref_and_index() {
        let ts = TimeSeries::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(ts[1], 2.0);
        assert_eq!(&ts[0..2], &[1.0, 2.0]);
        assert_eq!(ts.iter().sum::<f64>(), 6.0);
    }

    #[test]
    fn collect_from_iterator() {
        let ts: TimeSeries = (0..3).map(|i| i as f64).collect();
        assert_eq!(ts.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn push_and_extend() {
        let mut ts = TimeSeries::with_capacity(4);
        ts.push(1.0);
        ts.extend_from_slice(&[2.0, 3.0]);
        assert_eq!(ts.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
