//! Sliding-window subsequence extraction.
//!
//! Discretization (and discord discovery) both walk a window of length `n`
//! across the series, one point at a time. The paper indexes subsequences
//! `T_{p,q}` with `1 ≤ p ≤ N − n + 1`; here windows are 0-based half-open
//! ranges `[start, start + n)`.

/// Iterator over all length-`n` windows of a slice, stepping by one.
///
/// Equivalent to `slice.windows(n)` but also yields the start offset, which
/// every consumer needs to map results back to time-series positions.
#[derive(Debug, Clone)]
pub struct SlidingWindows<'a> {
    data: &'a [f64],
    n: usize,
    pos: usize,
}

impl<'a> SlidingWindows<'a> {
    /// Number of windows that will be yielded.
    pub fn count_windows(&self) -> usize {
        window_count(self.data.len(), self.n)
    }
}

impl<'a> Iterator for SlidingWindows<'a> {
    type Item = (usize, &'a [f64]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.n == 0 || self.pos + self.n > self.data.len() {
            return None;
        }
        let item = (self.pos, &self.data[self.pos..self.pos + self.n]);
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.n == 0 || self.pos + self.n > self.data.len() {
            0
        } else {
            self.data.len() - self.n - self.pos + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SlidingWindows<'_> {}

/// Returns an iterator of `(start, window)` pairs over `data`.
///
/// Yields nothing when `n == 0` or `n > data.len()`.
///
/// # Examples
///
/// ```
/// use egi_tskit::sliding_windows;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// let ws: Vec<_> = sliding_windows(&data, 3).collect();
/// assert_eq!(ws.len(), 2);
/// assert_eq!(ws[0], (0, &data[0..3]));
/// assert_eq!(ws[1], (1, &data[1..4]));
/// ```
pub fn sliding_windows(data: &[f64], n: usize) -> SlidingWindows<'_> {
    SlidingWindows { data, n, pos: 0 }
}

/// Number of length-`n` sliding windows in a series of length `len`.
///
/// `N − n + 1` when `0 < n ≤ len`, otherwise 0.
pub fn window_count(len: usize, n: usize) -> usize {
    if n == 0 || n > len {
        0
    } else {
        len - n + 1
    }
}

/// `true` when intervals `[a_start, a_start + len_a)` and
/// `[b_start, b_start + len_b)` overlap.
///
/// Used by the anomaly ranking step, which requires the reported top-k
/// candidates to be mutually non-overlapping (Section 7.1.2), and by the
/// self-match exclusion zone in discord discovery.
#[inline]
pub fn intervals_overlap(a_start: usize, len_a: usize, b_start: usize, len_b: usize) -> bool {
    a_start < b_start + len_b && b_start < a_start + len_a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_all_windows_in_order() {
        let data: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ws: Vec<_> = sliding_windows(&data, 2).collect();
        assert_eq!(ws.len(), 5);
        for (i, (start, w)) in ws.iter().enumerate() {
            assert_eq!(*start, i);
            assert_eq!(w.len(), 2);
            assert_eq!(w[0], i as f64);
        }
    }

    #[test]
    fn window_equal_to_len_yields_once() {
        let data = [1.0, 2.0, 3.0];
        let ws: Vec<_> = sliding_windows(&data, 3).collect();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].0, 0);
    }

    #[test]
    fn oversized_window_yields_nothing() {
        let data = [1.0, 2.0];
        assert_eq!(sliding_windows(&data, 3).count(), 0);
        assert_eq!(window_count(2, 3), 0);
    }

    #[test]
    fn zero_window_yields_nothing() {
        let data = [1.0, 2.0];
        assert_eq!(sliding_windows(&data, 0).count(), 0);
        assert_eq!(window_count(2, 0), 0);
    }

    #[test]
    fn exact_size_hint() {
        let data = [0.0; 10];
        let mut it = sliding_windows(&data, 4);
        assert_eq!(it.len(), 7);
        it.next();
        assert_eq!(it.len(), 6);
    }

    #[test]
    fn count_windows_matches_formula() {
        assert_eq!(window_count(10, 4), 7);
        assert_eq!(window_count(10, 10), 1);
        assert_eq!(window_count(0, 1), 0);
    }

    #[test]
    fn overlap_cases() {
        // [0,5) vs [4,9): overlap at 4.
        assert!(intervals_overlap(0, 5, 4, 5));
        // [0,5) vs [5,10): touching, no overlap.
        assert!(!intervals_overlap(0, 5, 5, 5));
        // Containment.
        assert!(intervals_overlap(2, 10, 4, 2));
        // Disjoint.
        assert!(!intervals_overlap(0, 2, 10, 2));
        // Symmetry.
        assert!(intervals_overlap(4, 5, 0, 5));
    }
}
