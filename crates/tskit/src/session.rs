//! The shared streaming-session contract behind every online monitor
//! in the workspace.
//!
//! By PR 6 the two streaming subsystems — the matrix-profile discord
//! monitor (`egi_discord::streaming`) and the streaming ensemble
//! grammar-induction detector (`egi_core::streaming`) — had converged
//! on a near-identical hand-rolled surface: `append` new points,
//! `step` one unit of refresh work, drive refresh under a [`Deadline`],
//! `evict` old points under the shared boundary rule, keep a
//! `retain_last` budget, and report an `epoch`/`stream_offset` for
//! bookkeeping. [`StreamSession`] hoists that contract into the
//! substrate crate — the same move PR 4 made for [`Deadline`] and PR 5
//! made for [`EvictError`] — so the driver loops live in exactly one
//! place and a fleet scheduler (`egi-serve`) can program against *any*
//! monitor generically.
//!
//! Two pieces live here:
//!
//! * [`StreamSession`] — the trait. Implementors provide the eight
//!   required state-machine methods plus `snapshot`/`finish`; the
//!   budgeted drivers ([`run_for`](StreamSession::run_for),
//!   [`run_until`](StreamSession::run_until),
//!   [`run_for_duration`](StreamSession::run_for_duration)) are
//!   provided once, implemented over [`step`](StreamSession::step),
//!   replacing the copy-pasted loop bodies the monitors used to carry.
//! * [`StreamClock`] — the epoch / stream-offset / retention
//!   bookkeeping both monitors used to duplicate as three loose
//!   fields plus hand-rolled trim logic.
//!
//! The deadline contract is unchanged from the hand-rolled loops:
//! the condition is checked **before** each unit, so a wall-clock
//! deadline is overshot by at most one unit's work and an
//! already-expired deadline runs zero units.

use std::time::Duration;

use crate::deadline::Deadline;
use crate::evict::EvictError;

/// A resumable online monitor over one append-only (optionally
/// front-evicted) stream of `f64` points.
///
/// The lifecycle every implementor honors:
///
/// 1. [`append`](Self::append) ingests points and *enqueues* refresh
///    work ("units": one MASS query for the discord monitor, one
///    member refresh for the ensemble detector) without doing it.
/// 2. [`step`](Self::step) performs exactly one pending unit; the
///    provided drivers spread units under a [`Deadline`].
/// 3. [`evict`](Self::evict) retires points from the front under the
///    shared boundary rule ([`crate::evict::validate_evict`]),
///    rejecting invalid cuts atomically — on `Err` the session is
///    untouched.
/// 4. [`snapshot`](Self::snapshot) is the current (possibly stale)
///    answer; [`finish`](Self::finish) drains all pending units and
///    returns the exact one.
///
/// The workspace-wide parity contract rides on this trait: for every
/// interleaving of appends, evictions, and budgeted refreshes, a
/// session's [`finish`](Self::finish) must be bit-identical to the
/// batch computation over the surviving suffix. `egi-serve` extends
/// that one level up — a fleet-managed session must finish
/// bit-identical to a standalone one fed the same schedule — which is
/// only possible because this trait pins down the unit semantics.
pub trait StreamSession {
    /// The cheap, possibly-stale answer type returned by
    /// [`snapshot`](Self::snapshot) (e.g. a matrix profile or a rule
    /// density curve).
    type Snapshot;
    /// The exact, fully-refreshed answer type returned by
    /// [`finish`](Self::finish) (e.g. a matrix profile or a ranked
    /// anomaly report).
    type Report;

    /// Ingests `points` at the back of the stream, enqueueing (but not
    /// performing) whatever refresh work they imply. Implementors with
    /// a retention budget ([`retain_last`](Self::retain_last)) trim the
    /// front here to stay within it.
    fn append(&mut self, points: &[f64]);

    /// Performs one pending unit of refresh work. Returns `false` when
    /// nothing was pending (the session is current), `true` otherwise.
    fn step(&mut self) -> bool;

    /// Retires the oldest `count` points under the shared eviction
    /// boundary rule. On `Err` the session state is untouched.
    fn evict(&mut self, count: usize) -> Result<(), EvictError>;

    /// Installs a rolling retention budget of `n` live points,
    /// evicting immediately (and on every future append) whatever the
    /// budget excludes. Returns the number of points evicted now.
    fn retain_last(&mut self, n: usize) -> Result<usize, EvictError>;

    /// Number of live (non-evicted) points currently held.
    fn series_len(&self) -> usize;

    /// Number of pending refresh units [`step`](Self::step) still has
    /// to perform before the session is current.
    fn pending_units(&self) -> usize;

    /// Number of points evicted from the front over the session's
    /// lifetime; global index `stream_offset() + i` corresponds to
    /// live index `i`.
    fn stream_offset(&self) -> usize;

    /// `true` when no refresh work is pending —
    /// [`snapshot`](Self::snapshot) equals the exact answer.
    fn is_current(&self) -> bool;

    /// The current answer without doing any work; stale while
    /// [`is_current`](Self::is_current) is `false`.
    fn snapshot(&self) -> Self::Snapshot;

    /// Drains every pending unit and returns the exact answer for the
    /// surviving suffix (the bit-parity anchor of the workspace).
    fn finish(&mut self) -> Self::Report;

    /// Runs pending units until `deadline` expires or the session is
    /// current; returns the number of units performed. The deadline is
    /// checked **before** each unit, so a wall-clock deadline is
    /// overshot by at most one unit and an already-expired deadline
    /// runs zero units.
    ///
    /// Each unit's wall time lands in the `egi_session_step_nanos`
    /// histogram, and any wall-clock overshoot on exit in
    /// `egi_session_deadline_overshoot_nanos` (integer nanoseconds
    /// only — see egi-obs's never-touches-f64 invariant). Disable with
    /// [`egi_obs::set_enabled`]`(false)`.
    fn run_until(&mut self, deadline: Deadline) -> usize {
        let mut ran = 0;
        while !deadline.expired(ran) {
            let span = egi_obs::SpanTimer::start();
            if !self.step() {
                break;
            }
            span.record(egi_obs::histogram!("egi_session_step_nanos"));
            ran += 1;
        }
        if egi_obs::enabled() {
            if let Some(overshoot) = deadline.overshoot_nanos() {
                egi_obs::counter!("egi_session_deadline_overshoots_total").inc();
                egi_obs::histogram!("egi_session_deadline_overshoot_nanos").record(overshoot);
            }
            egi_obs::histogram!("egi_session_pending_after_run_units")
                .record(self.pending_units() as u64);
        }
        ran
    }

    /// Runs at most `n` pending units; returns the number performed
    /// (less than `n` only when the session went current).
    fn run_for(&mut self, n: usize) -> usize {
        self.run_until(Deadline::queries(n))
    }

    /// Runs pending units for at most `budget` of wall-clock time;
    /// returns the number performed.
    fn run_for_duration(&mut self, budget: Duration) -> usize {
        self.run_until(Deadline::after(budget))
    }
}

/// Epoch / stream-offset / retention bookkeeping shared by every
/// [`StreamSession`] implementor.
///
/// Both monitors used to carry the same three loose fields (`epoch`,
/// `offset`, `retention`) plus duplicated retention-trim arithmetic;
/// this struct is that state, hoisted. It is deliberately passive —
/// the monitor decides *when* to record, the clock only counts — so
/// the bit-parity-sensitive mutation order of each monitor is
/// untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamClock {
    epoch: u64,
    offset: usize,
    retention: Option<usize>,
}

impl StreamClock {
    /// A fresh clock: epoch 0, offset 0, no retention budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a clock from checkpointed state. The epoch must be
    /// restored exactly: monitors salt their fold order with it, so a
    /// reset epoch would break restore bit-parity.
    pub fn with_state(epoch: u64, offset: usize, retention: Option<usize>) -> Self {
        Self {
            epoch,
            offset,
            retention,
        }
    }

    /// Monotone revision counter: bumped once per successful append or
    /// eviction. Refresh work tagged with an older epoch is stale.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// Total points evicted from the front so far; global index
    /// `offset() + i` corresponds to live index `i`.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The rolling retention budget, if one is installed.
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// Records a successful append: bumps the epoch.
    pub fn record_append(&mut self) {
        self.epoch += 1;
    }

    /// Records a successful front-eviction of `count` points: bumps
    /// the epoch and advances the offset.
    pub fn record_evict(&mut self, count: usize) {
        self.epoch += 1;
        self.offset += count;
    }

    /// Installs a rolling retention budget of `n` live points.
    pub fn set_retention(&mut self, n: usize) {
        self.retention = Some(n);
    }

    /// How many of `live` points exceed the retention budget (0 when
    /// no budget is installed or the stream fits).
    pub fn excess(&self, live: usize) -> usize {
        match self.retention {
            Some(budget) => live.saturating_sub(budget),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal session: the "answer" is the sum of live points, one
    /// pending unit per appended point.
    struct SumSession {
        live: Vec<f64>,
        acc: f64,
        cursor: usize,
        clock: StreamClock,
    }

    impl SumSession {
        fn new() -> Self {
            Self {
                live: Vec::new(),
                acc: 0.0,
                cursor: 0,
                clock: StreamClock::new(),
            }
        }
    }

    impl StreamSession for SumSession {
        type Snapshot = f64;
        type Report = f64;

        fn append(&mut self, points: &[f64]) {
            self.clock.record_append();
            self.live.extend_from_slice(points);
            let excess = self.clock.excess(self.live.len());
            if excess > 0 {
                self.evict(excess).expect("retention trim");
            }
        }

        fn step(&mut self) -> bool {
            if self.cursor == self.live.len() {
                return false;
            }
            self.acc += self.live[self.cursor];
            self.cursor += 1;
            true
        }

        fn evict(&mut self, count: usize) -> Result<(), EvictError> {
            crate::evict::validate_evict(self.live.len(), count, 1)?;
            self.clock.record_evict(count);
            self.live.drain(..count);
            self.acc = 0.0;
            self.cursor = 0;
            Ok(())
        }

        fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
            self.clock.set_retention(n);
            let excess = self.clock.excess(self.live.len());
            if excess > 0 {
                self.evict(excess)?;
            }
            Ok(excess)
        }

        fn series_len(&self) -> usize {
            self.live.len()
        }

        fn pending_units(&self) -> usize {
            self.live.len() - self.cursor
        }

        fn stream_offset(&self) -> usize {
            self.clock.offset()
        }

        fn is_current(&self) -> bool {
            self.pending_units() == 0
        }

        fn snapshot(&self) -> f64 {
            self.acc
        }

        fn finish(&mut self) -> f64 {
            while self.step() {}
            self.snapshot()
        }
    }

    #[test]
    fn default_run_for_caps_units_and_stops_when_current() {
        let mut s = SumSession::new();
        s.append(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.pending_units(), 4);
        assert_eq!(s.run_for(2), 2);
        assert_eq!(s.pending_units(), 2);
        // Asking for more than pending stops at current.
        assert_eq!(s.run_for(100), 2);
        assert!(s.is_current());
        assert_eq!(s.run_for(5), 0);
        assert_eq!(s.snapshot(), 10.0);
    }

    #[test]
    fn default_run_until_respects_expired_deadline() {
        let mut s = SumSession::new();
        s.append(&[1.0, 2.0]);
        assert_eq!(s.run_until(Deadline::queries(0)), 0);
        assert_eq!(s.pending_units(), 2);
        assert_eq!(s.run_until(Deadline::unbounded()), 2);
        assert!(s.is_current());
    }

    #[test]
    fn default_run_for_duration_drains_small_sessions() {
        let mut s = SumSession::new();
        s.append(&[1.0, 2.0, 3.0]);
        // A generous wall-clock budget drains everything.
        s.run_for_duration(Duration::from_secs(5));
        assert!(s.is_current());
        assert_eq!(s.finish(), 6.0);
    }

    #[test]
    fn clock_counts_appends_evictions_and_offset() {
        let mut c = StreamClock::new();
        assert_eq!((c.epochs(), c.offset(), c.retention()), (0, 0, None));
        c.record_append();
        c.record_evict(3);
        c.record_append();
        assert_eq!(c.epochs(), 3);
        assert_eq!(c.offset(), 3);
    }

    #[test]
    fn clock_excess_tracks_retention_budget() {
        let mut c = StreamClock::new();
        assert_eq!(c.excess(1_000), 0); // no budget installed
        c.set_retention(10);
        assert_eq!(c.retention(), Some(10));
        assert_eq!(c.excess(7), 0);
        assert_eq!(c.excess(10), 0);
        assert_eq!(c.excess(14), 4);
    }

    #[test]
    fn retention_trim_flows_through_session_append() {
        let mut s = SumSession::new();
        s.append(&[1.0; 8]);
        assert_eq!(s.retain_last(4).unwrap(), 4);
        assert_eq!(s.series_len(), 4);
        assert_eq!(s.stream_offset(), 4);
        s.append(&[2.0; 3]);
        assert_eq!(s.series_len(), 4);
        assert_eq!(s.stream_offset(), 7);
        assert_eq!(s.finish(), 1.0 + 2.0 * 3.0);
    }
}
