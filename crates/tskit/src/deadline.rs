//! Wall-clock / work-budget stopping conditions for budgeted refresh
//! loops.
//!
//! Both online subsystems of this workspace — the matrix-profile
//! discord monitor (`egi_discord::streaming`) and the streaming
//! ensemble grammar-induction detector (`egi_core::streaming`) — share
//! the same control problem: between appends of live traffic, spend a
//! *bounded* slice of time tightening the current answer, then hand
//! control back to the caller. [`Deadline`] is that bound, expressed as
//! a wall-clock instant, a unit-of-work budget, or both; it lives here,
//! in the substrate crate, so every streaming driver in the workspace
//! speaks one deadline type.
//!
//! The contract every driver honors: the condition is checked **before**
//! each unit of work, so a wall-clock deadline is overshot by at most
//! one unit's work (one MASS query for the discord monitor, one member
//! refresh for the ensemble detector) and an already-expired deadline
//! runs zero units.

use std::time::{Duration, Instant};

/// A stopping condition for budgeted refresh loops: a wall-clock
/// instant, a unit-of-work budget, or both.
///
/// "Units" are whatever the driving loop processes between checks —
/// MASS queries for `AnytimeStamp` / `StreamingDiscordMonitor`, member
/// refreshes for `StreamingEnsembleDetector`. Drivers check the
/// condition **before** each unit, so a wall-clock deadline is overshot
/// by at most one unit's work and an already-expired deadline runs zero
/// units.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use egi_tskit::Deadline;
///
/// // At most 5 ms of work…
/// let wall = Deadline::after(Duration::from_millis(5));
/// // …or at most 100 units, whichever is hit first.
/// let capped = wall.with_query_cap(100);
/// assert!(!capped.expired(0));
/// assert!(Deadline::queries(10).expired(10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
    max_queries: usize,
}

impl Deadline {
    /// Expires once the wall clock reaches `instant`.
    pub fn at(instant: Instant) -> Self {
        Self {
            at: Some(instant),
            max_queries: usize::MAX,
        }
    }

    /// Expires `budget` from now (the instant is resolved at
    /// construction, so build the deadline right before running).
    pub fn after(budget: Duration) -> Self {
        Self::at(Instant::now() + budget)
    }

    /// Expires after `n` units of work, with no wall-clock bound — the
    /// work-budget API (`run_for`) expressed as a deadline.
    pub fn queries(n: usize) -> Self {
        Self {
            at: None,
            max_queries: n,
        }
    }

    /// Never expires (run to completion).
    pub fn unbounded() -> Self {
        Self {
            at: None,
            max_queries: usize::MAX,
        }
    }

    /// Additionally caps the number of units processed.
    pub fn with_query_cap(self, n: usize) -> Self {
        Self {
            max_queries: self.max_queries.min(n),
            ..self
        }
    }

    /// `true` once the wall clock or the work budget is exhausted,
    /// given `processed` units already ran under this deadline.
    pub fn expired(&self, processed: usize) -> bool {
        processed >= self.max_queries || self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// How far past the wall-clock instant the clock has run, in
    /// integer nanoseconds (saturating). `None` when this deadline has
    /// no wall-clock bound or the instant has not been reached yet.
    /// Drivers call this after their loop exits to report observed
    /// overshoot — which the check-before-each-unit contract bounds by
    /// one unit's work.
    pub fn overshoot_nanos(&self) -> Option<u64> {
        let at = self.at?;
        let now = Instant::now();
        if now < at {
            return None;
        }
        Some(u64::try_from((now - at).as_nanos()).unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_budget_expires_exactly_at_cap() {
        let d = Deadline::queries(3);
        assert!(!d.expired(0));
        assert!(!d.expired(2));
        assert!(d.expired(3));
        assert!(d.expired(4));
    }

    #[test]
    fn already_past_instant_is_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.expired(0));
    }

    #[test]
    fn unbounded_never_expires_on_units() {
        let d = Deadline::unbounded();
        assert!(!d.expired(usize::MAX - 1));
    }

    #[test]
    fn cap_composes_with_wall_clock() {
        let far = Deadline::at(Instant::now() + Duration::from_secs(3600)).with_query_cap(2);
        assert!(!far.expired(1));
        assert!(far.expired(2));
    }

    #[test]
    fn tighter_cap_wins() {
        let d = Deadline::queries(5).with_query_cap(2);
        assert!(d.expired(2));
        let d = Deadline::queries(2).with_query_cap(5);
        assert!(d.expired(2));
        assert!(!d.expired(1));
    }
}
