//! Evaluation corpus assembly (paper Section 7.1.1).
//!
//! The paper builds each test series by concatenating 20 randomly drawn
//! "normal" instances and planting one randomly drawn "anomalous" instance
//! at a random position between 40% and 80% of the series; 25 such series
//! are generated per dataset.
//!
//! We plant at *instance boundaries* whose offset falls inside the 40–80%
//! band. Splitting a normal instance mid-cycle would manufacture two
//! artificial discontinuities at the insertion edges, handing every
//! detector a trivially findable artifact that the real corpora do not
//! contain; boundary insertion keeps the normal background intact while the
//! planted position remains uniformly random over the allowed boundaries.

use rand::Rng;

use crate::gen::ucr::UcrFamily;
use crate::series::TimeSeries;

/// A generated test series with ground-truth anomaly annotation.
#[derive(Debug, Clone)]
pub struct LabeledSeries {
    /// The full concatenated series.
    pub series: TimeSeries,
    /// Start offset of the planted anomalous instance.
    pub gt_start: usize,
    /// Length of the planted anomalous instance.
    pub gt_len: usize,
    /// Family the series was drawn from.
    pub family: UcrFamily,
}

impl LabeledSeries {
    /// Ground truth as a `(start, length)` interval.
    pub fn ground_truth(&self) -> (usize, usize) {
        (self.gt_start, self.gt_len)
    }
}

/// Parameters of corpus generation.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// Dataset family to draw instances from.
    pub family: UcrFamily,
    /// Number of normal instances concatenated per series (paper: 20).
    pub normal_instances: usize,
    /// Number of labeled series to generate (paper: 25).
    pub series_count: usize,
    /// Fractional band `[low, high]` of the series where the anomaly is
    /// planted (paper: `[0.4, 0.8]`).
    pub plant_band: (f64, f64),
}

impl CorpusSpec {
    /// The paper's configuration for `family`: 20 normals, 25 series,
    /// plant band 40–80%.
    pub fn paper(family: UcrFamily) -> Self {
        Self {
            family,
            normal_instances: 20,
            series_count: 25,
            plant_band: (0.4, 0.8),
        }
    }

    /// Expected total length of each generated series
    /// (`(normal_instances + 1) × instance_length`).
    pub fn series_length(&self) -> usize {
        (self.normal_instances + 1) * self.family.instance_length()
    }

    /// Generates one labeled series.
    pub fn generate_one(&self, rng: &mut impl Rng) -> LabeledSeries {
        assert!(
            self.normal_instances >= 2,
            "need at least 2 normal instances"
        );
        let ilen = self.family.instance_length();
        let total = self.series_length();
        let (lo, hi) = self.plant_band;
        assert!(
            (0.0..=1.0).contains(&lo) && lo < hi && hi <= 1.0,
            "bad plant band"
        );

        // Choose the boundary (in instance units) where the anomaly goes.
        // Boundary b means: b normal instances, then the anomaly.
        let lo_b = (lo * total as f64 / ilen as f64).ceil() as usize;
        let hi_b = (hi * total as f64 / ilen as f64).floor() as usize;
        let lo_b = lo_b.clamp(1, self.normal_instances - 1);
        let hi_b = hi_b.clamp(lo_b, self.normal_instances - 1);
        let plant_at = rng.gen_range(lo_b..=hi_b);

        let mut values = Vec::with_capacity(total);
        let mut gt_start = 0;
        for i in 0..self.normal_instances + 1 {
            if i == plant_at {
                gt_start = values.len();
                values.extend(self.family.anomalous_instance(rng));
            } else {
                values.extend(self.family.normal_instance(rng));
            }
        }
        LabeledSeries {
            series: TimeSeries::from_vec(values),
            gt_start,
            gt_len: ilen,
            family: self.family,
        }
    }

    /// Generates the full corpus (`series_count` labeled series).
    pub fn generate(&self, rng: &mut impl Rng) -> Vec<LabeledSeries> {
        (0..self.series_count)
            .map(|_| self.generate_one(rng))
            .collect()
    }
}

/// A series containing several planted anomalies (paper Section 7.5).
#[derive(Debug, Clone)]
pub struct MultiAnomalySeries {
    /// The full series.
    pub series: TimeSeries,
    /// `(start, length)` of every planted anomalous instance.
    pub ground_truth: Vec<(usize, usize)>,
}

/// Generates a series of `total_instances` instances from `family` with
/// `anomaly_count` anomalous instances planted at distinct random
/// boundaries (never the first or last instance, never adjacent to each
/// other so candidates remain separable).
///
/// The paper's Section 7.5 uses StarLightCurve with 42 instances
/// (length 43008) and 2 anomalies.
pub fn generate_multi_anomaly(
    family: UcrFamily,
    total_instances: usize,
    anomaly_count: usize,
    rng: &mut impl Rng,
) -> MultiAnomalySeries {
    assert!(anomaly_count >= 1);
    assert!(
        total_instances >= 2 * anomaly_count + 2,
        "not enough instances to separate {anomaly_count} anomalies"
    );
    let ilen = family.instance_length();
    // Pick anomaly slots: not first/last, pairwise non-adjacent.
    let mut slots: Vec<usize> = Vec::with_capacity(anomaly_count);
    let mut guard = 0;
    while slots.len() < anomaly_count {
        let cand = rng.gen_range(1..total_instances - 1);
        if slots.iter().all(|&s| s.abs_diff(cand) > 1) {
            slots.push(cand);
        }
        guard += 1;
        assert!(guard < 10_000, "could not place anomalies");
    }
    slots.sort_unstable();

    let mut values = Vec::with_capacity(total_instances * ilen);
    let mut ground_truth = Vec::with_capacity(anomaly_count);
    for i in 0..total_instances {
        if slots.binary_search(&i).is_ok() {
            ground_truth.push((values.len(), ilen));
            values.extend(family.anomalous_instance(rng));
        } else {
            values.extend(family.normal_instance(rng));
        }
    }
    MultiAnomalySeries {
        series: TimeSeries::from_vec(values),
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_spec_lengths_match_table3() {
        // Table 3 series lengths are 21 × instance length for the exact
        // datasets (GunPoint 3150, Wafer 3150, Trace 5775, SLC 21504,
        // ECGFiveDays 2772).
        assert_eq!(CorpusSpec::paper(UcrFamily::GunPoint).series_length(), 3150);
        assert_eq!(CorpusSpec::paper(UcrFamily::Wafer).series_length(), 3150);
        assert_eq!(CorpusSpec::paper(UcrFamily::Trace).series_length(), 5775);
        assert_eq!(
            CorpusSpec::paper(UcrFamily::StarLightCurve).series_length(),
            21504
        );
        assert_eq!(
            CorpusSpec::paper(UcrFamily::EcgFiveDays).series_length(),
            2772
        );
    }

    #[test]
    fn generated_series_has_expected_length_and_gt() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = CorpusSpec::paper(UcrFamily::GunPoint);
        let ls = spec.generate_one(&mut rng);
        assert_eq!(ls.series.len(), spec.series_length());
        assert_eq!(ls.gt_len, 150);
        assert_eq!(
            ls.gt_start % 150,
            0,
            "anomaly planted off instance boundary"
        );
        assert!(ls.gt_start + ls.gt_len <= ls.series.len());
    }

    #[test]
    fn anomaly_lands_in_plant_band() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = CorpusSpec::paper(UcrFamily::Wafer);
        for _ in 0..50 {
            let ls = spec.generate_one(&mut rng);
            let frac = ls.gt_start as f64 / ls.series.len() as f64;
            // Boundary quantization can nudge slightly outside; allow one
            // instance of slack.
            let slack = 150.0 / ls.series.len() as f64;
            assert!(
                frac >= 0.4 - slack && frac <= 0.8 + slack,
                "anomaly at fraction {frac}"
            );
        }
    }

    #[test]
    fn plant_positions_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = CorpusSpec::paper(UcrFamily::Trace);
        let starts: std::collections::HashSet<usize> = (0..25)
            .map(|_| spec.generate_one(&mut rng).gt_start)
            .collect();
        assert!(
            starts.len() > 3,
            "plant positions not randomized: {starts:?}"
        );
    }

    #[test]
    fn generate_returns_requested_count() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut spec = CorpusSpec::paper(UcrFamily::TwoLeadEcg);
        spec.series_count = 7;
        assert_eq!(spec.generate(&mut rng).len(), 7);
    }

    #[test]
    fn multi_anomaly_layout() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = generate_multi_anomaly(UcrFamily::StarLightCurve, 42, 2, &mut rng);
        assert_eq!(m.series.len(), 43008); // paper Section 7.5
        assert_eq!(m.ground_truth.len(), 2);
        let (s1, l1) = m.ground_truth[0];
        let (s2, _) = m.ground_truth[1];
        assert!(s1 + l1 <= s2, "anomalies overlap");
        // Non-adjacent: at least one normal instance between them.
        assert!(s2 - (s1 + l1) >= 1024);
    }

    #[test]
    #[should_panic(expected = "not enough instances")]
    fn multi_anomaly_rejects_crowded_layout() {
        let mut rng = StdRng::seed_from_u64(6);
        generate_multi_anomaly(UcrFamily::GunPoint, 4, 2, &mut rng);
    }

    #[test]
    fn ground_truth_region_differs_from_background() {
        // The planted region should be structurally different: compare the
        // anomalous instance with the instance right before it.
        let mut rng = StdRng::seed_from_u64(7);
        let spec = CorpusSpec::paper(UcrFamily::StarLightCurve);
        let ls = spec.generate_one(&mut rng);
        let ilen = ls.gt_len;
        let anom = &ls.series[ls.gt_start..ls.gt_start + ilen];
        let prev = &ls.series[ls.gt_start - ilen..ls.gt_start];
        let dist: f64 = anom
            .iter()
            .zip(prev)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "planted anomaly indistinct (dist {dist})");
    }
}
