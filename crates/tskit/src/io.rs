//! Minimal CSV I/O for time series interchange.
//!
//! The evaluation binaries persist generated corpora and per-series results
//! so that plots (Figures 8–10) can be regenerated outside Rust. Only the
//! two layouts we actually use are supported:
//!
//! * single column — one observation per line;
//! * multi column — one `(column, value)` table with a header row.
//!
//! A hand-rolled reader keeps the substrate dependency-free; series files
//! are plain numbers, so a full CSV dialect parser would be overkill.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::TimeSeries;

/// Errors produced by the I/O helpers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A cell failed to parse as `f64`.
    Parse {
        /// 1-based line number of the offending cell.
        line: usize,
        /// The cell contents that failed to parse.
        cell: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, cell } => {
                write!(f, "line {line}: cannot parse {cell:?} as a number")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a single-column series from a string (one value per line).
///
/// Blank lines and lines starting with `#` are skipped; a leading header
/// line that does not parse as a number is skipped too.
pub fn parse_series(text: &str) -> Result<TimeSeries, IoError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.parse::<f64>() {
            Ok(v) => out.push(v),
            Err(_) if idx == 0 => continue, // tolerate a header row
            Err(_) => {
                return Err(IoError::Parse {
                    line: idx + 1,
                    cell: line.to_string(),
                })
            }
        }
    }
    Ok(TimeSeries::from_vec(out))
}

/// Reads a single-column series from `path`.
pub fn read_series(path: impl AsRef<Path>) -> Result<TimeSeries, IoError> {
    let text = fs::read_to_string(path)?;
    parse_series(&text)
}

/// Writes a series to `path`, one value per line, full round-trip precision.
pub fn write_series(path: impl AsRef<Path>, series: &[f64]) -> Result<(), IoError> {
    let mut buf = String::with_capacity(series.len() * 12);
    for v in series {
        // `{:?}` on f64 prints the shortest representation that round-trips.
        writeln!(buf, "{v:?}").expect("writing to String cannot fail");
    }
    fs::write(path, buf)?;
    Ok(())
}

/// Serializes named columns of equal length into CSV text with a header.
///
/// # Panics
///
/// Panics if the column lengths differ.
pub fn columns_to_csv(columns: &[(&str, &[f64])]) -> String {
    if columns.is_empty() {
        return String::new();
    }
    let rows = columns[0].1.len();
    for (name, col) in columns {
        assert_eq!(col.len(), rows, "column {name:?} has mismatched length");
    }
    let mut buf = String::new();
    let header: Vec<&str> = columns.iter().map(|(n, _)| *n).collect();
    buf.push_str(&header.join(","));
    buf.push('\n');
    for r in 0..rows {
        for (c, (_, col)) in columns.iter().enumerate() {
            if c > 0 {
                buf.push(',');
            }
            write!(buf, "{:?}", col[r]).expect("writing to String cannot fail");
        }
        buf.push('\n');
    }
    buf
}

/// Writes named columns of equal length as a CSV file with a header row.
pub fn write_columns(path: impl AsRef<Path>, columns: &[(&str, &[f64])]) -> Result<(), IoError> {
    fs::write(path, columns_to_csv(columns))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_column() {
        let ts = parse_series("1.0\n2.5\n-3\n").unwrap();
        assert_eq!(ts.as_slice(), &[1.0, 2.5, -3.0]);
    }

    #[test]
    fn parse_skips_blank_comment_and_header() {
        let ts = parse_series("value\n# comment\n\n1.0\n2.0\n").unwrap();
        assert_eq!(ts.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn parse_rejects_garbage_mid_file() {
        let err = parse_series("1.0\nxyz\n").unwrap_err();
        match err {
            IoError::Parse { line, cell } => {
                assert_eq!(line, 2);
                assert_eq!(cell, "xyz");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("egi_tskit_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let original = [1.25, -0.333333333333333, 1e-17, 42.0];
        write_series(&path, &original).unwrap();
        let read = read_series(&path).unwrap();
        assert_eq!(read.as_slice(), &original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn columns_csv_layout() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let csv = columns_to_csv(&[("x", &a), ("y", &b)]);
        assert_eq!(csv, "x,y\n1.0,3.0\n2.0,4.0\n");
    }

    #[test]
    #[should_panic(expected = "mismatched length")]
    fn columns_length_mismatch_panics() {
        let a = [1.0, 2.0];
        let b = [3.0];
        columns_to_csv(&[("x", &a), ("y", &b)]);
    }

    #[test]
    fn empty_columns_is_empty_string() {
        assert_eq!(columns_to_csv(&[]), "");
    }

    #[test]
    fn error_display_formats() {
        let e = IoError::Parse {
            line: 3,
            cell: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
