//! Statistics primitives: prefix sums, z-normalization.
//!
//! [`PrefixStats`] implements the two pre-computed vectors of the paper's
//! Algorithm 2 (FastPAA): `ESum_x(x) = Σ_{i<=x} t_i` and
//! `ESum_xx(x) = Σ_{i<=x} t_i²`. With those, the mean and standard deviation
//! of any subsequence come out in O(1), which is what makes the
//! multi-resolution discretization of Section 6.2 linear in the series
//! length instead of quadratic.

/// Standard deviations below this threshold are treated as zero.
///
/// Subsequences that are (numerically) constant carry no shape information;
/// z-normalizing them would divide by ~0 and amplify floating-point noise
/// into arbitrary shapes. Every consumer in the workspace (SAX, matrix
/// profile, HOTSAX) uses this same threshold so that flat regions are
/// handled consistently.
pub const FLAT_EPSILON: f64 = 1e-10;

/// Relative variance tolerance for flatness detection.
///
/// A window is *flat* when its sample variance is below
/// `FLAT_VAR_RTOL × (mean² + 1)`. The mean-relative form matters because
/// the fast prefix-sum path computes variance as `Σx² − (Σx)²/n`, whose
/// cancellation error scales with the magnitude of the data; an absolute
/// threshold would classify the same window differently in the naive and
/// fast paths.
pub const FLAT_VAR_RTOL: f64 = 1e-12;

/// Shared flatness criterion (see [`FLAT_VAR_RTOL`]).
#[inline]
pub fn is_flat(mean: f64, variance: f64) -> bool {
    !variance.is_finite() || variance < FLAT_VAR_RTOL * (mean * mean + 1.0)
}

/// Arithmetic mean of a slice; `NaN` when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator); `NaN` when `len < 2`.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::NAN;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|&v| (v - m) * (v - m)).sum();
    (ss / (values.len() - 1) as f64).sqrt()
}

/// Population standard deviation (n denominator); `NaN` when empty.
pub fn stddev_population(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let m = mean(values);
    let ss: f64 = values.iter().map(|&v| (v - m) * (v - m)).sum();
    (ss / values.len() as f64).sqrt()
}

/// Z-normalizes `values` in place (mean 0, sample stddev 1).
///
/// Near-flat inputs (stddev < [`FLAT_EPSILON`]) become all-zeros.
pub fn znormalize(values: &mut [f64]) {
    let n = values.len();
    if n == 0 {
        return;
    }
    let m = mean(values);
    let var = if n < 2 {
        0.0
    } else {
        let ss: f64 = values.iter().map(|&v| (v - m) * (v - m)).sum();
        ss / (n - 1) as f64
    };
    if is_flat(m, var) {
        values.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let s = var.sqrt();
    for v in values.iter_mut() {
        *v = (*v - m) / s;
    }
}

/// Writes the z-normalized form of `src` into `dst` (lengths must match).
///
/// # Panics
///
/// Panics if `src.len() != dst.len()`.
pub fn znormalize_into(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "znormalize_into: length mismatch");
    dst.copy_from_slice(src);
    znormalize(dst);
}

/// Prefix-sum statistics over a time series (paper Algorithm 2 inputs).
///
/// Construction is O(N); afterwards the mean, variance, and standard
/// deviation of any half-open range `[start, end)` are O(1).
///
/// # Examples
///
/// ```
/// use egi_tskit::PrefixStats;
///
/// let data = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ps = PrefixStats::new(&data);
/// assert_eq!(ps.range_sum(1, 4), 9.0);          // 2+3+4
/// assert!((ps.range_mean(0, 5) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixStats {
    /// `sum[x] = Σ_{i < x} t_i`, with `sum[0] = 0`. Length `N + 1`.
    sum: Vec<f64>,
    /// `sum_sq[x] = Σ_{i < x} t_i²`, with `sum_sq[0] = 0`. Length `N + 1`.
    sum_sq: Vec<f64>,
}

impl PrefixStats {
    /// Builds the prefix sums for `values` in a single pass.
    pub fn new(values: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(values.len() + 1);
        let mut sum_sq = Vec::with_capacity(values.len() + 1);
        let (mut s, mut ss) = (0.0f64, 0.0f64);
        sum.push(0.0);
        sum_sq.push(0.0);
        for &v in values {
            s += v;
            ss += v * v;
            sum.push(s);
            sum_sq.push(ss);
        }
        Self { sum, sum_sq }
    }

    /// Extends the prefix sums with further series points.
    ///
    /// The accumulation continues from the stored running totals, so the
    /// result is **bit-identical** to rebuilding from scratch over the
    /// concatenated series: `PrefixStats::new(&[a, b].concat())` and
    /// `{ let mut p = PrefixStats::new(&a); p.extend(&b); p }` hold the
    /// same values in every slot. The online discord monitor relies on
    /// this to keep its incremental window statistics exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use egi_tskit::PrefixStats;
    ///
    /// let mut incremental = PrefixStats::new(&[1.0, 2.0]);
    /// incremental.extend(&[3.0, 4.0]);
    /// let batch = PrefixStats::new(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(incremental.range_sum(0, 4), batch.range_sum(0, 4));
    /// assert_eq!(incremental.len(), 4);
    /// ```
    pub fn extend(&mut self, values: &[f64]) {
        let (mut s, mut ss) = (
            *self.sum.last().expect("sum always has the zero sentinel"),
            *self
                .sum_sq
                .last()
                .expect("sum_sq always has the zero sentinel"),
        );
        self.sum.reserve(values.len());
        self.sum_sq.reserve(values.len());
        for &v in values {
            s += v;
            ss += v * v;
            self.sum.push(s);
            self.sum_sq.push(ss);
        }
    }

    /// Rebuilds the prefix sums over `suffix` — the surviving points of
    /// a front eviction — reusing the existing allocations.
    ///
    /// A prefix sum is a *cumulative* quantity: dropping the first
    /// points of the series shifts every accumulation, and subtracting
    /// the evicted head's totals from the stored sums is **not**
    /// bit-identical to re-accumulating from the suffix's first point
    /// (floating-point addition is not associative). Suffix parity —
    /// the streaming subsystems' contract that a post-eviction state
    /// equals a fresh batch build over the suffix — therefore requires
    /// the re-accumulation this method performs. Cost: `O(suffix.len())`,
    /// which every caller's eviction path already pays elsewhere (the
    /// discord monitor's spectrum re-transform, the ensemble's PAA
    /// stream rebuild).
    ///
    /// The result is **bit-identical** to `PrefixStats::new(suffix)` in
    /// every slot (it runs the identical left-to-right accumulation).
    ///
    /// # Examples
    ///
    /// ```
    /// use egi_tskit::PrefixStats;
    ///
    /// let full = [1.0, 2.5, -3.0, 4.0, 0.5];
    /// let mut stats = PrefixStats::new(&full);
    /// stats.rebase(&full[2..]); // evict the first two points
    /// let fresh = PrefixStats::new(&full[2..]);
    /// assert_eq!(stats.len(), 3);
    /// assert_eq!(stats.range_sum(0, 3), fresh.range_sum(0, 3));
    /// ```
    pub fn rebase(&mut self, suffix: &[f64]) {
        self.sum.clear();
        self.sum_sq.clear();
        self.sum.push(0.0);
        self.sum_sq.push(0.0);
        self.extend(suffix);
    }

    /// Releases slack capacity left behind by
    /// [`rebase`](PrefixStats::rebase) (which truncates lengths but
    /// keeps allocations for reuse) — the statistics layer of the
    /// streaming monitors' `compact`. Values are untouched.
    pub fn shrink_to_fit(&mut self) {
        self.sum.shrink_to_fit();
        self.sum_sq.shrink_to_fit();
    }

    /// Length of the underlying series.
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// `true` when built over an empty series.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of `values[start..end)`.
    #[inline]
    pub fn range_sum(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.sum.len());
        self.sum[end] - self.sum[start]
    }

    /// Sum of squares of `values[start..end)`.
    #[inline]
    pub fn range_sum_sq(&self, start: usize, end: usize) -> f64 {
        debug_assert!(start <= end && end < self.sum_sq.len());
        self.sum_sq[end] - self.sum_sq[start]
    }

    /// Mean of `values[start..end)`; `NaN` for an empty range.
    #[inline]
    pub fn range_mean(&self, start: usize, end: usize) -> f64 {
        let n = end - start;
        if n == 0 {
            return f64::NAN;
        }
        self.range_sum(start, end) / n as f64
    }

    /// Sample variance (n−1) of `values[start..end)`; `NaN` when `n < 2`.
    ///
    /// Computed as `(Σx² − (Σx)²/n) / (n−1)`, clamped at zero to absorb
    /// floating-point cancellation on near-constant data.
    #[inline]
    pub fn range_variance(&self, start: usize, end: usize) -> f64 {
        let n = end - start;
        if n < 2 {
            return f64::NAN;
        }
        let ex = self.range_sum(start, end);
        let exx = self.range_sum_sq(start, end);
        let var = (exx - ex * ex / n as f64) / (n - 1) as f64;
        var.max(0.0)
    }

    /// Sample standard deviation of `values[start..end)`; `NaN` when `n < 2`.
    #[inline]
    pub fn range_stddev(&self, start: usize, end: usize) -> f64 {
        self.range_variance(start, end).sqrt()
    }

    /// Population variance (n denominator) of `values[start..end)`.
    #[inline]
    pub fn range_variance_population(&self, start: usize, end: usize) -> f64 {
        let n = end - start;
        if n == 0 {
            return f64::NAN;
        }
        let ex = self.range_sum(start, end);
        let exx = self.range_sum_sq(start, end);
        let m = ex / n as f64;
        (exx / n as f64 - m * m).max(0.0)
    }

    /// Population standard deviation of `values[start..end)`.
    #[inline]
    pub fn range_stddev_population(&self, start: usize, end: usize) -> f64 {
        self.range_variance_population(start, end).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn stddev_short_is_nan() {
        assert!(stddev(&[]).is_nan());
        assert!(stddev(&[1.0]).is_nan());
    }

    #[test]
    fn stddev_matches_textbook() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev_population(&xs) - 2.0).abs() < 1e-12);
        assert!((stddev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn znormalize_basic() {
        let mut xs = vec![1.0, 2.0, 3.0];
        znormalize(&mut xs);
        assert!(mean(&xs).abs() < 1e-12);
        assert!((stddev(&xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_flat_to_zero() {
        let mut xs = vec![5.0; 10];
        znormalize(&mut xs);
        assert!(xs.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn znormalize_single_point_to_zero() {
        let mut xs = vec![42.0];
        znormalize(&mut xs);
        assert_eq!(xs, vec![0.0]);
    }

    #[test]
    fn znormalize_into_matches_in_place() {
        let src = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut dst = [0.0; 5];
        znormalize_into(&src, &mut dst);
        let mut expected = src;
        znormalize(&mut expected);
        assert_eq!(dst, expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn znormalize_into_length_mismatch_panics() {
        let src = [1.0, 2.0];
        let mut dst = [0.0; 3];
        znormalize_into(&src, &mut dst);
    }

    #[test]
    fn prefix_sums_match_direct() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.7).sin() * 3.0 + 1.0)
            .collect();
        let ps = PrefixStats::new(&xs);
        assert_eq!(ps.len(), 100);
        for &(s, e) in &[(0usize, 100usize), (3, 17), (50, 51), (10, 10), (98, 100)] {
            let direct_sum: f64 = xs[s..e].iter().sum();
            assert!(
                (ps.range_sum(s, e) - direct_sum).abs() < 1e-9,
                "sum range {s}..{e}"
            );
            if e - s >= 1 {
                assert!(
                    (ps.range_mean(s, e) - mean(&xs[s..e])).abs() < 1e-9,
                    "mean range {s}..{e}"
                );
            }
            if e - s >= 2 {
                assert!(
                    (ps.range_stddev(s, e) - stddev(&xs[s..e])).abs() < 1e-9,
                    "stddev range {s}..{e}"
                );
            }
        }
    }

    #[test]
    fn prefix_empty_range_behaviour() {
        let ps = PrefixStats::new(&[1.0, 2.0, 3.0]);
        assert_eq!(ps.range_sum(1, 1), 0.0);
        assert!(ps.range_mean(2, 2).is_nan());
        assert!(ps.range_variance(0, 1).is_nan());
    }

    #[test]
    fn prefix_variance_nonnegative_on_constant() {
        let ps = PrefixStats::new(&[1e9; 64]);
        for s in 0..60 {
            assert!(ps.range_variance(s, s + 4) >= 0.0);
            assert!(ps.range_stddev_population(s, s + 4) >= 0.0);
        }
    }

    #[test]
    fn prefix_extend_is_bit_identical_to_batch() {
        let full: Vec<f64> = (0..200)
            .map(|i| (i as f64 * 0.83).sin() * 7.0 - 2.5)
            .collect();
        for split in [0usize, 1, 63, 199, 200] {
            let mut inc = PrefixStats::new(&full[..split]);
            inc.extend(&full[split..]);
            let batch = PrefixStats::new(&full);
            assert_eq!(inc.len(), batch.len());
            for e in 0..=full.len() {
                assert_eq!(
                    inc.range_sum(0, e),
                    batch.range_sum(0, e),
                    "split {split} end {e}"
                );
                assert_eq!(
                    inc.range_sum_sq(0, e),
                    batch.range_sum_sq(0, e),
                    "split {split} end {e}"
                );
            }
        }
    }

    #[test]
    fn prefix_extend_in_many_chunks() {
        let full: Vec<f64> = (0..97).map(|i| ((i * i) as f64 * 0.01).cos()).collect();
        let mut inc = PrefixStats::new(&[]);
        for chunk in full.chunks(7) {
            inc.extend(chunk);
        }
        let batch = PrefixStats::new(&full);
        for e in 0..=full.len() {
            assert_eq!(inc.range_sum(0, e), batch.range_sum(0, e));
            assert_eq!(inc.range_sum_sq(0, e), batch.range_sum_sq(0, e));
        }
    }

    #[test]
    fn prefix_rebase_is_bit_identical_to_fresh_build() {
        let full: Vec<f64> = (0..150)
            .map(|i| (i as f64 * 0.47).sin() * 9.0 + 0.3)
            .collect();
        for cut in [0usize, 1, 64, 149, 150] {
            let mut rebased = PrefixStats::new(&full);
            rebased.rebase(&full[cut..]);
            let fresh = PrefixStats::new(&full[cut..]);
            assert_eq!(rebased.len(), fresh.len(), "cut {cut}");
            for e in 0..=rebased.len() {
                assert_eq!(rebased.range_sum(0, e), fresh.range_sum(0, e), "cut {cut}");
                assert_eq!(
                    rebased.range_sum_sq(0, e),
                    fresh.range_sum_sq(0, e),
                    "cut {cut}"
                );
            }
        }
    }

    #[test]
    fn prefix_rebase_then_extend_matches_batch_over_suffix() {
        // The eviction-then-append path of both streaming subsystems:
        // rebase to a suffix, keep extending — every slot must stay
        // bitwise on the batch path over the concatenation.
        let head: Vec<f64> = (0..60).map(|i| (i as f64 * 0.9).cos() * 2.0).collect();
        let tail: Vec<f64> = (0..40).map(|i| (i as f64 * 1.3).sin() - 0.7).collect();
        let mut inc = PrefixStats::new(&head);
        inc.rebase(&head[25..]);
        inc.extend(&tail);
        let mut suffix = head[25..].to_vec();
        suffix.extend_from_slice(&tail);
        let batch = PrefixStats::new(&suffix);
        for e in 0..=suffix.len() {
            assert_eq!(inc.range_sum(0, e), batch.range_sum(0, e));
            assert_eq!(inc.range_sum_sq(0, e), batch.range_sum_sq(0, e));
        }
    }

    #[test]
    fn prefix_on_empty_series() {
        let ps = PrefixStats::new(&[]);
        assert!(ps.is_empty());
        assert_eq!(ps.range_sum(0, 0), 0.0);
    }
}
