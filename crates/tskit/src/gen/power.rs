//! Appliance power-usage generators.
//!
//! Stand-ins for the REFIT household electricity traces used by the paper:
//! the dishwasher snippet of Figure 1 (parameter-sensitivity motivation) and
//! the 600,000-point fridge-freezer series of the Figure 9 case study.
//! Real appliance loads are rectangular duty cycles with heater spikes;
//! that is exactly what we synthesize, with controlled anomalous cycles
//! planted at known positions so the case study can be scored.

use rand::Rng;

use super::noise::gaussian;

/// A rectangular on/off duty cycle with timing jitter.
#[derive(Debug, Clone, Copy)]
pub struct DutyCycle {
    /// Samples the appliance stays on per cycle.
    pub on_len: usize,
    /// Samples the appliance stays off per cycle.
    pub off_len: usize,
    /// Power draw while on.
    pub on_power: f64,
    /// Standby power while off.
    pub off_power: f64,
    /// Relative timing jitter (fraction of each segment length).
    pub jitter: f64,
}

impl DutyCycle {
    /// Total nominal cycle length in samples.
    pub fn period(&self) -> usize {
        self.on_len + self.off_len
    }
}

/// A generated power trace plus the ground-truth anomalous intervals.
#[derive(Debug, Clone)]
pub struct PowerProfile {
    /// The power readings.
    pub values: Vec<f64>,
    /// `(start, length)` of every planted anomalous event.
    pub anomalies: Vec<(usize, usize)>,
}

fn jittered(len: usize, jitter: f64, rng: &mut impl Rng) -> usize {
    if jitter <= 0.0 || len == 0 {
        return len;
    }
    let delta = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
    ((len as f64 * delta).round() as usize).max(1)
}

/// Appends one fridge-freezer compressor cycle: off period at standby
/// power, then a compressor plateau with slight exponential sag.
fn push_fridge_cycle(out: &mut Vec<f64>, cycle: &DutyCycle, rng: &mut impl Rng) {
    let off = jittered(cycle.off_len, cycle.jitter, rng);
    let on = jittered(cycle.on_len, cycle.jitter, rng);
    for _ in 0..off {
        out.push(cycle.off_power + gaussian(rng).abs() * 0.5);
    }
    for i in 0..on {
        // Compressor draw sags ~8% over the on-period.
        let sag = 1.0 - 0.08 * (i as f64 / on.max(1) as f64);
        out.push(cycle.on_power * sag + gaussian(rng) * 1.5);
    }
}

/// An anomalous cycle: compressor runs at half power, twice as long, with a
/// low-frequency oscillation — an "unusual shape" like Figure 9(c).
fn push_fridge_anomaly_shape(
    out: &mut Vec<f64>,
    cycle: &DutyCycle,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let start = out.len();
    let off = cycle.off_len / 2;
    let on = cycle.on_len * 2;
    for _ in 0..off {
        out.push(cycle.off_power + gaussian(rng).abs() * 0.5);
    }
    for i in 0..on {
        let osc = 1.0 + 0.35 * (std::f64::consts::TAU * i as f64 / 120.0).sin();
        out.push(cycle.on_power * 0.55 * osc + gaussian(rng) * 1.5);
    }
    (start, out.len() - start)
}

/// An anomalous event: normal cycle overlaid with short high spikes
/// (defrost heater bursts) — like Figure 9(d).
fn push_fridge_anomaly_spikes(
    out: &mut Vec<f64>,
    cycle: &DutyCycle,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let start = out.len();
    push_fridge_cycle(out, cycle, rng);
    let len = out.len() - start;
    // Overlay 6 short spikes at random offsets within the event.
    for _ in 0..6 {
        let pos = start + rng.gen_range(0..len.max(1));
        let spike_len = rng.gen_range(4..12).min(out.len() - pos);
        for v in out[pos..pos + spike_len].iter_mut() {
            *v += 400.0 + gaussian(rng) * 20.0;
        }
    }
    (start, len)
}

/// Generates a fridge-freezer power trace of at least `total_len` samples
/// (truncated to exactly `total_len`) with two planted anomalies of
/// different kinds at roughly 1/3 and 2/3 of the series.
///
/// Nominal cycle length is `cycle_len` samples (the paper uses a sliding
/// window of 900 ≈ one cycle).
pub fn fridge_freezer_series(
    total_len: usize,
    cycle_len: usize,
    rng: &mut impl Rng,
) -> PowerProfile {
    assert!(cycle_len >= 16, "cycle_len too small");
    let cycle = DutyCycle {
        on_len: cycle_len * 2 / 5,
        off_len: cycle_len - cycle_len * 2 / 5,
        on_power: 85.0,
        off_power: 2.0,
        jitter: 0.08,
    };
    let mut values = Vec::with_capacity(total_len + 3 * cycle_len);
    let mut anomalies = Vec::new();
    let t1 = total_len / 3;
    let t2 = 2 * total_len / 3;
    let mut planted1 = false;
    let mut planted2 = false;
    while values.len() < total_len {
        if !planted1 && values.len() >= t1 {
            anomalies.push(push_fridge_anomaly_shape(&mut values, &cycle, rng));
            planted1 = true;
        } else if !planted2 && values.len() >= t2 {
            anomalies.push(push_fridge_anomaly_spikes(&mut values, &cycle, rng));
            planted2 = true;
        } else {
            push_fridge_cycle(&mut values, &cycle, rng);
        }
    }
    values.truncate(total_len);
    // Drop anomalies that were truncated away entirely.
    anomalies.retain(|&(s, _)| s < total_len);
    for a in anomalies.iter_mut() {
        a.1 = a.1.min(total_len - a.0);
    }
    PowerProfile { values, anomalies }
}

/// Appends one dishwasher cycle: idle, pump phase with two heater plateaus.
fn push_dishwasher_cycle(out: &mut Vec<f64>, short_heating: bool, rng: &mut impl Rng) {
    let idle = jittered(120, 0.1, rng);
    for _ in 0..idle {
        out.push(gaussian(rng).abs() * 0.3);
    }
    // Pump background runs through the whole wash.
    let phases: &[(usize, f64)] = if short_heating {
        // Anomalous cycle of Figure 1: unusually short heating period.
        &[
            (40, 60.0),
            (18, 2000.0),
            (40, 60.0),
            (10, 2000.0),
            (30, 60.0),
        ]
    } else {
        &[
            (40, 60.0),
            (60, 2000.0),
            (40, 60.0),
            (50, 2000.0),
            (30, 60.0),
        ]
    };
    for &(len, power) in phases {
        let len = jittered(len, 0.08, rng);
        for _ in 0..len {
            out.push(power + gaussian(rng) * power.max(10.0) * 0.01);
        }
    }
}

/// Generates a dishwasher trace of `n_cycles` wash cycles with the cycle at
/// index `anomalous_at` (if given) replaced by a short-heating anomaly.
///
/// Returns the trace and the `(start, length)` of the anomalous cycle when
/// one was planted.
pub fn dishwasher_series(
    n_cycles: usize,
    anomalous_at: Option<usize>,
    rng: &mut impl Rng,
) -> PowerProfile {
    let mut values = Vec::new();
    let mut anomalies = Vec::new();
    for c in 0..n_cycles {
        let is_anomalous = anomalous_at == Some(c);
        let start = values.len();
        push_dishwasher_cycle(&mut values, is_anomalous, rng);
        if is_anomalous {
            anomalies.push((start, values.len() - start));
        }
    }
    PowerProfile { values, anomalies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fridge_series_length_and_anomaly_count() {
        let mut rng = StdRng::seed_from_u64(20);
        let p = fridge_freezer_series(60_000, 900, &mut rng);
        assert_eq!(p.values.len(), 60_000);
        assert_eq!(p.anomalies.len(), 2);
        for &(s, l) in &p.anomalies {
            assert!(s + l <= 60_000);
            assert!(l > 0);
        }
    }

    #[test]
    fn fridge_anomalies_land_near_thirds() {
        let mut rng = StdRng::seed_from_u64(21);
        let p = fridge_freezer_series(90_000, 900, &mut rng);
        let (s1, _) = p.anomalies[0];
        let (s2, _) = p.anomalies[1];
        assert!(
            (s1 as f64 / 90_000.0 - 1.0 / 3.0).abs() < 0.05,
            "s1 at {s1}"
        );
        assert!(
            (s2 as f64 / 90_000.0 - 2.0 / 3.0).abs() < 0.05,
            "s2 at {s2}"
        );
    }

    #[test]
    fn fridge_cycles_alternate_on_off() {
        let mut rng = StdRng::seed_from_u64(22);
        let p = fridge_freezer_series(10_000, 900, &mut rng);
        let high = p.values.iter().filter(|&&v| v > 40.0).count();
        let frac = high as f64 / 10_000.0;
        // Duty ratio is 2/5 on.
        assert!((0.25..0.6).contains(&frac), "on-fraction {frac}");
    }

    #[test]
    fn spike_anomaly_contains_high_power() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = fridge_freezer_series(120_000, 900, &mut rng);
        let (s, l) = p.anomalies[1];
        let max_in = p.values[s..s + l].iter().cloned().fold(0.0, f64::max);
        assert!(max_in > 300.0, "spike anomaly max {max_in}");
    }

    #[test]
    fn dishwasher_plants_anomaly_where_asked() {
        let mut rng = StdRng::seed_from_u64(24);
        let p = dishwasher_series(8, Some(4), &mut rng);
        assert_eq!(p.anomalies.len(), 1);
        let (s, l) = p.anomalies[0];
        assert!(l > 50);
        // Anomalous cycle is shorter than a normal one (short heating).
        let normal_cycle_len = p.values.len() / 8;
        assert!(l < normal_cycle_len + 200);
        assert!(s > 0);
    }

    #[test]
    fn dishwasher_without_anomaly() {
        let mut rng = StdRng::seed_from_u64(25);
        let p = dishwasher_series(5, None, &mut rng);
        assert!(p.anomalies.is_empty());
        assert!(p.values.iter().cloned().fold(0.0, f64::max) > 1500.0);
    }

    #[test]
    fn duty_cycle_period() {
        let c = DutyCycle {
            on_len: 300,
            off_len: 600,
            on_power: 80.0,
            off_power: 2.0,
            jitter: 0.0,
        };
        assert_eq!(c.period(), 900);
    }
}
