//! Synthetic electroencephalogram generator.
//!
//! EEG is well approximated for benchmarking purposes as a superposition of
//! band-limited oscillations (delta/theta/alpha/beta rhythms) with random
//! phases plus broadband noise. The result has the statistical character
//! that matters for the Figure 8 scalability run: locally oscillatory,
//! globally non-repeating, so both SAX discretization and matrix profile
//! computation see realistic entropy.

use rand::Rng;

use super::noise::gaussian;

/// One oscillatory component with slowly drifting amplitude.
struct Band {
    omega: f64,
    phase: f64,
    amp: f64,
    /// Period (samples) of the slow amplitude modulation envelope.
    env_period: f64,
    env_phase: f64,
}

/// Generates `n` samples of EEG-like signal at a nominal `fs` samples/sec.
///
/// Four canonical bands are synthesized (centre frequencies ~2, 6, 10,
/// 20 Hz) with random phases, plus `noise_sigma` white noise.
pub fn eeg_series(n: usize, fs: f64, noise_sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(fs > 0.0, "sampling rate must be positive");
    let centre_freqs = [2.0, 6.0, 10.0, 20.0];
    let amps = [1.0, 0.7, 1.2, 0.4];
    let bands: Vec<Band> = centre_freqs
        .iter()
        .zip(amps.iter())
        .map(|(&f, &a)| {
            // ±15% random detuning per realization.
            let f_actual = f * (1.0 + 0.15 * (rng.gen::<f64>() * 2.0 - 1.0));
            Band {
                omega: std::f64::consts::TAU * f_actual / fs,
                phase: rng.gen::<f64>() * std::f64::consts::TAU,
                amp: a,
                env_period: fs * (2.0 + 3.0 * rng.gen::<f64>()),
                env_phase: rng.gen::<f64>() * std::f64::consts::TAU,
            }
        })
        .collect();

    (0..n)
        .map(|i| {
            let t = i as f64;
            let mut v = 0.0;
            for b in &bands {
                // Envelope in [0.25, 1.0]: rhythms wax and wane.
                let env =
                    0.625 + 0.375 * (std::f64::consts::TAU * t / b.env_period + b.env_phase).sin();
                v += b.amp * env * (b.omega * t + b.phase).sin();
            }
            if noise_sigma > 0.0 {
                v += gaussian(rng) * noise_sigma;
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn has_requested_length_and_is_finite() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = eeg_series(50_000, 128.0, 0.2, &mut rng);
        assert_eq!(s.len(), 50_000);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn is_zero_mean_oscillation() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = eeg_series(100_000, 128.0, 0.1, &mut rng);
        assert!(crate::stats::mean(&s).abs() < 0.05);
        assert!(crate::stats::stddev(&s) > 0.5);
    }

    #[test]
    fn different_seeds_give_different_signals() {
        let a = eeg_series(512, 128.0, 0.0, &mut StdRng::seed_from_u64(1));
        let b = eeg_series(512, 128.0, 0.0, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces() {
        let a = eeg_series(512, 128.0, 0.1, &mut StdRng::seed_from_u64(5));
        let b = eeg_series(512, 128.0, 0.1, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_fs_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        eeg_series(10, 0.0, 0.0, &mut rng);
    }
}
