//! Gaussian noise primitives.
//!
//! `rand` alone ships only uniform distributions; the standard normal is
//! produced with the Box–Muller transform so the substrate does not need
//! `rand_distr`.

use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// Uses the polar-free cosine form; `u1` is drawn from `(0, 1]` so that
/// `ln(u1)` is finite.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // gen::<f64>() yields [0, 1); flip to (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A vector of `n` i.i.d. `N(0, sigma²)` samples.
pub fn white_noise(n: usize, sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    (0..n).map(|_| gaussian(rng) * sigma).collect()
}

/// Adds `N(0, sigma²)` noise to every element of `values` in place.
pub fn add_noise(values: &mut [f64], sigma: f64, rng: &mut impl Rng) {
    for v in values.iter_mut() {
        *v += gaussian(rng) * sigma;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, stddev};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..200_000).map(|_| gaussian(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean {} too far from 0", mean(&xs));
        assert!(
            (stddev(&xs) - 1.0).abs() < 0.02,
            "stddev {} too far from 1",
            stddev(&xs)
        );
    }

    #[test]
    fn gaussian_is_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(gaussian(&mut rng).is_finite());
        }
    }

    #[test]
    fn white_noise_scales_with_sigma() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = white_noise(100_000, 3.0, &mut rng);
        assert!((stddev(&xs) - 3.0).abs() < 0.1);
    }

    #[test]
    fn white_noise_zero_sigma_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = white_noise(100, 0.0, &mut rng);
        assert!(xs.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn add_noise_perturbs_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = vec![10.0; 1000];
        add_noise(&mut xs, 0.5, &mut rng);
        assert!((mean(&xs) - 10.0).abs() < 0.1);
        assert!(xs.iter().any(|&v| v != 10.0));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = white_noise(64, 1.0, &mut StdRng::seed_from_u64(99));
        let b = white_noise(64, 1.0, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }
}
