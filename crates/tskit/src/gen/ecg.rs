//! Synthetic electrocardiogram generator.
//!
//! Each heart beat is modeled as a sum of five Gaussian deflections — the
//! P, Q, R, S, and T waves — a standard lightweight ECG phantom (the same
//! structure the dynamical ECGSYN model linearizes to). Beats start and end
//! at the isoelectric baseline, so concatenation is continuous.
//!
//! The generator serves two roles in the reproduction:
//! * scalability workload "ECG" for Figure 8;
//! * basis of the ECG-flavored UCR family stand-ins (TwoLeadECG,
//!   ECGFiveDays), where the anomalous class perturbs beat morphology the
//!   way a premature/ectopic beat does in the paper's Figure 4 example.

use rand::Rng;

use super::noise::gaussian;

/// Morphology of one synthetic beat: relative positions (fraction of the
/// beat), widths (fraction of the beat), and amplitudes of the five waves.
#[derive(Debug, Clone, Copy)]
pub struct EcgParams {
    /// Wave centers as fractions of the beat length (P, Q, R, S, T).
    pub centers: [f64; 5],
    /// Wave widths as fractions of the beat length.
    pub widths: [f64; 5],
    /// Wave amplitudes in arbitrary millivolt-like units.
    pub amplitudes: [f64; 5],
}

impl Default for EcgParams {
    /// A textbook-looking sinus beat.
    fn default() -> Self {
        Self {
            centers: [0.18, 0.36, 0.42, 0.48, 0.72],
            widths: [0.035, 0.012, 0.018, 0.012, 0.05],
            amplitudes: [0.18, -0.20, 1.2, -0.35, 0.32],
        }
    }
}

impl EcgParams {
    /// A premature-ventricular-like beat: wide, inverted, early R complex
    /// and missing P wave. Structurally distinct from the sinus beat while
    /// keeping the same amplitude envelope.
    pub fn ectopic() -> Self {
        Self {
            centers: [0.18, 0.30, 0.36, 0.44, 0.66],
            widths: [0.001, 0.03, 0.05, 0.03, 0.06],
            amplitudes: [0.0, 0.45, -1.1, 0.5, -0.25],
        }
    }
}

/// Samples one beat of `len` points from `params`, without noise.
pub fn ecg_beat(len: usize, params: &EcgParams) -> Vec<f64> {
    let mut beat = vec![0.0; len];
    for w in 0..5 {
        let c = params.centers[w] * len as f64;
        let s = (params.widths[w] * len as f64).max(0.5);
        let a = params.amplitudes[w];
        if a == 0.0 {
            continue;
        }
        for (i, v) in beat.iter_mut().enumerate() {
            let d = (i as f64 - c) / s;
            *v += a * (-0.5 * d * d).exp();
        }
    }
    beat
}

/// Generates a continuous ECG-like series of `n` samples.
///
/// Beats of nominal length `beat_len` are concatenated with ±5% random
/// beat-to-beat length jitter (respiratory sinus arrhythmia) and additive
/// measurement noise of standard deviation `noise_sigma`.
pub fn ecg_series(n: usize, beat_len: usize, noise_sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(beat_len >= 8, "beat_len must be at least 8 samples");
    let params = EcgParams::default();
    let mut out = Vec::with_capacity(n + beat_len);
    while out.len() < n {
        let jitter = 1.0 + 0.05 * (rng.gen::<f64>() * 2.0 - 1.0);
        let len = ((beat_len as f64 * jitter).round() as usize).max(8);
        out.extend(ecg_beat(len, &params));
    }
    out.truncate(n);
    if noise_sigma > 0.0 {
        for v in out.iter_mut() {
            *v += gaussian(rng) * noise_sigma;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beat_peaks_at_r_wave() {
        let p = EcgParams::default();
        let beat = ecg_beat(200, &p);
        let (argmax, &max) = beat
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        // R wave sits at 42% of the beat and dominates.
        assert!((argmax as f64 / 200.0 - 0.42).abs() < 0.03);
        assert!(max > 1.0);
    }

    #[test]
    fn beat_starts_and_ends_near_baseline() {
        let beat = ecg_beat(200, &EcgParams::default());
        assert!(beat[0].abs() < 0.01, "start {}", beat[0]);
        assert!(beat[199].abs() < 0.02, "end {}", beat[199]);
    }

    #[test]
    fn ectopic_beat_differs_from_sinus() {
        let sinus = ecg_beat(128, &EcgParams::default());
        let ectopic = ecg_beat(128, &EcgParams::ectopic());
        let dist: f64 = sinus
            .iter()
            .zip(&ectopic)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "beats too similar: {dist}");
        // Ectopic beats are predominantly negative at the QRS complex.
        let min = ectopic.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < -0.8);
    }

    #[test]
    fn series_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = ecg_series(10_000, 96, 0.02, &mut rng);
        assert_eq!(s.len(), 10_000);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn series_is_periodic_in_r_waves() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = ecg_series(96 * 20, 96, 0.0, &mut rng);
        // Count samples above 0.8 (R waves): expect roughly one run per beat.
        let mut runs = 0;
        let mut in_run = false;
        for &v in &s {
            if v > 0.8 && !in_run {
                runs += 1;
                in_run = true;
            } else if v <= 0.8 {
                in_run = false;
            }
        }
        assert!(
            (15..=25).contains(&runs),
            "found {runs} R waves, expected ~20"
        );
    }

    #[test]
    #[should_panic(expected = "beat_len")]
    fn tiny_beat_len_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        ecg_series(100, 4, 0.0, &mut rng);
    }
}
