//! Synthetic time series generators.
//!
//! The paper evaluates on data we cannot redistribute (UCR archive
//! instances, REFIT appliance traces, physionet ECG/EEG). Each generator
//! here produces a synthetic stand-in that preserves the property the
//! algorithms actually observe: a repetitive "normal" structure in which a
//! structurally different subsequence is embedded. See DESIGN.md
//! ("Substitutions") for the per-dataset rationale.
//!
//! All generators take an explicit `&mut impl Rng` so corpora are
//! reproducible from a seed.

pub mod ecg;
pub mod eeg;
pub mod noise;
pub mod periodic;
pub mod power;
pub mod ucr;
pub mod walk;

pub use ecg::{ecg_beat, ecg_series, EcgParams};
pub use eeg::eeg_series;
pub use noise::{gaussian, white_noise};
pub use periodic::{sine_series, SineSpec};
pub use power::{dishwasher_series, fridge_freezer_series, DutyCycle, PowerProfile};
pub use ucr::UcrFamily;
pub use walk::random_walk;
