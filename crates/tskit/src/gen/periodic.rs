//! Periodic signal generators.

use rand::Rng;

use super::noise::gaussian;

/// Specification of a noisy sinusoid.
#[derive(Debug, Clone, Copy)]
pub struct SineSpec {
    /// Samples per full period.
    pub period: f64,
    /// Peak amplitude.
    pub amplitude: f64,
    /// Phase offset in radians.
    pub phase: f64,
    /// Standard deviation of additive Gaussian noise.
    pub noise_sigma: f64,
}

impl Default for SineSpec {
    fn default() -> Self {
        Self {
            period: 64.0,
            amplitude: 1.0,
            phase: 0.0,
            noise_sigma: 0.0,
        }
    }
}

/// Generates `n` samples of the sinusoid described by `spec`.
pub fn sine_series(n: usize, spec: SineSpec, rng: &mut impl Rng) -> Vec<f64> {
    let omega = std::f64::consts::TAU / spec.period;
    (0..n)
        .map(|i| {
            spec.amplitude * (omega * i as f64 + spec.phase).sin()
                + if spec.noise_sigma > 0.0 {
                    gaussian(rng) * spec.noise_sigma
                } else {
                    0.0
                }
        })
        .collect()
}

/// A smooth bump (raised cosine) of length `n` peaking at `amplitude`.
///
/// Starts and ends at exactly 0, which makes concatenated instances
/// continuous — a requirement for corpus assembly (no artificial jumps at
/// instance boundaries that detectors would latch onto).
pub fn raised_cosine(n: usize, amplitude: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1).max(1) as f64;
            amplitude * 0.5 * (1.0 - (std::f64::consts::TAU * t).cos())
        })
        .collect()
}

/// A Gaussian bump centered at `center` (fraction of `n`) with width
/// `width` (fraction of `n`), evaluated over `n` samples.
pub fn gaussian_bump(n: usize, center: f64, width: f64, amplitude: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n.max(1) as f64;
            let d = (t - center) / width;
            amplitude * (-0.5 * d * d).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sine_hits_expected_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = sine_series(
            256,
            SineSpec {
                period: 64.0,
                amplitude: 2.0,
                phase: 0.0,
                noise_sigma: 0.0,
            },
            &mut rng,
        );
        // Peak of a period-64 sine is at sample 16.
        assert!((s[16] - 2.0).abs() < 1e-6);
        assert!((s[48] + 2.0).abs() < 1e-6);
        assert!(s[0].abs() < 1e-12);
    }

    #[test]
    fn sine_noise_is_additive() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = sine_series(4096, SineSpec::default(), &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = sine_series(
            4096,
            SineSpec {
                noise_sigma: 0.3,
                ..SineSpec::default()
            },
            &mut rng,
        );
        let resid: Vec<f64> = clean.iter().zip(&noisy).map(|(c, x)| x - c).collect();
        let s = crate::stats::stddev(&resid);
        assert!((s - 0.3).abs() < 0.02, "residual stddev {s}");
    }

    #[test]
    fn raised_cosine_boundary_and_peak() {
        let b = raised_cosine(101, 3.0);
        assert!(b[0].abs() < 1e-12);
        assert!(b[100].abs() < 1e-9);
        assert!((b[50] - 3.0).abs() < 1e-9);
        assert!(b.iter().all(|&v| (-1e-12..=3.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn raised_cosine_degenerate_lengths() {
        assert!(raised_cosine(0, 1.0).is_empty());
        assert_eq!(raised_cosine(1, 1.0), vec![0.0]);
    }

    #[test]
    fn gaussian_bump_peaks_at_center() {
        let b = gaussian_bump(100, 0.5, 0.1, 2.0);
        let (argmax, _) = b
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((argmax as i64 - 50).abs() <= 1);
        assert!(b[0] < 0.01);
    }
}
