//! UCR-archive-style dataset families (synthetic stand-ins).
//!
//! The paper's main evaluation (Section 7.1) draws instances from six UCR
//! classification datasets and treats class 0 as "normal", everything else
//! as "anomalous". We cannot ship the archive, so each family here is a
//! parametric generator producing class-consistent instances with
//! * the exact instance lengths of the paper's Table 3,
//! * within-class variation (amplitude/timing jitter, noise) so normal
//!   instances repeat *structurally* but not *literally*, and
//! * a structurally different anomalous class (morphology change, extra or
//!   missing feature) — the property the detectors key on.
//!
//! Instances start and end at the zero baseline so concatenation does not
//! introduce artificial discontinuities.

use rand::Rng;

use super::ecg::{ecg_beat, EcgParams};
use super::noise::add_noise;

/// The six evaluation dataset families (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UcrFamily {
    /// ECG lead pair, instance length 82.
    TwoLeadEcg,
    /// Five-day ECG, instance length 132.
    EcgFiveDays,
    /// 3-D motion tracking (hand draw/point), instance length 150.
    GunPoint,
    /// Semiconductor wafer process sensor, instance length 150.
    Wafer,
    /// Synthetic control-chart style sensor, instance length 275.
    Trace,
    /// Phase-folded astronomical light curve, instance length 1024.
    StarLightCurve,
}

impl UcrFamily {
    /// All six families, in the order of the paper's tables.
    pub const ALL: [UcrFamily; 6] = [
        UcrFamily::TwoLeadEcg,
        UcrFamily::EcgFiveDays,
        UcrFamily::GunPoint,
        UcrFamily::Wafer,
        UcrFamily::Trace,
        UcrFamily::StarLightCurve,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            UcrFamily::TwoLeadEcg => "TwoLeadECG",
            UcrFamily::EcgFiveDays => "ECGFiveDays",
            UcrFamily::GunPoint => "GunPoint",
            UcrFamily::Wafer => "Wafer",
            UcrFamily::Trace => "Trace",
            UcrFamily::StarLightCurve => "StarLightCurve",
        }
    }

    /// Parses a family from its paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let lower = name.to_ascii_lowercase();
        Self::ALL
            .iter()
            .copied()
            .find(|f| f.name().to_ascii_lowercase() == lower)
    }

    /// Instance ("segment") length per the paper's Table 3.
    pub fn instance_length(&self) -> usize {
        match self {
            UcrFamily::TwoLeadEcg => 82,
            UcrFamily::EcgFiveDays => 132,
            UcrFamily::GunPoint => 150,
            UcrFamily::Wafer => 150,
            UcrFamily::Trace => 275,
            UcrFamily::StarLightCurve => 1024,
        }
    }

    /// Data type column of Table 3.
    pub fn data_type(&self) -> &'static str {
        match self {
            UcrFamily::TwoLeadEcg | UcrFamily::EcgFiveDays => "ECG",
            UcrFamily::GunPoint => "Motion",
            UcrFamily::Wafer | UcrFamily::Trace | UcrFamily::StarLightCurve => "Sensor",
        }
    }

    /// Generates one "normal" (class-0) instance.
    pub fn normal_instance(&self, rng: &mut impl Rng) -> Vec<f64> {
        match self {
            UcrFamily::TwoLeadEcg => two_lead_ecg(rng, false),
            UcrFamily::EcgFiveDays => ecg_five_days(rng, false),
            UcrFamily::GunPoint => gun_point(rng, false),
            UcrFamily::Wafer => wafer(rng, false),
            UcrFamily::Trace => trace(rng, false),
            UcrFamily::StarLightCurve => star_light_curve(rng, false),
        }
    }

    /// Generates one "anomalous" (non-class-0) instance.
    pub fn anomalous_instance(&self, rng: &mut impl Rng) -> Vec<f64> {
        match self {
            UcrFamily::TwoLeadEcg => two_lead_ecg(rng, true),
            UcrFamily::EcgFiveDays => ecg_five_days(rng, true),
            UcrFamily::GunPoint => gun_point(rng, true),
            UcrFamily::Wafer => wafer(rng, true),
            UcrFamily::Trace => trace(rng, true),
            UcrFamily::StarLightCurve => star_light_curve(rng, true),
        }
    }
}

impl std::fmt::Display for UcrFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Uniform multiplicative jitter in `[1-rel, 1+rel]`.
fn scale_jitter(rng: &mut impl Rng, rel: f64) -> f64 {
    1.0 + rel * (rng.gen::<f64>() * 2.0 - 1.0)
}

/// Tapers the first and last `edge` samples toward zero so concatenated
/// instances stay continuous even after feature-position jitter.
fn taper_edges(v: &mut [f64], edge: usize) {
    let n = v.len();
    let edge = edge.min(n / 2);
    for i in 0..edge {
        let w = i as f64 / edge as f64;
        v[i] *= w;
        v[n - 1 - i] *= w;
    }
}

// --- TwoLeadECG (82): one heart beat; anomalous = ectopic morphology -----

fn two_lead_ecg(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let mut params = if anomalous {
        EcgParams::ectopic()
    } else {
        EcgParams::default()
    };
    for a in params.amplitudes.iter_mut() {
        *a *= scale_jitter(rng, 0.08);
    }
    for c in params.centers.iter_mut() {
        *c = (*c + 0.01 * (rng.gen::<f64>() * 2.0 - 1.0)).clamp(0.02, 0.95);
    }
    let mut beat = ecg_beat(82, &params);
    add_noise(&mut beat, 0.03, rng);
    taper_edges(&mut beat, 4);
    beat
}

// --- ECGFiveDays (132): beat with prominent T wave; anomalous = inverted T

fn ecg_five_days(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let mut params = EcgParams {
        centers: [0.15, 0.32, 0.38, 0.44, 0.70],
        widths: [0.04, 0.012, 0.02, 0.014, 0.07],
        amplitudes: [0.15, -0.15, 1.0, -0.25, 0.45],
    };
    if anomalous {
        // Day-5 morphology: flattened R, inverted and early T wave.
        params.amplitudes[2] = 0.55;
        params.amplitudes[4] = -0.5;
        params.centers[4] = 0.62;
        params.widths[4] = 0.05;
    }
    for a in params.amplitudes.iter_mut() {
        *a *= scale_jitter(rng, 0.08);
    }
    let mut beat = ecg_beat(132, &params);
    add_noise(&mut beat, 0.03, rng);
    taper_edges(&mut beat, 5);
    beat
}

// --- GunPoint (150): rise-hold-return motion; anomalous = overshoot dip --

fn gun_point(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let n = 150;
    let amp = scale_jitter(rng, 0.07);
    let rise_end = (30.0 * scale_jitter(rng, 0.1)) as usize;
    let fall_start = n - (30.0 * scale_jitter(rng, 0.1)) as usize;
    let mut v = vec![0.0; n];
    for (i, x) in v.iter_mut().enumerate() {
        *x = if i < rise_end {
            // Smoothstep rise.
            let t = i as f64 / rise_end as f64;
            amp * t * t * (3.0 - 2.0 * t)
        } else if i < fall_start {
            amp
        } else {
            let t = (i - fall_start) as f64 / (n - fall_start) as f64;
            amp * (1.0 - t * t * (3.0 - 2.0 * t))
        };
    }
    if anomalous {
        // "Point" class: the hand dips after raising (no gun to steady) —
        // a pronounced dip in the middle of the plateau.
        let c = n as f64 * 0.5;
        let w = n as f64 * 0.06;
        for (i, x) in v.iter_mut().enumerate() {
            let d = (i as f64 - c) / w;
            *x -= amp * 0.55 * (-0.5 * d * d).exp();
        }
    }
    add_noise(&mut v, 0.02, rng);
    taper_edges(&mut v, 3);
    v
}

// --- Wafer (150): plateaus + narrow process spikes; anomalous = fault ----

fn wafer(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let n = 150;
    let amp = scale_jitter(rng, 0.05);
    let mut v = vec![0.0; n];
    // Normal profile: ramp to plateau A, step to plateau B, narrow spike,
    // ramp down.
    for (i, x) in v.iter_mut().enumerate() {
        let t = i as f64 / n as f64;
        *x = amp
            * if t < 0.08 {
                t / 0.08 * 0.6
            } else if t < 0.4 {
                0.6
            } else if t < 0.45 {
                0.6 + (t - 0.4) / 0.05 * 0.4
            } else if t < 0.85 {
                1.0
            } else {
                1.0 - (t - 0.85) / 0.15
            };
    }
    // The narrow etch spike present in normal cycles.
    let spike_c = n as f64 * 0.25;
    for (i, x) in v.iter_mut().enumerate() {
        let d = (i as f64 - spike_c) / 2.0;
        *x += amp * 0.5 * (-0.5 * d * d).exp();
    }
    if anomalous {
        // Fault class: plateau B droops and an extra wide spike appears.
        let c = n as f64 * 0.65;
        let w = n as f64 * 0.05;
        for (i, x) in v.iter_mut().enumerate() {
            let t = i as f64 / n as f64;
            if (0.45..0.85).contains(&t) {
                *x -= amp * 0.3 * ((t - 0.45) / 0.4);
            }
            let d = (i as f64 - c) / w;
            *x += amp * 0.8 * (-0.5 * d * d).exp();
        }
    }
    add_noise(&mut v, 0.02, rng);
    taper_edges(&mut v, 3);
    v
}

// --- Trace (275): step transient with oscillation; anomalous = different -

fn trace(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let n = 275;
    let amp = scale_jitter(rng, 0.05);
    let step_at = (n as f64 * (0.35 + 0.05 * rng.gen::<f64>())) as usize;
    let mut v = vec![0.0; n];
    for (i, x) in v.iter_mut().enumerate() {
        if i >= step_at {
            let t = (i - step_at) as f64;
            let rise = 1.0 - (-t / 12.0).exp();
            *x = amp * rise;
            if !anomalous {
                // Normal class: damped oscillation riding the step.
                *x += amp * 0.35 * (-t / 40.0).exp() * (std::f64::consts::TAU * t / 22.0).sin();
            }
        }
    }
    if anomalous {
        // Anomalous class: no ringing, but a slow ramp after the step and a
        // precursor dip before it.
        for (i, x) in v.iter_mut().enumerate() {
            if i >= step_at {
                let t = (i - step_at) as f64 / (n - step_at) as f64;
                *x += amp * 0.3 * t;
            } else {
                let d = (i as f64 - (step_at as f64 - 18.0)) / 6.0;
                *x -= amp * 0.4 * (-0.5 * d * d).exp();
            }
        }
    }
    // Return to baseline at the very end so instances chain smoothly.
    let tail = n / 10;
    for i in 0..tail {
        let w = i as f64 / tail as f64;
        let idx = n - tail + i;
        v[idx] *= 1.0 - w;
    }
    add_noise(&mut v, 0.02, rng);
    taper_edges(&mut v, 3);
    v
}

// --- StarLightCurve (1024): folded light curve; anomalous = binary dips --

fn star_light_curve(rng: &mut impl Rng, anomalous: bool) -> Vec<f64> {
    let n = 1024;
    let amp = scale_jitter(rng, 0.06);
    let mut v = vec![0.0; n];
    if !anomalous {
        // Cepheid-like variable: asymmetric bump — fast rise, slow decay.
        let peak = 0.3 + 0.03 * (rng.gen::<f64>() * 2.0 - 1.0);
        for (i, x) in v.iter_mut().enumerate() {
            let t = i as f64 / n as f64;
            let d = if t < peak {
                (t - peak) / 0.10
            } else {
                (t - peak) / 0.28
            };
            *x = amp * (-0.5 * d * d).exp();
        }
    } else {
        // Eclipsing-binary-like: two sharp dips on a gentle hump.
        let d1 = 0.32 + 0.02 * (rng.gen::<f64>() * 2.0 - 1.0);
        let d2 = d1 + 0.38;
        for (i, x) in v.iter_mut().enumerate() {
            let t = i as f64 / n as f64;
            let hump = 0.35 * (std::f64::consts::PI * t).sin();
            let e1 = ((t - d1) / 0.035).powi(2);
            let e2 = ((t - d2) / 0.045).powi(2);
            *x = amp * (hump - 0.9 * (-0.5 * e1).exp() - 0.55 * (-0.5 * e2).exp());
        }
    }
    add_noise(&mut v, 0.015, rng);
    taper_edges(&mut v, 8);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::mean;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn instance_lengths_match_table3() {
        let expected = [82, 132, 150, 150, 275, 1024];
        for (f, &len) in UcrFamily::ALL.iter().zip(expected.iter()) {
            assert_eq!(f.instance_length(), len, "{f}");
        }
    }

    #[test]
    fn generated_lengths_match_declared() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            assert_eq!(
                f.normal_instance(&mut r).len(),
                f.instance_length(),
                "{f} normal"
            );
            assert_eq!(
                f.anomalous_instance(&mut r).len(),
                f.instance_length(),
                "{f} anomalous"
            );
        }
    }

    #[test]
    fn instances_are_finite_and_bounded() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            for _ in 0..5 {
                for inst in [f.normal_instance(&mut r), f.anomalous_instance(&mut r)] {
                    assert!(inst.iter().all(|v| v.is_finite() && v.abs() < 100.0), "{f}");
                }
            }
        }
    }

    #[test]
    fn instances_start_and_end_at_baseline() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            for _ in 0..3 {
                let inst = f.normal_instance(&mut r);
                assert!(inst[0].abs() < 0.15, "{f} starts at {}", inst[0]);
                assert!(
                    inst[inst.len() - 1].abs() < 0.15,
                    "{f} ends at {}",
                    inst[inst.len() - 1]
                );
            }
        }
    }

    /// The anomalous class must be farther from a normal template than
    /// normal instances are from each other — otherwise no detector could
    /// possibly find the planted instance.
    #[test]
    fn anomalous_class_is_separable() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            let template = f.normal_instance(&mut r);
            let dist = |a: &[f64], b: &[f64]| -> f64 {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).powi(2))
                    .sum::<f64>()
                    .sqrt()
            };
            let mut intra = 0.0;
            let mut inter = 0.0;
            let reps = 10;
            for _ in 0..reps {
                intra += dist(&template, &f.normal_instance(&mut r));
                inter += dist(&template, &f.anomalous_instance(&mut r));
            }
            assert!(
                inter > 1.5 * intra,
                "{f}: inter {inter:.2} not clearly above intra {intra:.2}"
            );
        }
    }

    #[test]
    fn normal_instances_vary_between_draws() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            let a = f.normal_instance(&mut r);
            let b = f.normal_instance(&mut r);
            assert_ne!(a, b, "{f} draws identical instances");
        }
    }

    #[test]
    fn name_round_trip() {
        for f in UcrFamily::ALL {
            assert_eq!(UcrFamily::from_name(f.name()), Some(f));
            assert_eq!(UcrFamily::from_name(&f.name().to_uppercase()), Some(f));
        }
        assert_eq!(UcrFamily::from_name("NoSuchSet"), None);
    }

    #[test]
    fn data_types_match_table3() {
        assert_eq!(UcrFamily::TwoLeadEcg.data_type(), "ECG");
        assert_eq!(UcrFamily::GunPoint.data_type(), "Motion");
        assert_eq!(UcrFamily::Wafer.data_type(), "Sensor");
    }

    #[test]
    fn instances_are_roughly_zero_baseline() {
        let mut r = rng();
        for f in UcrFamily::ALL {
            let inst = f.normal_instance(&mut r);
            // Mean is small relative to peak amplitude.
            let peak = inst.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(mean(&inst).abs() < peak, "{f}");
        }
    }
}
