//! Random-walk generator (Figure 8 scalability workload "RW").

use rand::Rng;

use super::noise::gaussian;

/// Generates a Gaussian random walk of length `n` starting at 0.
///
/// `x[t] = x[t-1] + N(0, step_sigma²)`. This is the classic unstructured
/// scalability workload: grammar induction sees few repeats, so the rule
/// density machinery is exercised at its worst case.
pub fn random_walk(n: usize, step_sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut x = 0.0;
    for _ in 0..n {
        out.push(x);
        x += gaussian(rng) * step_sigma;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn length_and_start() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = random_walk(1000, 1.0, &mut rng);
        assert_eq!(w.len(), 1000);
        assert_eq!(w[0], 0.0);
    }

    #[test]
    fn zero_sigma_stays_flat() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = random_walk(100, 0.0, &mut rng);
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn increments_have_expected_scale() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = random_walk(100_000, 2.0, &mut rng);
        let incs: Vec<f64> = w.windows(2).map(|p| p[1] - p[0]).collect();
        let s = crate::stats::stddev(&incs);
        assert!((s - 2.0).abs() < 0.05, "increment stddev {s}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_walk(50, 1.0, &mut StdRng::seed_from_u64(1));
        let b = random_walk(50, 1.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_walk() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(random_walk(0, 1.0, &mut rng).is_empty());
    }
}
