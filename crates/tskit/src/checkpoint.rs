//! Versioned checkpoint/restore for streaming sessions (PR 8).
//!
//! Long-lived streaming sessions — a discord monitor hours into an
//! unbounded stream, a fleet of thousands of them — lose every point of
//! accumulated state on process restart. This module is the persistence
//! substrate that fixes that: a [`Checkpoint`] trait every session can
//! implement, over a small length-prefixed binary container with a
//! magic header, a container format version, and per-section payload
//! versions.
//!
//! # The restore contract
//!
//! The workspace's bit-parity guarantee extends to persistence: for any
//! append/evict/step schedule, saving a checkpoint at any point,
//! restoring it, and replaying the remainder of the schedule yields a
//! `finish()` **bit-identical** to the uninterrupted run — for both
//! streaming monitors, both MASS backends, and fleet-managed sessions
//! (property-tested in each implementing crate). And any truncated,
//! bit-flipped, or version-skewed input produces a typed
//! [`CheckpointError`] — never a panic, never a silently-wrong session.
//!
//! # Container format
//!
//! All integers are little-endian; `f64` travels as raw IEEE-754 bits
//! ([`f64::to_bits`]), so non-finite values — the `+∞` slots of a
//! half-folded matrix profile — survive exactly (the JSON shim would
//! render them as `null`).
//!
//! ```text
//! header   := magic[8] ("EGICKPT\0") | format_version u32 | section_count u32
//! section  := tag u32 | payload_version u32 | payload_len u64
//!           | payload bytes | fnv64(payload) u64
//! ```
//!
//! Every section payload carries an FNV-1a 64-bit checksum, so random
//! corruption anywhere in a payload is detected on load instead of
//! deserializing into a plausible-but-wrong session. Section `tag`s
//! name the owning subsystem; `payload_version` is that subsystem's
//! (per-crate) format revision, checked independently of the container
//! version so one crate can evolve its payload without invalidating
//! everyone else's.
//!
//! Payloads are composed with [`FieldWriter`] / [`FieldReader`]
//! (primitive fields, slices, and embedded [`serde::Value`] trees for
//! structured state like the Sequitur grammar slab).
//!
//! # Examples
//!
//! ```
//! use egi_tskit::checkpoint::{
//!     CheckpointReader, CheckpointWriter, FieldReader, FieldWriter,
//! };
//!
//! let mut payload = FieldWriter::new();
//! payload.u64(42);
//! payload.f64_slice(&[1.5, f64::INFINITY]);
//!
//! let mut bytes = Vec::new();
//! let mut w = CheckpointWriter::begin(&mut bytes, 1).unwrap();
//! w.section(0xBEEF, 1, &payload.into_bytes()).unwrap();
//!
//! let mut cursor = bytes.as_slice();
//! let mut r = CheckpointReader::begin(&mut cursor).unwrap();
//! let (version, payload) = r.section(0xBEEF, 1).unwrap();
//! assert_eq!(version, 1);
//! let mut f = FieldReader::new(&payload);
//! assert_eq!(f.u64().unwrap(), 42);
//! assert_eq!(f.f64_vec().unwrap(), vec![1.5, f64::INFINITY]);
//! ```

use std::io::{Read, Write};

use serde::Value;

/// First bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"EGICKPT\0";

/// Container format version written (and the only one read) by this
/// build. Bumped only when the header/section framing itself changes;
/// per-crate payload evolution rides on each section's
/// `payload_version` instead.
pub const FORMAT_VERSION: u32 = 1;

/// Maximum nesting depth accepted when decoding an embedded
/// [`Value`] tree — a guard against stack exhaustion on adversarial
/// input (honest payloads are a handful of levels deep).
const MAX_VALUE_DEPTH: usize = 64;

/// Why a checkpoint could not be saved or restored.
///
/// Every failure mode of the load path maps here — I/O errors,
/// truncation, foreign or corrupted bytes, version skew — so callers
/// can always turn a bad file into an error value, never a panic.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The input does not start with [`MAGIC`] — not a checkpoint.
    BadMagic,
    /// The container was written by an incompatible format revision.
    UnsupportedFormat {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A section's payload was written by a newer (or invalid) revision
    /// of its owning subsystem.
    UnsupportedSection {
        /// The section tag.
        tag: u32,
        /// Payload version found.
        found: u32,
        /// Highest payload version this build supports for the tag.
        supported: u32,
    },
    /// A section carried a different tag than the loader expected —
    /// the file belongs to a different session type or is corrupt.
    UnexpectedSection {
        /// Tag the loader expected next.
        expected: u32,
        /// Tag found in the stream.
        found: u32,
    },
    /// The input ended before the declared structure was complete.
    Truncated,
    /// The declared structure was present but its contents are invalid
    /// (checksum mismatch, out-of-range field, malformed value tree).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported container format {found} (this build supports {supported})"
            ),
            CheckpointError::UnsupportedSection {
                tag,
                found,
                supported,
            } => write!(
                f,
                "section {tag:#x}: unsupported payload version {found} \
                 (this build supports <= {supported})"
            ),
            CheckpointError::UnexpectedSection { expected, found } => write!(
                f,
                "expected section {expected:#x}, found {found:#x} \
                 (wrong session type or corrupt file)"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        // A short read while the container promised more bytes is the
        // truncation case the corruption suite pins down; everything
        // else stays an I/O error.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    }
}

impl From<serde::DeserializeError> for CheckpointError {
    fn from(e: serde::DeserializeError) -> Self {
        // Serde-shim rejections are schema/content failures inside a
        // structurally-intact section — the Corrupt class.
        CheckpointError::Corrupt(e.0)
    }
}

/// Snapshot/restore for streaming sessions.
///
/// Implementors serialize enough state that a restored session replays
/// the remainder of any schedule **bit-identically** to the
/// uninterrupted original (see the module docs for the contract), and
/// the load path returns a typed [`CheckpointError`] on any malformed
/// input.
pub trait Checkpoint: Sized {
    /// Writes a complete checkpoint of `self` to `writer`.
    fn save_checkpoint(&self, writer: &mut impl Write) -> Result<(), CheckpointError>;

    /// Reconstructs a session from a checkpoint previously written by
    /// [`save_checkpoint`](Self::save_checkpoint).
    fn load_checkpoint(reader: &mut impl Read) -> Result<Self, CheckpointError>;

    /// Convenience: the checkpoint as an in-memory byte buffer.
    ///
    /// Records `egi_checkpoint_save_*` metrics (count, bytes,
    /// duration) into the global egi-obs registry.
    fn checkpoint_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let span = egi_obs::SpanTimer::start();
        let mut bytes = Vec::new();
        self.save_checkpoint(&mut bytes)?;
        if egi_obs::enabled() {
            egi_obs::counter!("egi_checkpoint_saves_total").inc();
            egi_obs::counter!("egi_checkpoint_save_bytes_total").add(bytes.len() as u64);
            egi_obs::histogram!("egi_checkpoint_save_bytes").record(bytes.len() as u64);
            span.record(egi_obs::histogram!("egi_checkpoint_save_nanos"));
        }
        Ok(bytes)
    }

    /// Convenience: restore from an in-memory byte buffer.
    ///
    /// Records `egi_checkpoint_load_*` metrics (count, bytes,
    /// duration) into the global egi-obs registry.
    fn from_checkpoint_bytes(mut bytes: &[u8]) -> Result<Self, CheckpointError> {
        let span = egi_obs::SpanTimer::start();
        let len = bytes.len() as u64;
        let restored = Self::load_checkpoint(&mut bytes)?;
        if egi_obs::enabled() {
            egi_obs::counter!("egi_checkpoint_loads_total").inc();
            egi_obs::counter!("egi_checkpoint_load_bytes_total").add(len);
            egi_obs::histogram!("egi_checkpoint_load_bytes").record(len);
            span.record(egi_obs::histogram!("egi_checkpoint_load_nanos"));
        }
        Ok(restored)
    }
}

/// FNV-1a 64-bit hash — the per-section payload checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes the container header and length-prefixed sections.
pub struct CheckpointWriter<'a, W: Write> {
    inner: &'a mut W,
    declared: u32,
    written: u32,
}

impl<'a, W: Write> CheckpointWriter<'a, W> {
    /// Writes the header (magic, [`FORMAT_VERSION`], section count) and
    /// returns a writer expecting exactly `sections` sections.
    pub fn begin(inner: &'a mut W, sections: u32) -> Result<Self, CheckpointError> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&FORMAT_VERSION.to_le_bytes())?;
        inner.write_all(&sections.to_le_bytes())?;
        Ok(Self {
            inner,
            declared: sections,
            written: 0,
        })
    }

    /// Appends one section: tag, payload version, length-prefixed
    /// payload, checksum.
    ///
    /// # Panics
    ///
    /// Panics if more sections are written than were declared to
    /// [`begin`](Self::begin) — a save-path programming error, caught in
    /// tests rather than shipped as a malformed file.
    pub fn section(
        &mut self,
        tag: u32,
        payload_version: u32,
        payload: &[u8],
    ) -> Result<(), CheckpointError> {
        assert!(
            self.written < self.declared,
            "checkpoint declared {} sections but a {}th was written",
            self.declared,
            self.written + 1
        );
        self.inner.write_all(&tag.to_le_bytes())?;
        self.inner.write_all(&payload_version.to_le_bytes())?;
        self.inner
            .write_all(&(payload.len() as u64).to_le_bytes())?;
        self.inner.write_all(payload)?;
        self.inner.write_all(&fnv64(payload).to_le_bytes())?;
        self.written += 1;
        Ok(())
    }
}

fn read_array<const N: usize>(reader: &mut impl Read) -> Result<[u8; N], CheckpointError> {
    let mut buf = [0u8; N];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads and validates the container header and sections.
pub struct CheckpointReader<'a, R: Read> {
    inner: &'a mut R,
    remaining: u32,
}

impl<'a, R: Read> CheckpointReader<'a, R> {
    /// Reads the header, validating magic and container format.
    pub fn begin(inner: &'a mut R) -> Result<Self, CheckpointError> {
        let magic: [u8; 8] = read_array(inner).map_err(|e| match e {
            // A file too short to even hold the magic is foreign bytes,
            // not a truncated checkpoint.
            CheckpointError::Truncated => CheckpointError::BadMagic,
            other => other,
        })?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let format = u32::from_le_bytes(read_array(inner)?);
        if format != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedFormat {
                found: format,
                supported: FORMAT_VERSION,
            });
        }
        let remaining = u32::from_le_bytes(read_array(inner)?);
        Ok(Self { inner, remaining })
    }

    /// Number of sections not yet consumed.
    pub fn sections_remaining(&self) -> u32 {
        self.remaining
    }

    /// Reads the next section, requiring tag `expect_tag` and a payload
    /// version in `1..=max_version`; returns `(payload_version,
    /// payload)` with the checksum verified.
    pub fn section(
        &mut self,
        expect_tag: u32,
        max_version: u32,
    ) -> Result<(u32, Vec<u8>), CheckpointError> {
        if self.remaining == 0 {
            return Err(CheckpointError::Corrupt(format!(
                "section {expect_tag:#x} requested but the header declared no more sections"
            )));
        }
        let tag = u32::from_le_bytes(read_array(self.inner)?);
        if tag != expect_tag {
            return Err(CheckpointError::UnexpectedSection {
                expected: expect_tag,
                found: tag,
            });
        }
        let version = u32::from_le_bytes(read_array(self.inner)?);
        if version == 0 || version > max_version {
            return Err(CheckpointError::UnsupportedSection {
                tag,
                found: version,
                supported: max_version,
            });
        }
        let len = u64::from_le_bytes(read_array(self.inner)?);
        // A flipped length field can claim absurd sizes; `take` +
        // `read_to_end` grows the buffer only as real bytes arrive, so
        // a lying header yields Truncated instead of an allocation
        // blow-up.
        let mut payload = Vec::new();
        (&mut *self.inner).take(len).read_to_end(&mut payload)?;
        if payload.len() as u64 != len {
            return Err(CheckpointError::Truncated);
        }
        let checksum = u64::from_le_bytes(read_array(self.inner)?);
        if checksum != fnv64(&payload) {
            return Err(CheckpointError::Corrupt(format!(
                "section {tag:#x}: checksum mismatch"
            )));
        }
        self.remaining -= 1;
        Ok((version, payload))
    }
}

/// One section's framing as discovered by [`list_sections`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section tag.
    pub tag: u32,
    /// Payload version.
    pub payload_version: u32,
    /// Byte offset of the section's first framing byte.
    pub start: usize,
    /// Byte offset of the payload within the whole buffer.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Byte offset one past the section's trailing checksum.
    pub end: usize,
}

/// Walks a checkpoint buffer and returns every section's framing — the
/// corruption test harness uses this to truncate and flip bits at
/// exactly the structural boundaries.
pub fn list_sections(bytes: &[u8]) -> Result<Vec<SectionInfo>, CheckpointError> {
    let mut cursor = bytes;
    let mut reader = CheckpointReader::begin(&mut cursor)?;
    let mut out = Vec::new();
    let mut offset = MAGIC.len() + 8; // header: magic + format + count
    while reader.sections_remaining() > 0 {
        let consumed_before = bytes.len() - reader.inner.len();
        debug_assert_eq!(consumed_before, offset);
        let tag = u32::from_le_bytes(read_array(reader.inner)?);
        let payload_version = u32::from_le_bytes(read_array(reader.inner)?);
        let len = u64::from_le_bytes(read_array(reader.inner)?);
        let payload_len = usize::try_from(len)
            .map_err(|_| CheckpointError::Corrupt("oversized section".into()))?;
        let payload_start = offset + 16;
        let end = payload_start
            .checked_add(payload_len)
            .and_then(|e| e.checked_add(8))
            .ok_or_else(|| CheckpointError::Corrupt("oversized section".into()))?;
        if end > bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let mut skip = Vec::new();
        (&mut *reader.inner)
            .take(len + 8)
            .read_to_end(&mut skip)
            .map_err(CheckpointError::Io)?;
        out.push(SectionInfo {
            tag,
            payload_version,
            start: offset,
            payload_start,
            payload_len,
            end,
        });
        offset = end;
        reader.remaining -= 1;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Payload field encoding
// ---------------------------------------------------------------------

/// Appends primitive fields to a section payload buffer.
///
/// All integers little-endian; `f64` as IEEE-754 bits; slices are
/// length-prefixed (`u64` element count). [`FieldReader`] is the exact
/// mirror.
#[derive(Debug, Default)]
pub struct FieldWriter {
    buf: Vec<u8>,
}

impl FieldWriter {
    /// An empty payload buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` (as `u64`).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its raw bits (non-finite values included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends `Option<usize>` as a presence byte plus the value.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(n) => {
                self.bool(true);
                self.usize(n);
            }
            None => self.bool(false),
        }
    }

    /// Appends a length-prefixed raw byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `f64` slice (bit-exact).
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn usize_slice(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Appends a [`Value`] tree in the deterministic binary encoding
    /// (floats as raw bits — nothing is lost to a JSON rendering).
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.buf.push(0),
            Value::Bool(b) => {
                self.buf.push(1);
                self.bool(*b);
            }
            Value::Int(n) => {
                self.buf.push(2);
                self.u64(*n as u64);
            }
            Value::UInt(n) => {
                self.buf.push(3);
                self.u64(*n);
            }
            Value::Float(x) => {
                self.buf.push(4);
                self.f64(*x);
            }
            Value::Str(s) => {
                self.buf.push(5);
                self.bytes(s.as_bytes());
            }
            Value::Arr(items) => {
                self.buf.push(6);
                self.usize(items.len());
                for item in items {
                    self.value(item);
                }
            }
            Value::Obj(pairs) => {
                self.buf.push(7);
                self.usize(pairs.len());
                for (key, val) in pairs {
                    self.bytes(key.as_bytes());
                    self.value(val);
                }
            }
        }
    }
}

/// Decodes a section payload written by [`FieldWriter`], returning
/// [`CheckpointError::Corrupt`] (never panicking) on any malformed
/// field.
#[derive(Debug)]
pub struct FieldReader<'a> {
    buf: &'a [u8],
}

impl<'a> FieldReader<'a> {
    /// A reader over `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        Self { buf: payload }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "payload underrun: wanted {n} bytes, {} left",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize`, rejecting values that overflow the platform.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::Corrupt("usize field overflows platform".into()))
    }

    /// Reads an `f64` from raw bits.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CheckpointError::Corrupt(format!(
                "bool field holds {other}"
            ))),
        }
    }

    /// Reads an `Option<usize>`.
    pub fn opt_usize(&mut self) -> Result<Option<usize>, CheckpointError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }

    /// Checked element-count read: the declared count must fit in the
    /// remaining bytes at `elem_size` bytes per element, so a corrupted
    /// count errors instead of triggering a giant allocation.
    fn len_checked(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let len = self.usize()?;
        if len > self.buf.len() / elem_size.max(1) {
            return Err(CheckpointError::Corrupt(format!(
                "length {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed raw byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.len_checked(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let len = self.len_checked(8)?;
        (0..len).map(|_| self.f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, CheckpointError> {
        let len = self.len_checked(8)?;
        (0..len).map(|_| self.usize()).collect()
    }

    /// Reads a [`Value`] tree written by [`FieldWriter::value`].
    pub fn value(&mut self) -> Result<Value, CheckpointError> {
        self.value_at_depth(0)
    }

    fn value_at_depth(&mut self, depth: usize) -> Result<Value, CheckpointError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(CheckpointError::Corrupt("value tree too deep".into()));
        }
        match self.take(1)?[0] {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Int(self.u64()? as i64)),
            3 => Ok(Value::UInt(self.u64()?)),
            4 => Ok(Value::Float(self.f64()?)),
            5 => {
                let bytes = self.bytes()?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| CheckpointError::Corrupt("non-UTF-8 string".into()))?;
                Ok(Value::Str(s.to_string()))
            }
            6 => {
                let len = self.len_checked(1)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(self.value_at_depth(depth + 1)?);
                }
                Ok(Value::Arr(items))
            }
            7 => {
                let len = self.len_checked(1)?;
                let mut pairs = Vec::with_capacity(len);
                for _ in 0..len {
                    let key = std::str::from_utf8(self.bytes()?)
                        .map_err(|_| CheckpointError::Corrupt("non-UTF-8 key".into()))?
                        .to_string();
                    pairs.push((key, self.value_at_depth(depth + 1)?));
                }
                Ok(Value::Obj(pairs))
            }
            tag => Err(CheckpointError::Corrupt(format!("unknown value tag {tag}"))),
        }
    }

    /// Asserts the payload was fully consumed — trailing bytes mean a
    /// schema mismatch.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing payload bytes",
                self.buf.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_value() -> Value {
        Value::Obj(vec![
            (
                "nodes".into(),
                Value::Arr(vec![Value::UInt(3), Value::Int(-9)]),
            ),
            ("inf".into(), Value::Float(f64::INFINITY)),
            ("name".into(), Value::Str("rule".into())),
            ("none".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
        ])
    }

    fn sample_checkpoint() -> Vec<u8> {
        let mut payload_a = FieldWriter::new();
        payload_a.u32(7);
        payload_a.f64_slice(&[1.0, f64::INFINITY, -0.0]);
        payload_a.opt_usize(Some(12));
        let mut payload_b = FieldWriter::new();
        payload_b.value(&sample_value());
        let mut bytes = Vec::new();
        let mut w = CheckpointWriter::begin(&mut bytes, 2).unwrap();
        w.section(0xA1, 1, &payload_a.into_bytes()).unwrap();
        w.section(0xB2, 3, &payload_b.into_bytes()).unwrap();
        bytes
    }

    #[test]
    fn round_trips_fields_and_values() {
        let bytes = sample_checkpoint();
        let mut cursor = bytes.as_slice();
        let mut r = CheckpointReader::begin(&mut cursor).unwrap();
        let (va, a) = r.section(0xA1, 1).unwrap();
        assert_eq!(va, 1);
        let mut f = FieldReader::new(&a);
        assert_eq!(f.u32().unwrap(), 7);
        let xs = f.f64_vec().unwrap();
        assert_eq!(xs[0], 1.0);
        assert_eq!(xs[1], f64::INFINITY);
        assert_eq!(xs[2].to_bits(), (-0.0f64).to_bits(), "signed zero survives");
        assert_eq!(f.opt_usize().unwrap(), Some(12));
        f.finish().unwrap();
        let (vb, b) = r.section(0xB2, 3).unwrap();
        assert_eq!(vb, 3);
        let mut f = FieldReader::new(&b);
        assert_eq!(f.value().unwrap(), sample_value());
        f.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_checkpoint();
        bytes[0] ^= 0x40;
        assert!(matches!(
            CheckpointReader::begin(&mut bytes.as_slice()),
            Err(CheckpointError::BadMagic)
        ));
        // Foreign bytes shorter than a header are also BadMagic.
        assert!(matches!(
            CheckpointReader::begin(&mut &b"EGI"[..]),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = sample_checkpoint();
        bytes[8] = 99; // container format version
        assert!(matches!(
            CheckpointReader::begin(&mut bytes.as_slice()),
            Err(CheckpointError::UnsupportedFormat { found: 99, .. })
        ));
        let bytes = sample_checkpoint();
        let mut cursor = bytes.as_slice();
        let mut r = CheckpointReader::begin(&mut cursor).unwrap();
        // Payload version 3 of section 0xB2 is above a max of 1.
        r.section(0xA1, 1).unwrap();
        assert!(matches!(
            r.section(0xB2, 1),
            Err(CheckpointError::UnsupportedSection {
                tag: 0xB2,
                found: 3,
                supported: 1
            })
        ));
    }

    #[test]
    fn wrong_tag_is_typed() {
        let bytes = sample_checkpoint();
        let mut cursor = bytes.as_slice();
        let mut r = CheckpointReader::begin(&mut cursor).unwrap();
        assert!(matches!(
            r.section(0xC3, 1),
            Err(CheckpointError::UnexpectedSection {
                expected: 0xC3,
                found: 0xA1
            })
        ));
    }

    #[test]
    fn truncation_at_every_byte_is_typed() {
        let bytes = sample_checkpoint();
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            let outcome = CheckpointReader::begin(&mut cursor).and_then(|mut r| {
                r.section(0xA1, 1)?;
                r.section(0xB2, 3)
            });
            assert!(
                matches!(
                    outcome,
                    Err(CheckpointError::Truncated) | Err(CheckpointError::BadMagic)
                ),
                "cut at {cut} did not produce a truncation error"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_the_checksum() {
        let sections = list_sections(&sample_checkpoint()).unwrap();
        for section in &sections {
            for bit in [0usize, 3, 17] {
                let mut bytes = sample_checkpoint();
                let pos = section.payload_start + (bit / 8) % section.payload_len.max(1);
                bytes[pos] ^= 1 << (bit % 8);
                let mut cursor = bytes.as_slice();
                let outcome = CheckpointReader::begin(&mut cursor).and_then(|mut r| {
                    r.section(0xA1, 1)?;
                    r.section(0xB2, 3)
                });
                assert!(
                    outcome.is_err(),
                    "flip in section {:#x} payload went undetected",
                    section.tag
                );
            }
        }
    }

    #[test]
    fn list_sections_reports_framing() {
        let bytes = sample_checkpoint();
        let sections = list_sections(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].tag, 0xA1);
        assert_eq!(sections[1].tag, 0xB2);
        assert_eq!(sections[0].end, sections[1].start);
        assert_eq!(sections[1].end, bytes.len());
    }

    #[test]
    fn corrupted_lengths_error_without_allocating() {
        // A payload whose inner vector length claims more elements than
        // the payload holds must error, not allocate terabytes.
        let mut payload = FieldWriter::new();
        payload.u64(u64::MAX); // read back as an f64_vec length
        let mut bytes = Vec::new();
        let mut w = CheckpointWriter::begin(&mut bytes, 1).unwrap();
        w.section(0xA1, 1, &payload.into_bytes()).unwrap();
        let mut cursor = bytes.as_slice();
        let mut r = CheckpointReader::begin(&mut cursor).unwrap();
        let (_, payload) = r.section(0xA1, 1).unwrap();
        let mut f = FieldReader::new(&payload);
        assert!(f.f64_vec().is_err());
    }

    #[test]
    fn trailing_bytes_are_a_schema_mismatch() {
        let mut payload = FieldWriter::new();
        payload.u32(1);
        payload.u32(2);
        let bytes = payload.into_bytes();
        let mut f = FieldReader::new(&bytes);
        f.u32().unwrap();
        assert!(matches!(f.finish(), Err(CheckpointError::Corrupt(_))));
    }
}
