//! Property harness for checkpoint/restore on the fleet runtime (the
//! PR 8 persistence contract, one level up).
//!
//! * **Round-trip at every prefix.** Random multi-stream schedules —
//!   create / buffered ingest / direct append / evict / budgeted
//!   refresh / full tick over 2–8 workers — with a checkpoint taken
//!   after every prefix. The restored fleet must replay the remaining
//!   schedule to a `finish_all` **bit-identical** to the uninterrupted
//!   run: per-stream session state, undrained inboxes, and the
//!   fair-share rotation order all survive the round trip.
//!
//! * **Corruption is loud.** Truncation at every section boundary —
//!   including inside the *nested* per-session containers — is a typed
//!   [`CheckpointError`]; a bit flip is a typed error or an
//!   observationally-identical fleet — never a panic.

use egi_discord::streaming::StreamingDiscordMonitor;
use egi_serve::fleet::{Checkpoint, CheckpointError};
use egi_serve::{Fleet, StreamId};
use egi_testkit::{choose_evict, PointGen};
use egi_tskit::checkpoint::list_sections;
use egi_tskit::Deadline;
use proptest::prelude::*;

/// Applies one `(who, kind, amount)` schedule step. Each stream draws
/// from its own [`PointGen::fleet`] wave at its own cursor, so the
/// replayed suffix regenerates the exact same chunks.
fn drive(
    fleet: &mut Fleet<StreamingDiscordMonitor>,
    cursors: &mut [usize],
    streams: u64,
    m: usize,
    (who, kind, amount): (u64, usize, usize),
) {
    let id = who % streams;
    let gen = PointGen::fleet(id);
    let cursor = &mut cursors[id as usize];
    match kind {
        // Buffered ingest: points park in the inbox until a flush.
        0..=2 => {
            let chunk: Vec<f64> = (0..amount).map(|j| gen.at(*cursor + j)).collect();
            fleet.ingest(id, &chunk).unwrap();
            *cursor += amount;
        }
        // Direct append (flushes the inbox first).
        3..=4 => {
            let chunk: Vec<f64> = (0..amount).map(|j| gen.at(*cursor + j)).collect();
            fleet.append_to(id, &chunk).unwrap();
            *cursor += amount;
        }
        // Eviction, narrowed to a valid cut of the flushed length
        // (evict_from flushes the inbox before cutting).
        5..=6 => {
            let live = fleet.session(id).unwrap().series_len() + fleet.buffered_for(id).unwrap();
            let c = choose_evict(live, m, amount);
            fleet.evict_from(id, c).unwrap();
        }
        // Budgeted fair-share refresh across all dirty streams.
        7..=8 => {
            fleet.refresh(Deadline::queries(amount));
        }
        // Full tick: flush every inbox, then refresh.
        _ => {
            fleet.tick(Deadline::queries(amount));
        }
    }
}

/// Drives a fresh fleet through `ops[..upto]`.
fn replay_prefix(
    streams: u64,
    m: usize,
    seed: u64,
    ops: &[(u64, usize, usize)],
    upto: usize,
) -> (Fleet<StreamingDiscordMonitor>, Vec<usize>) {
    let exc = m / 2;
    let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
    for id in 0..streams {
        fleet
            .create(id, StreamingDiscordMonitor::with_seed(m, exc, seed))
            .unwrap();
    }
    let mut cursors = vec![0usize; streams as usize];
    for &op in &ops[..upto] {
        drive(&mut fleet, &mut cursors, streams, m, op);
    }
    (fleet, cursors)
}

/// `finish_all` outcomes compared field by field (profiles are bit
/// streams; equality here is the whole contract).
fn assert_same_finish(
    a: Vec<(StreamId, egi_discord::MatrixProfile)>,
    b: Vec<(StreamId, egi_discord::MatrixProfile)>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for ((id_a, fin_a), (id_b, fin_b)) in a.iter().zip(&b) {
        prop_assert_eq!(id_a, id_b);
        prop_assert_eq!(&fin_a.profile, &fin_b.profile, "stream {} profile", id_a);
        prop_assert_eq!(&fin_a.index, &fin_b.index, "stream {} index", id_a);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint-at-any-point, fleet-wide: for every prefix of a
    /// random multi-stream schedule over 2–8 workers, save → restore →
    /// replay the rest lands on the uninterrupted `finish_all`, bit
    /// for bit — and the restored scheduler state (pending work,
    /// inboxes, dirty set) matches the fleet it was saved from.
    #[test]
    fn checkpoint_at_every_prefix_finishes_bit_identical(
        streams in 2u64..9,
        m in 4usize..9,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec((0u64..8, 0usize..10, 1usize..25), 3..10),
    ) {
        let (mut oracle, _) = replay_prefix(streams, m, seed, &ops, ops.len());
        let expected = oracle.finish_all();

        for cut in 0..=ops.len() {
            let (prefix_fleet, cursors) = replay_prefix(streams, m, seed, &ops, cut);
            let bytes = prefix_fleet.checkpoint_bytes().unwrap();
            let mut restored =
                Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bytes).unwrap();
            // The restored scheduler is indistinguishable from the one
            // it was saved from…
            prop_assert_eq!(restored.len(), prefix_fleet.len());
            prop_assert_eq!(restored.dirty_count(), prefix_fleet.dirty_count());
            prop_assert_eq!(restored.pending_units(), prefix_fleet.pending_units());
            for id in 0..streams {
                prop_assert_eq!(
                    restored.buffered_for(id).unwrap(),
                    prefix_fleet.buffered_for(id).unwrap(),
                    "stream {} inbox", id
                );
                prop_assert_eq!(
                    restored.session(id).unwrap().series_len(),
                    prefix_fleet.session(id).unwrap().series_len()
                );
            }
            // …and replaying the remaining schedule converges on the
            // uninterrupted outcome.
            let mut resumed = cursors;
            for &op in &ops[cut..] {
                drive(&mut restored, &mut resumed, streams, m, op);
            }
            assert_same_finish(restored.finish_all(), expected.clone())?;
        }
    }

    /// Truncation at every section boundary — outer framing and the
    /// nested per-session containers alike — is a typed error; bit
    /// flips are typed errors or identical fleets; never a panic.
    #[test]
    fn corrupted_checkpoints_fail_loud_never_wrong(
        streams in 2u64..9,
        m in 4usize..9,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec((0u64..8, 0usize..10, 1usize..25), 3..9),
        flip_picks in prop::collection::vec((0usize..1 << 20, 0u8..8), 1..10),
    ) {
        let (fleet, _) = replay_prefix(streams, m, seed, &ops, ops.len());
        let bytes = fleet.checkpoint_bytes().unwrap();
        let expected = Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bytes)
            .unwrap()
            .finish_all();

        let sections = list_sections(&bytes).unwrap();
        let mut cuts: Vec<usize> = (0..=16).collect();
        for s in &sections {
            for at in [s.start, s.payload_start, s.end] {
                cuts.extend([at.saturating_sub(1), at, at + 1]);
            }
            // Halfway into each payload lands inside the nested
            // per-session container for STR1 sections.
            cuts.push(s.payload_start + s.payload_len / 2);
        }
        for cut in cuts {
            if cut >= bytes.len() {
                continue;
            }
            prop_assert!(
                Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bytes[..cut])
                    .is_err(),
                "truncation to {} of {} bytes loaded successfully", cut, bytes.len()
            );
        }

        for &(pos, bit) in &flip_picks {
            let pos = pos % bytes.len();
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            match Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bad) {
                Err(_) => {}
                Ok(mut restored) => {
                    assert_same_finish(restored.finish_all(), expected.clone())?;
                }
            }
        }

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        prop_assert!(matches!(
            Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8..12].copy_from_slice(&42u32.to_le_bytes());
        prop_assert!(matches!(
            Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bad_version),
            Err(CheckpointError::UnsupportedFormat { found: 42, .. })
        ));
    }
}
