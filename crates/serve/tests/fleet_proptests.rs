//! Property harness for the fleet runtime (the PR 7 parity-one-level-up
//! contract).
//!
//! Random multi-stream schedules — create / ingest / append / evict /
//! budgeted refresh interleavings — are driven against per-stream
//! *shadow monitors* fed the same logical schedule standalone. For
//! every seed, chunk size, stream count, and worker count:
//!
//! * each stream's [`Fleet::finish`] is **bit-identical** to its shadow
//!   (and, transitively, to batch [`stamp_with_exclusion`] /
//!   [`EnsembleDetector::detect`] over the surviving suffix);
//! * the fair-share scheduler's starvation bound is observed — every
//!   dirty stream receives ⌊U/d⌋..⌈U/d⌉ units from a `U`-unit budget
//!   over `d` equally-loaded dirty streams;
//! * invalid evictions are rejected atomically, naming the stream,
//!   without poisoning the fleet or perturbing any other stream.

use egi_core::{EnsembleConfig, EnsembleDetector, StreamingEnsembleDetector};
use egi_discord::stamp::stamp_with_exclusion;
use egi_discord::streaming::{StreamSession, StreamingDiscordMonitor};
use egi_serve::{Fleet, FleetError, StreamId};
use egi_testkit::{choose_evict, PointGen};
use egi_tskit::evict::EvictError;
use egi_tskit::Deadline;
use proptest::prelude::*;

/// Deterministic unbounded per-stream source: the value of stream `id`
/// at its global position `i` (the shared [`PointGen::fleet`] wave).
/// Distinct phase and drift per stream so cross-stream state leaks
/// would break parity immediately.
fn point(id: StreamId, i: usize) -> f64 {
    PointGen::fleet(id).at(i)
}

/// Per-stream shadow bookkeeping: the standalone monitor fed the same
/// logical schedule, plus the global cursor / offset that name the
/// surviving suffix.
struct Shadow {
    monitor: StreamingDiscordMonitor,
    appended: usize,
    offset: usize,
    /// Points handed to `Fleet::ingest` but not yet flushed — the
    /// shadow defers them the same way the fleet's inbox does.
    inbox: Vec<f64>,
}

impl Shadow {
    fn flush(&mut self) {
        if !self.inbox.is_empty() {
            self.monitor.append(&self.inbox);
            self.inbox.clear();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole acceptance property: random multi-stream schedules
    /// of buffered ingest, direct appends, evictions, and budgeted
    /// refreshes leave every stream's `finish` bit-identical to a
    /// standalone monitor fed the same schedule, and to batch STAMP
    /// over the surviving suffix.
    #[test]
    fn multi_stream_schedules_match_shadow_monitors(
        streams in 2u64..5,
        m in 4usize..10,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec(
            (0u64..4, 0usize..10, 1usize..33),
            4..20,
        ),
    ) {
        let exc = m / 2;
        let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
        let mut shadows: Vec<Shadow> = Vec::new();
        for id in 0..streams {
            fleet
                .create(id, StreamingDiscordMonitor::with_seed(m, exc, seed))
                .unwrap();
            shadows.push(Shadow {
                monitor: StreamingDiscordMonitor::with_seed(m, exc, seed),
                appended: 0,
                offset: 0,
                inbox: Vec::new(),
            });
        }
        for &(who, kind, amount) in &ops {
            let id = who % streams;
            // A full tick flushes every stream's inbox on both sides.
            if kind == 9 {
                for s in shadows.iter_mut() {
                    s.flush();
                }
                fleet.tick(Deadline::queries(amount));
            }
            let shadow = &mut shadows[id as usize];
            match kind {
                // Buffered dribbles through the front door: the fleet
                // coalesces them, the shadow holds them in its own
                // inbox until the same flush point.
                0..=2 => {
                    for j in 0..amount {
                        let x = point(id, shadow.appended + j);
                        fleet.ingest(id, &[x]).unwrap();
                        shadow.inbox.push(x);
                    }
                    shadow.appended += amount;
                }
                // Direct append: flushes the inbox first on both sides.
                3..=4 => {
                    let chunk: Vec<f64> = (0..amount)
                        .map(|j| point(id, shadow.appended + j))
                        .collect();
                    fleet.append_to(id, &chunk).unwrap();
                    shadow.flush();
                    shadow.monitor.append(&chunk);
                    shadow.appended += amount;
                }
                // Eviction: call-order semantics flush the inbox first,
                // so the valid cut is chosen from the flushed length.
                5..=6 => {
                    shadow.flush();
                    let c = choose_evict(shadow.monitor.series_len(), m, amount);
                    fleet.evict_from(id, c).unwrap();
                    shadow.monitor.evict(c).unwrap();
                    shadow.offset += c;
                }
                // Budgeted refresh across every dirty stream. The
                // shadows don't step — `finish` parity can't depend on
                // how much incremental work already happened.
                7..=8 => {
                    fleet.refresh(Deadline::queries(amount));
                }
                // Full tick: handled above, before borrowing one shadow.
                _ => {}
            }
            // The fleet's flushed view agrees with the shadow's.
            let session = fleet.session(id).unwrap();
            let flushed = shadow.appended - shadow.offset - shadow.inbox.len();
            prop_assert_eq!(session.series_len(), flushed);
            prop_assert_eq!(session.stream_offset(), shadow.offset);
            prop_assert_eq!(fleet.buffered_for(id).unwrap(), shadow.inbox.len());
        }
        // Every stream finishes bit-identical to its shadow AND to the
        // batch profile of the surviving suffix.
        for (id, shadow) in shadows.iter_mut().enumerate() {
            let id = id as StreamId;
            let finished = fleet.finish(id).unwrap();
            shadow.flush();
            let reference = shadow.monitor.finish();
            prop_assert_eq!(&finished.profile, &reference.profile);
            prop_assert_eq!(&finished.index, &reference.index);
            let suffix: Vec<f64> =
                (shadow.offset..shadow.appended).map(|i| point(id, i)).collect();
            if suffix.len() >= m {
                let batch = stamp_with_exclusion(&suffix, m, exc);
                prop_assert_eq!(&finished.profile, &batch.profile);
                prop_assert_eq!(&finished.index, &batch.index);
            } else {
                prop_assert!(finished.is_empty());
            }
        }
    }

    /// The starvation bound, observed: over `d` equally-loaded dirty
    /// streams, a `U`-unit refresh gives every stream ⌊U/d⌋..⌈U/d⌉
    /// units — in particular ≥ 1 whenever U ≥ d.
    #[test]
    fn fair_share_starvation_bound_is_observed(
        streams in 2u64..9,
        m in 4usize..9,
        extra in 8usize..40,
        budget_per in 1usize..12,
    ) {
        let len = m + extra; // pending units per stream = extra + 1
        let pending_each = len - m + 1;
        let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
        for id in 0..streams {
            let series: Vec<f64> = (0..len).map(|i| point(id, i)).collect();
            let mut monitor = StreamingDiscordMonitor::new(m);
            monitor.append(&series);
            fleet.create(id, monitor).unwrap();
        }
        let d = streams as usize;
        prop_assert_eq!(fleet.dirty_count(), d);
        let budget = (budget_per * d).min(pending_each * d);
        let ran = fleet.refresh(Deadline::queries(budget));
        prop_assert_eq!(ran, budget);
        let served: Vec<usize> = (0..streams)
            .map(|id| pending_each - fleet.session(id).unwrap().pending_units())
            .collect();
        let floor = budget / d;
        let ceil = budget.div_ceil(d);
        for (id, &s) in served.iter().enumerate() {
            prop_assert!(
                (floor..=ceil).contains(&s),
                "stream {} served {} units, bound is {}..={}",
                id, s, floor, ceil
            );
        }
        prop_assert_eq!(served.iter().sum::<usize>(), budget);
    }

    /// Invalid evictions are rejected atomically with the stream id
    /// attached: the target stream is untouched, every other stream is
    /// oblivious, and the whole fleet still finishes on parity.
    #[test]
    fn invalid_evictions_do_not_poison_the_fleet(
        streams in 2u64..5,
        m in 4usize..9,
        len in 12usize..60,
        over in 1usize..25,
        budget in 0usize..40,
    ) {
        let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
        for id in 0..streams {
            let series: Vec<f64> = (0..len).map(|i| point(id, i)).collect();
            let mut monitor = StreamingDiscordMonitor::new(m);
            monitor.append(&series);
            fleet.create(id, monitor).unwrap();
        }
        fleet.refresh(Deadline::queries(budget));
        let victim = streams - 1;
        let before: Vec<usize> = (0..streams)
            .map(|id| fleet.session(id).unwrap().pending_units())
            .collect();

        // Past the end of the victim stream.
        prop_assert_eq!(
            fleet.evict_from(victim, len + over),
            Err(FleetError::Evict {
                id: victim,
                error: EvictError::PastEnd { requested: len + over, available: len },
            })
        );
        // Leaving a non-empty suffix shorter than m.
        if len > m {
            let c = len - (m - 1).max(1);
            prop_assert_eq!(
                fleet.evict_from(victim, c),
                Err(FleetError::Evict {
                    id: victim,
                    error: EvictError::BelowMinimum {
                        remaining: len - c,
                        minimum: m,
                    },
                })
            );
        }
        // Unknown stream: the fleet itself rejects before any session
        // is touched.
        prop_assert_eq!(
            fleet.evict_from(streams, 1),
            Err(FleetError::UnknownStream { id: streams })
        );

        // Nothing moved, nothing was poisoned: pending work, lengths,
        // and final profiles are exactly the no-error outcome.
        for id in 0..streams {
            let session = fleet.session(id).unwrap();
            prop_assert_eq!(session.series_len(), len);
            prop_assert_eq!(session.stream_offset(), 0);
            prop_assert_eq!(session.pending_units(), before[id as usize]);
        }
        for id in 0..streams {
            let finished = fleet.finish(id).unwrap();
            let series: Vec<f64> = (0..len).map(|i| point(id, i)).collect();
            if len >= m {
                let batch = stamp_with_exclusion(&series, m, m / 2);
                prop_assert_eq!(&finished.profile, &batch.profile);
                prop_assert_eq!(&finished.index, &batch.index);
            }
        }
    }

    /// `finish_all` catch-up parity across rayon worker counts, with
    /// the ensemble detector as the session type: per-stream reports
    /// stay bit-identical to standalone shadows for every thread count.
    #[test]
    fn finish_all_is_bit_identical_across_worker_counts(
        streams in 2u64..5,
        window in 8usize..16,
        members in 3usize..6,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..30,
        threads in 2usize..9,
    ) {
        let cfg = EnsembleConfig {
            window,
            ensemble_size: members,
            parallel: true,
            ..EnsembleConfig::default()
        };
        let total = window * 6;
        let mut fleet: Fleet<StreamingEnsembleDetector> = Fleet::new();
        for id in 0..streams {
            fleet
                .create(id, StreamingEnsembleDetector::new(cfg, seed))
                .unwrap();
            let series: Vec<f64> = (0..total).map(|i| point(id, i)).collect();
            for part in series.chunks(chunk) {
                fleet.ingest(id, part).unwrap();
            }
        }
        // Partial progress under a shared budget, then parallel
        // catch-up inside a pool of the given size.
        fleet.tick(Deadline::queries(streams as usize * 2));
        let reports = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| fleet.finish_all());
        prop_assert_eq!(reports.len(), streams as usize);
        for (id, report) in reports {
            let series: Vec<f64> = (0..total).map(|i| point(id, i)).collect();
            let mut shadow = StreamingEnsembleDetector::new(cfg, seed);
            shadow.append(&series);
            let reference = StreamSession::finish(&mut shadow);
            prop_assert_eq!(&report, &reference);
            // And transitively: the trait-level finish reports every
            // non-overlapping candidate, same as batch detect at the
            // same k.
            let k = reference.anomalies.len();
            let batch = EnsembleDetector::new(cfg).detect(&series, k, seed);
            prop_assert_eq!(&report.anomalies, &batch.anomalies);
        }
    }
}

/// The ISSUE acceptance criterion at scale: one global deadline spread
/// across **1,000 dirty streams** with the starvation bound proven —
/// every stream receives ⌊U/1000⌋..⌈U/1000⌉ units, none starves — and
/// per-stream finish still lands bit-identical to batch STAMP.
#[test]
fn fair_share_spreads_one_deadline_across_1000_dirty_streams() {
    let m = 8usize;
    let len = 48usize; // 41 pending query units per stream
    let streams = 1_000u64;
    let pending_each = len - m + 1;
    let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
    for id in 0..streams {
        let series: Vec<f64> = (0..len).map(|i| point(id, i)).collect();
        let mut monitor = StreamingDiscordMonitor::new(m);
        monitor.append(&series);
        fleet.create(id, monitor).unwrap();
    }
    assert_eq!(fleet.dirty_count(), 1_000);
    assert_eq!(fleet.pending_units(), 1_000 * pending_each);

    // A budget that doesn't divide evenly: 2,500 units over 1,000
    // streams ⇒ exactly 500 streams get 3 units and 500 get 2.
    let budget = 2_500usize;
    let ran = fleet.refresh(Deadline::queries(budget));
    assert_eq!(ran, budget);
    let mut floor_count = 0usize;
    let mut ceil_count = 0usize;
    for id in 0..streams {
        let served = pending_each - fleet.session(id).unwrap().pending_units();
        assert!(served >= 1, "stream {id} starved");
        match served {
            2 => floor_count += 1,
            3 => ceil_count += 1,
            s => panic!("stream {id} served {s} units, bound is 2..=3"),
        }
    }
    assert_eq!((floor_count, ceil_count), (500, 500));
    assert_eq!(fleet.dirty_count(), 1_000, "all streams still have work");

    // Catch-up, then spot-check parity across the fleet.
    let reports = fleet.finish_all();
    assert_eq!(reports.len(), 1_000);
    assert_eq!(fleet.pending_units(), 0);
    for (id, profile) in reports.into_iter().step_by(97) {
        let series: Vec<f64> = (0..len).map(|i| point(id, i)).collect();
        let reference = stamp_with_exclusion(&series, m, m / 2);
        assert_eq!(profile.profile, reference.profile, "stream {id}");
        assert_eq!(profile.index, reference.index, "stream {id}");
    }
}
