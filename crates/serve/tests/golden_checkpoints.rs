//! Golden-fixture test for the fleet checkpoint format.
//!
//! `tests/fixtures/fleet_v1.ckpt` holds committed bytes — a
//! three-stream fleet with staggered progress, an undrained inbox, and
//! a rotated fair-share queue — written when the format was
//! introduced. This proves today's code still loads them and resumes
//! onto the same bit-identical per-stream profiles. A failure means
//! the on-disk format (outer framing or the nested per-session
//! containers) changed without a version bump.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! cargo test -p egi-serve --test golden_checkpoints -- --ignored
//! ```

use egi_discord::streaming::StreamingDiscordMonitor;
use egi_serve::fleet::Checkpoint;
use egi_serve::Fleet;
use egi_testkit::PointGen;
use egi_tskit::Deadline;
use std::path::PathBuf;

const M: usize = 5;
const EXC: usize = 2;
const SEED: u64 = 7;
const STREAMS: u64 = 3;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The canonical mid-schedule fleet: three streams with different
/// lengths, one partial refresh (so the rotation is mid-cycle), one
/// eviction, and one stream holding an undrained inbox.
fn canonical_fleet() -> Fleet<StreamingDiscordMonitor> {
    let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
    for id in 0..STREAMS {
        fleet
            .create(id, StreamingDiscordMonitor::with_seed(M, EXC, SEED))
            .unwrap();
        let gen = PointGen::fleet(id);
        fleet
            .append_to(id, &gen.slice(0..30 + 5 * id as usize))
            .unwrap();
    }
    fleet.refresh(Deadline::queries(7));
    fleet.evict_from(1, 9).unwrap();
    fleet.ingest(2, &PointGen::fleet(2).slice(40..46)).unwrap();
    fleet
}

#[test]
fn golden_fleet_checkpoint_still_loads() {
    let bytes = std::fs::read(fixture_path("fleet_v1.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let mut restored = Fleet::<StreamingDiscordMonitor>::from_checkpoint_bytes(&bytes)
        .expect("golden fleet checkpoint no longer loads: format broke without a version bump");
    assert_eq!(restored.len(), STREAMS as usize);
    assert_eq!(restored.buffered_for(2).unwrap(), 6);
    let reports = restored.finish_all();
    let expected = canonical_fleet().finish_all();
    assert_eq!(reports.len(), expected.len());
    for ((id_a, fin_a), (id_b, fin_b)) in reports.iter().zip(&expected) {
        assert_eq!(id_a, id_b);
        assert_eq!(fin_a.profile, fin_b.profile, "stream {id_a} profile");
        assert_eq!(fin_a.index, fin_b.index, "stream {id_a} index");
    }
}

/// The writer side is still byte-deterministic: saving the canonical
/// fleet today reproduces the committed fixture exactly.
#[test]
fn canonical_checkpoint_bytes_are_stable() {
    let committed = std::fs::read(fixture_path("fleet_v1.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let fresh = canonical_fleet().checkpoint_bytes().unwrap();
    assert_eq!(
        fresh, committed,
        "today's encoder no longer reproduces the committed bytes"
    );
}

#[test]
#[ignore = "regenerates the committed fixture; run only after an intentional format change"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let bytes = canonical_fleet().checkpoint_bytes().unwrap();
    std::fs::write(fixture_path("fleet_v1.ckpt"), &bytes).unwrap();
}
