//! # egi-serve — multi-stream fleet runtime
//!
//! Everything below `egi-serve` drives exactly one monitor over one
//! series. This crate is the serving layer the ROADMAP's "millions of
//! users" north star asks for: a [`Fleet`] owns many independent
//! streaming sessions — any implementor of
//! [`egi_tskit::session::StreamSession`], so both
//! `egi_discord::streaming::StreamingDiscordMonitor` and
//! `egi_core::streaming::StreamingEnsembleDetector` plug in unchanged —
//! keyed by stream id, and multiplexes ingest and refresh across them:
//!
//! * **Batched ingest front door** — [`Fleet::ingest`] buffers small
//!   appends per stream and [`Fleet::flush_all`] / [`Fleet::tick`]
//!   coalesces each stream's buffer into **one** append per tick. The
//!   monitors' amortization analysis (PR 3/5) says callers should
//!   batch appends and evictions; the server now does it for them.
//! * **Fair-share refresh scheduler** — [`Fleet::refresh`] spreads one
//!   global [`Deadline`](egi_tskit::Deadline) across every dirty
//!   stream, round-robin over single [`step()`] units, with a
//!   starvation bound: every dirty stream gets ≥ 1 unit per full
//!   rotation (see [`fleet`] module docs for the scheduling model).
//! * **Per-stream memory budgets** — [`Fleet::retain_last`] installs
//!   the monitors' sliding-window retention per stream.
//! * **Parity, one level up** — for every interleaving of per-stream
//!   appends, evictions, and budgeted refreshes, each stream's
//!   [`finish`](Fleet::finish) is **bit-identical** to a standalone
//!   monitor fed the same schedule (property-tested across seeds,
//!   chunk sizes, and rayon worker counts in
//!   `tests/fleet_proptests.rs`). The fleet adds scheduling, never
//!   arithmetic: it only calls the session methods the standalone
//!   caller would.
//!
//! [`step()`]: egi_tskit::session::StreamSession::step
//!
//! # Quickstart
//!
//! ```
//! use egi_discord::streaming::StreamingDiscordMonitor;
//! use egi_serve::Fleet;
//! use egi_tskit::Deadline;
//!
//! let mut fleet: Fleet<StreamingDiscordMonitor> = Fleet::new();
//! for id in 0..3u64 {
//!     fleet.create(id, StreamingDiscordMonitor::new(8)).unwrap();
//! }
//!
//! // Live traffic arrives in dribbles; the front door coalesces them.
//! for t in 0..96usize {
//!     for id in 0..3u64 {
//!         let x = ((t * 3 + id as usize) as f64 * 0.21).sin();
//!         fleet.ingest(id, &[x]).unwrap();
//!     }
//! }
//! // One tick: one append per stream, then a shared refresh budget
//! // spread fairly across every dirty stream.
//! let report = fleet.tick(Deadline::queries(120));
//! assert_eq!(report.flushed_points, 3 * 96);
//! assert!(report.units <= 120);
//!
//! // Each stream's finish is bit-identical to a standalone monitor
//! // fed the same schedule.
//! let profile = fleet.finish(1).unwrap();
//! let mut standalone = StreamingDiscordMonitor::new(8);
//! let points: Vec<f64> = (0..96).map(|t| ((t * 3 + 1) as f64 * 0.21).sin()).collect();
//! standalone.append(&points);
//! let reference = standalone.finish();
//! assert_eq!(profile.profile, reference.profile);
//! assert_eq!(profile.index, reference.index);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fleet;

pub use fleet::{Fleet, FleetError, FleetObs, StreamId, TickReport};
