//! The fleet manager: many [`StreamSession`]s, one scheduler.
//!
//! # Scheduling model
//!
//! A stream is **dirty** while its session has pending refresh units
//! (work enqueued by appends and evictions that [`step()`] has not yet
//! performed). The fleet keeps the dirty streams in a round-robin
//! rotation and [`Fleet::refresh`] services them one *unit* at a time
//! under one global [`Deadline`].
//!
//! ## Fair-share scheduling
//!
//! The scheduler's fairness guarantee is structural, not statistical:
//! the rotation is a FIFO queue of dirty stream ids, each present
//! exactly once. A refresh pass pops the front stream, runs **one**
//! `step()` unit, and re-enqueues the stream at the back iff it still
//! has pending work. Consequences:
//!
//! * **Starvation bound** — between two consecutive services of any
//!   dirty stream, every other dirty stream is serviced at most once;
//!   equivalently, a refresh budget of `u` units over `d` dirty
//!   streams gives every stream at least `⌊u/d⌋` units (and at most
//!   `⌈u/d⌉`) while it stays dirty. With `u ≥ d`, **every dirty
//!   stream gets ≥ 1 unit per full rotation** — no stream waits
//!   behind another's backlog.
//! * **Deadline contract** — the deadline is checked before each
//!   unit (the same contract every session driver honors), so a
//!   wall-clock deadline is overshot by at most one unit's work and
//!   an already-expired deadline runs zero units.
//! * **Cost model** — scheduling overhead is `O(1)` per unit (one
//!   queue pop, one hash lookup, one conditional re-push), so a
//!   refresh of `u` units costs `u · (unit work + O(1))`; the
//!   per-tick latency is governed entirely by the deadline the
//!   caller passes, independent of fleet size. Memory is `O(streams)`
//!   for the rotation plus whatever each session retains (bound it
//!   per stream with [`Fleet::retain_last`]).
//!
//! Because every unit is a plain `step()` on one session, scheduling
//! order can never change any stream's final answer: a session's state
//! depends only on its own append/evict schedule and how *many* of its
//! units ran, never on when other streams ran theirs. That is the
//! whole parity argument — the fleet inherits bit-parity from the
//! sessions it schedules.
//!
//! [`step()`]: StreamSession::step

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// The persistence contract implemented by the fleet, re-exported from
/// [`egi_tskit::checkpoint`]: when `S` itself implements [`Checkpoint`],
/// the whole fleet — sessions, ingest buffers, and the fair-share
/// rotation — saves and restores as one container.
pub use egi_tskit::checkpoint::{Checkpoint, CheckpointError};
use egi_tskit::checkpoint::{CheckpointReader, CheckpointWriter, FieldReader, FieldWriter};
use egi_tskit::evict::EvictError;
use egi_tskit::session::StreamSession;
use egi_tskit::Deadline;
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Identifier a fleet stream is keyed by.
pub type StreamId = u64;

/// Errors surfaced by fleet operations. Every error is rejected
/// **atomically**: the fleet (and every session in it) is left exactly
/// as it was, so one misbehaving caller cannot poison the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The stream id is not (or no longer) in the fleet.
    UnknownStream {
        /// The offending id.
        id: StreamId,
    },
    /// [`Fleet::create`] was asked to reuse a live stream id.
    DuplicateStream {
        /// The offending id.
        id: StreamId,
    },
    /// The stream's session rejected an eviction (the shared
    /// [`EvictError`] boundary rule); the session is untouched.
    Evict {
        /// The stream whose eviction was rejected.
        id: StreamId,
        /// The session's rejection.
        error: EvictError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownStream { id } => write!(f, "unknown stream {id}"),
            Self::DuplicateStream { id } => write!(f, "stream {id} already exists"),
            Self::Evict { id, error } => write!(f, "eviction rejected on stream {id}: {error}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// What one [`Fleet::tick`] did: ingest buffers flushed, then refresh
/// units run under the tick's deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickReport {
    /// Buffered points coalesced into per-stream appends by the flush
    /// phase.
    pub flushed_points: usize,
    /// Refresh units the fair-share scheduler ran.
    pub units: usize,
    /// Wall time the whole tick took (flush + refresh).
    pub elapsed: Duration,
    /// Most units any single stream received this tick — with `d`
    /// dirty streams and `u` units, fair-share bounds this by
    /// `⌈u/d⌉` while every stream stays dirty.
    pub max_stream_units: usize,
}

/// A point-in-time snapshot of the fleet's own telemetry, returned by
/// [`Fleet::metrics`]. Lifetime counters accumulate across the fleet's
/// life (they are *not* checkpointed — telemetry describes a process,
/// not resumable state, so a restored fleet starts from zero); the
/// `streams`/`dirty_streams`/`pending_units`/`buffered_points` fields
/// are derived from live state at snapshot time.
///
/// The coalescing ratio of the batched front door is
/// `ingest_calls / coalesced_appends` (both kept as `u64` so the
/// division — and any float — is the caller's choice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetObs {
    /// Live streams at snapshot time.
    pub streams: u64,
    /// Streams currently in the refresh rotation.
    pub dirty_streams: u64,
    /// Pending refresh units across all streams (flushed work only).
    pub pending_units: u64,
    /// Points buffered across all inboxes, not yet flushed.
    pub buffered_points: u64,
    /// [`Fleet::tick`] calls.
    pub ticks: u64,
    /// Refresh units run, across all `refresh`/`tick` calls.
    pub units_total: u64,
    /// Buffered points coalesced into appends by flushes.
    pub flushed_points_total: u64,
    /// [`Fleet::ingest`] calls (coalescing-ratio numerator).
    pub ingest_calls: u64,
    /// Points buffered by ingest calls.
    pub ingested_points: u64,
    /// Non-empty flushes, i.e. coalesced appends the sessions saw
    /// (coalescing-ratio denominator).
    pub coalesced_appends: u64,
    /// Wall-clock refresh deadlines observed past their instant after
    /// the loop exited (each bounded by one unit's work). Only
    /// observed while [`egi_obs::enabled`] — detection reads the
    /// clock.
    pub deadline_overshoots: u64,
    /// `max_stream_units` of the most recent tick.
    pub last_tick_max_stream_units: u64,
}

/// One managed stream: its session, its ingest buffer, and whether it
/// currently sits in the refresh rotation.
#[derive(Debug)]
struct Slot<S> {
    session: S,
    /// Coalescing buffer for [`Fleet::ingest`]; drained into one
    /// `append` per flush.
    inbox: Vec<f64>,
    /// `true` iff the stream's id is in the rotation queue.
    dirty: bool,
    /// When the scheduler last serviced this stream, while it stays in
    /// the rotation — feeds the wait-for-turn histogram that makes the
    /// starvation bound observable. Cleared when the stream leaves the
    /// rotation; only maintained while [`egi_obs::enabled`].
    last_service: Option<Instant>,
}

/// A manager for many independent [`StreamSession`]s — batched ingest,
/// per-stream memory budgets, and fair-share refresh scheduling under
/// one global [`Deadline`]. See the [module docs](self) for the
/// scheduling model and the crate docs for a quickstart.
#[derive(Debug)]
pub struct Fleet<S: StreamSession> {
    slots: FxHashMap<StreamId, Slot<S>>,
    /// Stream ids in creation order — the deterministic iteration
    /// order for flushes and reports.
    order: Vec<StreamId>,
    /// Round-robin rotation: exactly the dirty stream ids, each once.
    rotation: VecDeque<StreamId>,
    /// Total points currently buffered across all inboxes.
    buffered: usize,
    /// Lifetime telemetry counters; the live-derived [`FleetObs`]
    /// fields stay zero here and are filled by [`Fleet::metrics`].
    /// Deliberately not checkpointed.
    obs: FleetObs,
}

impl<S: StreamSession> Default for Fleet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: StreamSession> Fleet<S> {
    /// An empty fleet.
    pub fn new() -> Self {
        Self {
            slots: FxHashMap::default(),
            order: Vec::new(),
            rotation: VecDeque::new(),
            buffered: 0,
            obs: FleetObs::default(),
        }
    }

    /// Number of live streams.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when the fleet manages no streams.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` when `id` names a live stream.
    pub fn contains(&self, id: StreamId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Live stream ids in creation order.
    pub fn ids(&self) -> &[StreamId] {
        &self.order
    }

    /// Read-only access to a stream's session (e.g. for accessors like
    /// `series_len` or backend-specific capacity probes).
    pub fn session(&self, id: StreamId) -> Option<&S> {
        self.slots.get(&id).map(|slot| &slot.session)
    }

    /// Adds `session` under `id`. A session created mid-life (with
    /// pending work) enters the refresh rotation immediately.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateStream`] when `id` is already live; the
    /// fleet is unchanged (the offered session is dropped).
    pub fn create(&mut self, id: StreamId, session: S) -> Result<(), FleetError> {
        if self.slots.contains_key(&id) {
            return Err(FleetError::DuplicateStream { id });
        }
        let dirty = session.pending_units() > 0;
        self.slots.insert(
            id,
            Slot {
                session,
                inbox: Vec::new(),
                dirty,
                last_service: None,
            },
        );
        self.order.push(id);
        if dirty {
            self.rotation.push_back(id);
        }
        Ok(())
    }

    /// Removes stream `id` and returns its session (buffered,
    /// never-flushed points are dropped with the inbox).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn remove(&mut self, id: StreamId) -> Result<S, FleetError> {
        let slot = self
            .slots
            .remove(&id)
            .ok_or(FleetError::UnknownStream { id })?;
        self.order.retain(|&o| o != id);
        if slot.dirty {
            self.rotation.retain(|&r| r != id);
        }
        self.buffered -= slot.inbox.len();
        Ok(slot.session)
    }

    /// Appends `points` to stream `id` **immediately** (no
    /// coalescing), flushing any buffered points first so operations
    /// apply in call order. Prefer [`ingest`](Self::ingest) +
    /// [`tick`](Self::tick) for small per-stream dribbles — the
    /// monitors' append cost amortizes over chunk size.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn append_to(&mut self, id: StreamId, points: &[f64]) -> Result<(), FleetError> {
        self.flush(id)?;
        let slot = self.slots.get_mut(&id).expect("flush checked liveness");
        slot.session.append(points);
        Self::sync_rotation(&mut self.rotation, id, slot);
        Ok(())
    }

    /// Buffers `points` for stream `id` — the batched front door. The
    /// session sees nothing until the next flush coalesces the
    /// stream's whole buffer into **one** append.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn ingest(&mut self, id: StreamId, points: &[f64]) -> Result<(), FleetError> {
        let slot = self
            .slots
            .get_mut(&id)
            .ok_or(FleetError::UnknownStream { id })?;
        slot.inbox.extend_from_slice(points);
        self.buffered += points.len();
        self.obs.ingest_calls += 1;
        self.obs.ingested_points += points.len() as u64;
        Ok(())
    }

    /// Total points currently buffered across all streams.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Points currently buffered for stream `id`.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn buffered_for(&self, id: StreamId) -> Result<usize, FleetError> {
        self.slots
            .get(&id)
            .map(|slot| slot.inbox.len())
            .ok_or(FleetError::UnknownStream { id })
    }

    /// Coalesces stream `id`'s buffered points into one append.
    /// Returns how many points were flushed (0 for an empty buffer).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn flush(&mut self, id: StreamId) -> Result<usize, FleetError> {
        let slot = self
            .slots
            .get_mut(&id)
            .ok_or(FleetError::UnknownStream { id })?;
        let n = slot.inbox.len();
        if n > 0 {
            slot.session.append(&slot.inbox);
            slot.inbox.clear();
            self.buffered -= n;
            self.obs.coalesced_appends += 1;
            self.obs.flushed_points_total += n as u64;
            Self::sync_rotation(&mut self.rotation, id, slot);
        }
        Ok(n)
    }

    /// Flushes every stream's buffer (in creation order); returns the
    /// total points appended.
    pub fn flush_all(&mut self) -> usize {
        let mut flushed = 0;
        for i in 0..self.order.len() {
            let id = self.order[i];
            flushed += self.flush(id).expect("order holds only live ids");
        }
        flushed
    }

    /// Evicts the oldest `count` points from stream `id` (flushing its
    /// buffer first, so operations apply in call order).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live;
    /// [`FleetError::Evict`] when the session rejects the cut under
    /// the shared boundary rule. Rejection is atomic — the session,
    /// the stream's scheduling state, and every other stream are
    /// untouched, so an invalid eviction cannot poison the fleet.
    pub fn evict_from(&mut self, id: StreamId, count: usize) -> Result<(), FleetError> {
        self.flush(id)?;
        let slot = self.slots.get_mut(&id).expect("flush checked liveness");
        slot.session
            .evict(count)
            .map_err(|error| FleetError::Evict { id, error })?;
        Self::sync_rotation(&mut self.rotation, id, slot);
        Ok(())
    }

    /// Installs a per-stream retention budget: stream `id` keeps at
    /// most `n` live points from now on (its buffer is flushed first).
    /// Returns the number of points the immediate trim retired.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live;
    /// [`FleetError::Evict`] when the session rejects the budget
    /// (e.g. smaller than its analysis window). Atomic, as with
    /// [`evict_from`](Self::evict_from).
    pub fn retain_last(&mut self, id: StreamId, n: usize) -> Result<usize, FleetError> {
        self.flush(id)?;
        let slot = self.slots.get_mut(&id).expect("flush checked liveness");
        let trimmed = slot
            .session
            .retain_last(n)
            .map_err(|error| FleetError::Evict { id, error })?;
        Self::sync_rotation(&mut self.rotation, id, slot);
        Ok(trimmed)
    }

    /// The stream's current (possibly stale) answer — its session's
    /// [`snapshot`](StreamSession::snapshot). Reflects flushed points
    /// only; buffered ingest is invisible until the next flush.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn query(&self, id: StreamId) -> Result<S::Snapshot, FleetError> {
        self.slots
            .get(&id)
            .map(|slot| slot.session.snapshot())
            .ok_or(FleetError::UnknownStream { id })
    }

    /// Flushes stream `id`, drains its pending work, and returns its
    /// exact report — bit-identical to a standalone session fed the
    /// same schedule (the fleet-level parity contract).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] when `id` is not live.
    pub fn finish(&mut self, id: StreamId) -> Result<S::Report, FleetError> {
        self.flush(id)?;
        let slot = self.slots.get_mut(&id).expect("flush checked liveness");
        let report = slot.session.finish();
        if slot.dirty {
            slot.dirty = false;
            slot.last_service = None;
            self.rotation.retain(|&r| r != id);
        }
        Ok(report)
    }

    /// Streams currently in the refresh rotation.
    pub fn dirty_count(&self) -> usize {
        self.rotation.len()
    }

    /// Total pending refresh units across all streams (flushed work
    /// only).
    pub fn pending_units(&self) -> usize {
        self.order
            .iter()
            .map(|id| self.slots[id].session.pending_units())
            .sum()
    }

    /// Runs refresh units round-robin across the dirty streams until
    /// `deadline` expires or no stream is dirty; returns the units
    /// run. See the [module docs](self) for the fair-share guarantee:
    /// one unit per dirty stream per rotation, deadline checked before
    /// each unit.
    pub fn refresh(&mut self, deadline: Deadline) -> usize {
        self.refresh_counted(deadline).0
    }

    /// The refresh loop, additionally reporting the most units any
    /// single stream received (the fair-share ⌈u/d⌉ bound, made
    /// observable).
    fn refresh_counted(&mut self, deadline: Deadline) -> (usize, usize) {
        let obs_on = egi_obs::enabled();
        let mut units = 0;
        let mut max_stream_units = 0;
        let mut per_stream: FxHashMap<StreamId, usize> = FxHashMap::default();
        while !deadline.expired(units) {
            let Some(id) = self.rotation.pop_front() else {
                break;
            };
            let slot = self.slots.get_mut(&id).expect("rotation holds live ids");
            if obs_on {
                let now = Instant::now();
                if let Some(last) = slot.last_service {
                    egi_obs::histogram!("egi_fleet_wait_for_turn_nanos")
                        .record(u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX));
                }
                slot.last_service = Some(now);
            }
            if slot.session.step() {
                units += 1;
                let served = per_stream.entry(id).or_insert(0);
                *served += 1;
                max_stream_units = max_stream_units.max(*served);
            }
            if slot.session.pending_units() > 0 {
                self.rotation.push_back(id);
            } else {
                slot.dirty = false;
                slot.last_service = None;
                if obs_on {
                    let served = per_stream.get(&id).copied().unwrap_or(0);
                    egi_obs::trace!("egi_fleet_scheduler").push("drained", id, served as u64);
                }
            }
        }
        self.obs.units_total += units as u64;
        if obs_on {
            egi_obs::counter!("egi_fleet_refresh_units_total").add(units as u64);
            if let Some(overshoot) = deadline.overshoot_nanos() {
                self.obs.deadline_overshoots += 1;
                egi_obs::counter!("egi_fleet_deadline_overshoots_total").inc();
                egi_obs::histogram!("egi_fleet_deadline_overshoot_nanos").record(overshoot);
            }
            egi_obs::gauge!("egi_fleet_dirty_streams").set(self.rotation.len() as u64);
            egi_obs::gauge!("egi_fleet_pending_units").set(self.pending_units() as u64);
            egi_obs::trace!("egi_fleet_scheduler").push(
                "refresh",
                units as u64,
                self.rotation.len() as u64,
            );
        }
        (units, max_stream_units)
    }

    /// One serving tick: flush every stream's ingest buffer (one
    /// coalesced append per stream), then spread `deadline` across the
    /// dirty streams via [`refresh`](Self::refresh).
    pub fn tick(&mut self, deadline: Deadline) -> TickReport {
        let start = Instant::now();
        let flushed_points = self.flush_all();
        let (units, max_stream_units) = self.refresh_counted(deadline);
        let elapsed = start.elapsed();
        self.obs.ticks += 1;
        self.obs.last_tick_max_stream_units = max_stream_units as u64;
        if egi_obs::enabled() {
            egi_obs::counter!("egi_fleet_ticks_total").inc();
            egi_obs::histogram!("egi_fleet_tick_nanos")
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            egi_obs::histogram!("egi_fleet_tick_units").record(units as u64);
        }
        TickReport {
            flushed_points,
            units,
            elapsed,
            max_stream_units,
        }
    }

    /// The fleet's own telemetry: lifetime scheduling counters plus
    /// live gauges, snapshotted at call time. See [`FleetObs`].
    pub fn metrics(&self) -> FleetObs {
        let mut m = self.obs;
        m.streams = self.order.len() as u64;
        m.dirty_streams = self.rotation.len() as u64;
        m.pending_units = self.pending_units() as u64;
        m.buffered_points = self.buffered as u64;
        m
    }
}

impl<S: StreamSession> Fleet<S> {
    /// Re-derives a stream's rotation membership after an operation
    /// that may have created or drained pending work.
    fn sync_rotation(rotation: &mut VecDeque<StreamId>, id: StreamId, slot: &mut Slot<S>) {
        let pending = slot.session.pending_units() > 0;
        if pending && !slot.dirty {
            slot.dirty = true;
            rotation.push_back(id);
        } else if !pending && slot.dirty {
            slot.dirty = false;
            slot.last_service = None;
            rotation.retain(|&r| r != id);
        }
    }
}

impl<S: StreamSession + Send> Fleet<S> {
    /// Flushes every buffer, drains every stream's pending work — fanned
    /// across rayon workers, sessions being independent — and returns
    /// `(id, report)` pairs in creation order. Each stream's steps run
    /// sequentially inside one task, so reports are **bit-identical**
    /// to [`finish`](Self::finish)-ing each stream serially, for every
    /// worker count (property-tested).
    pub fn finish_all(&mut self) -> Vec<(StreamId, S::Report)> {
        self.flush_all();
        let mut dirty: Vec<&mut Slot<S>> = self.slots.values_mut().filter(|s| s.dirty).collect();
        dirty
            .par_iter_mut()
            .for_each(|slot| while slot.session.step() {});
        self.rotation.clear();
        self.order
            .iter()
            .map(|&id| {
                let slot = self.slots.get_mut(&id).expect("order holds live ids");
                slot.dirty = false;
                slot.last_service = None;
                (id, slot.session.finish())
            })
            .collect()
    }
}

/// Section tag of the fleet-roster section (`b"FLT1"` little-endian).
const CKPT_SECTION_FLEET: u32 = u32::from_le_bytes(*b"FLT1");
/// Section tag of each per-stream section (`b"STR1"`), one per stream
/// in creation order.
const CKPT_SECTION_STREAM: u32 = u32::from_le_bytes(*b"STR1");
const CKPT_FLEET_VERSION: u32 = 1;
const CKPT_STREAM_VERSION: u32 = 1;

/// Persistence for the fleet (see [`Checkpoint`] for the container
/// format). The roster section records stream ids in creation order and
/// the rotation queue in FIFO order — the rotation **must** round-trip
/// verbatim so a restored fleet schedules refresh units in exactly the
/// order the uninterrupted one would. Each stream section nests its
/// session's own checkpoint (opaque bytes, validated by `S`'s loader)
/// next to its ingest buffer; the per-slot dirty flag is re-derived
/// from rotation membership and cross-checked against the restored
/// session's pending work. The [`FleetObs`] telemetry counters are
/// deliberately **not** saved — they describe a process, not resumable
/// state — so a restored fleet's [`Fleet::metrics`] starts from zero.
impl<S: StreamSession + Checkpoint> Checkpoint for Fleet<S> {
    fn save_checkpoint(&self, writer: &mut impl Write) -> Result<(), CheckpointError> {
        let mut out = CheckpointWriter::begin(writer, 1 + self.order.len() as u32)?;
        let mut f = FieldWriter::new();
        f.usize(self.order.len());
        for &id in &self.order {
            f.u64(id);
        }
        f.usize(self.rotation.len());
        for &id in &self.rotation {
            f.u64(id);
        }
        out.section(CKPT_SECTION_FLEET, CKPT_FLEET_VERSION, &f.into_bytes())?;
        for &id in &self.order {
            let slot = &self.slots[&id];
            let mut f = FieldWriter::new();
            f.u64(id);
            f.f64_slice(&slot.inbox);
            f.bytes(&slot.session.checkpoint_bytes()?);
            out.section(CKPT_SECTION_STREAM, CKPT_STREAM_VERSION, &f.into_bytes())?;
        }
        Ok(())
    }

    fn load_checkpoint(reader: &mut impl Read) -> Result<Self, CheckpointError> {
        let corrupt = |what: &str| CheckpointError::Corrupt(what.to_string());
        let mut input = CheckpointReader::begin(reader)?;
        let (_, payload) = input.section(CKPT_SECTION_FLEET, CKPT_FLEET_VERSION)?;
        let mut f = FieldReader::new(&payload);
        let count = f.usize()?;
        let mut order = Vec::new();
        for _ in 0..count {
            order.push(f.u64()?);
        }
        let dirty_count = f.usize()?;
        let mut rotation = Vec::new();
        for _ in 0..dirty_count {
            rotation.push(f.u64()?);
        }
        f.finish()?;
        if input.sections_remaining() as usize != count {
            return Err(corrupt("stream sections disagree with the roster"));
        }
        let roster: std::collections::HashSet<StreamId> = order.iter().copied().collect();
        if roster.len() != order.len() {
            return Err(corrupt("duplicate stream id in the roster"));
        }
        let dirty_set: std::collections::HashSet<StreamId> = rotation.iter().copied().collect();
        if dirty_set.len() != rotation.len() || !dirty_set.iter().all(|id| roster.contains(id)) {
            return Err(corrupt("rotation cites a bad stream id"));
        }
        let mut fleet = Self::new();
        for &expected in &order {
            let (_, payload) = input.section(CKPT_SECTION_STREAM, CKPT_STREAM_VERSION)?;
            let mut f = FieldReader::new(&payload);
            let id = f.u64()?;
            if id != expected {
                return Err(corrupt("stream section out of roster order"));
            }
            let inbox = f.f64_vec()?;
            let session = S::from_checkpoint_bytes(f.bytes()?)?;
            f.finish()?;
            let dirty = dirty_set.contains(&id);
            // The scheduler invariant: a stream is in the rotation iff
            // its session has pending work. A checkpoint violating it
            // would starve a dirty stream (or spin on a clean one).
            if dirty != (session.pending_units() > 0) {
                return Err(corrupt("rotation disagrees with a session's pending work"));
            }
            fleet.buffered += inbox.len();
            fleet.slots.insert(
                id,
                Slot {
                    session,
                    inbox,
                    dirty,
                    last_service: None,
                },
            );
            fleet.order.push(id);
        }
        fleet.rotation = rotation.into();
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_tskit::evict::validate_evict;

    /// A deterministic mock session: one pending unit per appended
    /// point, the "answer" is the number of units performed, and every
    /// `append` call is logged so coalescing is observable.
    #[derive(Debug, Default)]
    struct MockSession {
        live: Vec<f64>,
        cursor: usize,
        offset: usize,
        retention: Option<usize>,
        /// Length of every `append` call, in order.
        appends: Vec<usize>,
        /// Artificial per-unit cost, for deadline-overshoot tests.
        step_delay: Option<std::time::Duration>,
    }

    impl MockSession {
        fn with_pending(units: usize) -> Self {
            let mut s = Self::default();
            StreamSession::append(&mut s, &vec![0.5; units]);
            s
        }
    }

    impl StreamSession for MockSession {
        type Snapshot = usize;
        type Report = usize;

        fn append(&mut self, points: &[f64]) {
            self.appends.push(points.len());
            self.live.extend_from_slice(points);
            if let Some(n) = self.retention {
                let excess = self.live.len().saturating_sub(n);
                if excess > 0 {
                    self.evict(excess).expect("retention trim");
                }
            }
        }

        fn step(&mut self) -> bool {
            if self.cursor == self.live.len() {
                return false;
            }
            if let Some(delay) = self.step_delay {
                std::thread::sleep(delay);
            }
            self.cursor += 1;
            true
        }

        fn evict(&mut self, count: usize) -> Result<(), EvictError> {
            validate_evict(self.live.len(), count, 1)?;
            self.offset += count;
            self.live.drain(..count);
            self.cursor = 0;
            Ok(())
        }

        fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
            self.retention = Some(n);
            let excess = self.live.len().saturating_sub(n);
            if excess > 0 {
                self.evict(excess)?;
            }
            Ok(excess)
        }

        fn series_len(&self) -> usize {
            self.live.len()
        }

        fn pending_units(&self) -> usize {
            self.live.len() - self.cursor
        }

        fn stream_offset(&self) -> usize {
            self.offset
        }

        fn is_current(&self) -> bool {
            self.pending_units() == 0
        }

        fn snapshot(&self) -> usize {
            self.cursor
        }

        fn finish(&mut self) -> usize {
            while self.step() {}
            self.snapshot()
        }
    }

    impl Checkpoint for MockSession {
        fn save_checkpoint(&self, writer: &mut impl std::io::Write) -> Result<(), CheckpointError> {
            let mut out = CheckpointWriter::begin(writer, 1)?;
            let mut f = FieldWriter::new();
            f.f64_slice(&self.live);
            f.usize(self.cursor);
            f.usize(self.offset);
            f.opt_usize(self.retention);
            let appends: Vec<usize> = self.appends.clone();
            f.usize_slice(&appends);
            out.section(u32::from_le_bytes(*b"MCK1"), 1, &f.into_bytes())
        }

        fn load_checkpoint(reader: &mut impl std::io::Read) -> Result<Self, CheckpointError> {
            let mut input = CheckpointReader::begin(reader)?;
            let (_, payload) = input.section(u32::from_le_bytes(*b"MCK1"), 1)?;
            let mut f = FieldReader::new(&payload);
            let live = f.f64_vec()?;
            let cursor = f.usize()?;
            let offset = f.usize()?;
            let retention = f.opt_usize()?;
            let appends = f.usize_vec()?;
            f.finish()?;
            if cursor > live.len() {
                return Err(CheckpointError::Corrupt("cursor past the series".into()));
            }
            Ok(Self {
                live,
                cursor,
                offset,
                retention,
                appends,
                step_delay: None,
            })
        }
    }

    fn fleet_of(n: u64, units_each: usize) -> Fleet<MockSession> {
        let mut fleet = Fleet::new();
        for id in 0..n {
            fleet
                .create(id, MockSession::with_pending(units_each))
                .unwrap();
        }
        fleet
    }

    #[test]
    fn create_rejects_duplicates_and_remove_unknown_errors() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        assert!(fleet.is_empty());
        fleet.create(7, MockSession::default()).unwrap();
        assert_eq!(
            fleet.create(7, MockSession::default()),
            Err(FleetError::DuplicateStream { id: 7 })
        );
        assert_eq!(fleet.len(), 1);
        assert_eq!(
            fleet.remove(8).unwrap_err(),
            FleetError::UnknownStream { id: 8 }
        );
        fleet.remove(7).unwrap();
        assert!(fleet.is_empty());
        assert_eq!(fleet.query(7), Err(FleetError::UnknownStream { id: 7 }));
    }

    #[test]
    fn sessions_with_pending_work_enter_the_rotation_on_create() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::default()).unwrap();
        fleet.create(1, MockSession::with_pending(4)).unwrap();
        assert_eq!(fleet.dirty_count(), 1);
        assert_eq!(fleet.pending_units(), 4);
        assert_eq!(fleet.refresh(Deadline::unbounded()), 4);
        assert_eq!(fleet.dirty_count(), 0);
    }

    #[test]
    fn ingest_coalesces_into_one_append_per_tick() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::default()).unwrap();
        for _ in 0..10 {
            fleet.ingest(0, &[1.0]).unwrap();
        }
        assert_eq!(fleet.buffered(), 10);
        assert_eq!(fleet.buffered_for(0), Ok(10));
        // The session has seen nothing yet…
        assert!(fleet.session(0).unwrap().appends.is_empty());
        let report = fleet.tick(Deadline::unbounded());
        assert_eq!(report.flushed_points, 10);
        assert_eq!(report.units, 10);
        assert_eq!(report.max_stream_units, 10, "single stream got them all");
        assert!(report.elapsed > Duration::ZERO);
        // …and the 10 dribbles arrived as ONE append.
        assert_eq!(fleet.session(0).unwrap().appends, vec![10]);
        assert_eq!(fleet.buffered(), 0);
        // An empty tick flushes and runs nothing.
        let idle = fleet.tick(Deadline::unbounded());
        assert_eq!(idle.flushed_points, 0);
        assert_eq!(idle.units, 0);
        assert_eq!(idle.max_stream_units, 0);
    }

    #[test]
    fn fair_share_splits_a_unit_budget_evenly() {
        // 4 streams × 10 pending units, budget 10: round-robin gives
        // ⌈10/4⌉ = 3 to the first two streams, ⌊10/4⌋ = 2 to the rest.
        let mut fleet = fleet_of(4, 10);
        assert_eq!(fleet.refresh(Deadline::queries(10)), 10);
        let served: Vec<usize> = (0..4).map(|id| fleet.query(id).unwrap()).collect();
        assert_eq!(served, vec![3, 3, 2, 2]);
        // Every dirty stream got at least one unit per full rotation.
        assert!(served.iter().all(|&s| s >= 10 / 4));
        assert_eq!(
            served.iter().max().unwrap() - served.iter().min().unwrap(),
            1
        );
    }

    #[test]
    fn fair_share_survives_streams_draining_mid_pass() {
        // Stream 1 has far less work; once it drains, its slot in the
        // rotation disappears and the remaining budget flows on.
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::with_pending(100)).unwrap();
        fleet.create(1, MockSession::with_pending(2)).unwrap();
        fleet.create(2, MockSession::with_pending(100)).unwrap();
        assert_eq!(fleet.refresh(Deadline::queries(32)), 32);
        assert_eq!(fleet.query(1).unwrap(), 2, "small stream fully drained");
        // The other 30 units split evenly across the two big streams.
        assert_eq!(fleet.query(0).unwrap(), 15);
        assert_eq!(fleet.query(2).unwrap(), 15);
        assert_eq!(fleet.dirty_count(), 2);
    }

    #[test]
    fn refresh_respects_an_expired_deadline_and_stops_when_clean() {
        let mut fleet = fleet_of(3, 2);
        assert_eq!(fleet.refresh(Deadline::queries(0)), 0);
        assert_eq!(fleet.pending_units(), 6);
        assert_eq!(fleet.refresh(Deadline::unbounded()), 6);
        assert_eq!(fleet.dirty_count(), 0);
        assert_eq!(fleet.refresh(Deadline::unbounded()), 0);
    }

    #[test]
    fn invalid_eviction_is_atomic_and_does_not_poison_the_fleet() {
        let mut fleet = fleet_of(2, 5);
        fleet.ingest(0, &[9.0; 3]).unwrap();
        // Reaching past the stream is rejected by the session; the
        // fleet reports it with the stream id attached. Note the inbox
        // was flushed first (call-order semantics), so the stream now
        // holds 8 points.
        assert_eq!(
            fleet.evict_from(0, 100),
            Err(FleetError::Evict {
                id: 0,
                error: EvictError::PastEnd {
                    requested: 100,
                    available: 8
                }
            })
        );
        // Nothing moved: both streams still schedule and finish.
        assert_eq!(fleet.session(0).unwrap().series_len(), 8);
        assert_eq!(fleet.session(0).unwrap().stream_offset(), 0);
        assert_eq!(fleet.refresh(Deadline::unbounded()), 8 + 5);
        assert_eq!(fleet.finish(0).unwrap(), 8);
        assert_eq!(fleet.finish(1).unwrap(), 5);
    }

    #[test]
    fn evict_and_retain_flush_first_so_operations_apply_in_call_order() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::default()).unwrap();
        fleet.ingest(0, &[1.0; 6]).unwrap();
        fleet.evict_from(0, 4).unwrap();
        assert_eq!(fleet.session(0).unwrap().series_len(), 2);
        assert_eq!(fleet.session(0).unwrap().stream_offset(), 4);
        fleet.ingest(0, &[2.0; 7]).unwrap();
        assert_eq!(fleet.retain_last(0, 3), Ok(6));
        assert_eq!(fleet.session(0).unwrap().series_len(), 3);
    }

    #[test]
    fn remove_mid_rotation_keeps_the_scheduler_consistent() {
        let mut fleet = fleet_of(3, 4);
        assert_eq!(fleet.refresh(Deadline::queries(2)), 2);
        let removed = fleet.remove(0).unwrap();
        assert_eq!(removed.pending_units(), 3);
        assert_eq!(fleet.dirty_count(), 2);
        // The survivors split the whole remaining budget.
        assert_eq!(fleet.refresh(Deadline::unbounded()), 4 + 3);
        assert_eq!(fleet.dirty_count(), 0);
    }

    #[test]
    fn finish_all_reports_in_creation_order() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        for (id, units) in [(9u64, 3usize), (2, 5), (5, 1)] {
            fleet.create(id, MockSession::with_pending(units)).unwrap();
        }
        fleet.ingest(5, &[0.0; 2]).unwrap();
        let reports = fleet.finish_all();
        assert_eq!(reports, vec![(9, 3), (2, 5), (5, 3)]);
        assert_eq!(fleet.dirty_count(), 0);
        assert_eq!(fleet.pending_units(), 0);
    }

    #[test]
    fn checkpoint_round_trips_roster_rotation_and_inboxes() {
        let mut fleet = fleet_of(4, 6);
        // Perturb the rotation so its FIFO order differs from creation
        // order, buffer some never-flushed ingest, and drain stream 3.
        assert_eq!(fleet.refresh(Deadline::queries(3)), 3);
        fleet.ingest(1, &[2.0; 5]).unwrap();
        fleet.finish(3).unwrap();

        let bytes = fleet.checkpoint_bytes().unwrap();
        let mut restored = Fleet::<MockSession>::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(restored.ids(), fleet.ids());
        assert_eq!(restored.dirty_count(), fleet.dirty_count());
        assert_eq!(restored.buffered(), fleet.buffered());
        assert_eq!(restored.buffered_for(1), Ok(5));
        assert_eq!(restored.rotation, fleet.rotation, "FIFO order verbatim");

        // Replay the identical remainder: scheduling must stay in
        // lockstep, query by query.
        loop {
            let a = fleet.refresh(Deadline::queries(2));
            let b = restored.refresh(Deadline::queries(2));
            assert_eq!(a, b);
            for &id in &[0u64, 1, 2, 3] {
                assert_eq!(restored.query(id), fleet.query(id), "stream {id}");
            }
            if a == 0 {
                break;
            }
        }
        assert_eq!(restored.finish_all(), fleet.finish_all());
    }

    #[test]
    fn checkpoint_of_an_empty_fleet_round_trips() {
        let fleet: Fleet<MockSession> = Fleet::new();
        let restored =
            Fleet::<MockSession>::from_checkpoint_bytes(&fleet.checkpoint_bytes().unwrap())
                .unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.dirty_count(), 0);
    }

    #[test]
    fn checkpoint_rejects_malformed_input_with_typed_errors() {
        let mut fleet = fleet_of(3, 4);
        fleet.ingest(2, &[1.0; 2]).unwrap();
        let bytes = fleet.checkpoint_bytes().unwrap();

        let mut foreign = bytes.clone();
        foreign[3] ^= 0x01;
        assert!(matches!(
            Fleet::<MockSession>::from_checkpoint_bytes(&foreign),
            Err(CheckpointError::BadMagic)
        ));
        for cut in [0, 9, 16, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Fleet::<MockSession>::from_checkpoint_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut flipped = bytes;
        let target = flipped.len() - 20;
        flipped[target] ^= 0x80;
        assert!(Fleet::<MockSession>::from_checkpoint_bytes(&flipped).is_err());
    }

    #[test]
    fn metrics_track_ingest_coalescing_and_scheduling() {
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::default()).unwrap();
        fleet.create(1, MockSession::default()).unwrap();
        for _ in 0..8 {
            fleet.ingest(0, &[1.0]).unwrap();
        }
        fleet.ingest(1, &[2.0; 4]).unwrap();
        let m = fleet.metrics();
        assert_eq!(m.streams, 2);
        assert_eq!(m.buffered_points, 12);
        assert_eq!(m.ingest_calls, 9);
        assert_eq!(m.ingested_points, 12);
        assert_eq!(m.coalesced_appends, 0, "nothing flushed yet");

        let report = fleet.tick(Deadline::queries(5));
        assert_eq!(report.flushed_points, 12);
        let m = fleet.metrics();
        assert_eq!(m.ticks, 1);
        assert_eq!(m.units_total, 5);
        assert_eq!(m.flushed_points_total, 12);
        // 9 ingest calls reached the sessions as 2 coalesced appends.
        assert_eq!(m.coalesced_appends, 2);
        assert_eq!(m.buffered_points, 0);
        assert_eq!(m.dirty_streams, 2);
        assert_eq!(m.pending_units, 12 - 5);
        assert_eq!(m.last_tick_max_stream_units, 3, "⌈5/2⌉");

        fleet.finish_all();
        let m = fleet.metrics();
        assert_eq!(m.dirty_streams, 0);
        assert_eq!(m.pending_units, 0);
    }

    #[test]
    fn max_stream_units_reports_the_fair_share_ceiling() {
        // One stream with 5 units, one with 1: an unbounded tick runs
        // all 6, and the big stream's 5 is the per-stream max.
        let mut fleet: Fleet<MockSession> = Fleet::new();
        fleet.create(0, MockSession::with_pending(5)).unwrap();
        fleet.create(1, MockSession::with_pending(1)).unwrap();
        let report = fleet.tick(Deadline::unbounded());
        assert_eq!(report.units, 6);
        assert_eq!(report.max_stream_units, 5);
        // With both streams dirty throughout, a budget of 4 splits
        // ⌈4/2⌉ = 2 / ⌊4/2⌋ = 2 — the ceiling bound, observable.
        let mut fleet = fleet_of(2, 10);
        let report = fleet.tick(Deadline::queries(4));
        assert_eq!(report.units, 4);
        assert_eq!(report.max_stream_units, 2);
    }

    /// Satellite regression test: the fleet checks the deadline only
    /// between units, so a wall-clock deadline is overshot by at most
    /// ONE unit's work — pinned here with a deliberately slow session.
    #[test]
    fn wall_deadline_overshoot_is_bounded_by_one_step_unit() {
        const UNIT: Duration = Duration::from_millis(25);
        const BUDGET: Duration = Duration::from_millis(10);
        let mut fleet: Fleet<MockSession> = Fleet::new();
        let mut slow = MockSession::with_pending(64);
        slow.step_delay = Some(UNIT);
        fleet.create(0, slow).unwrap();

        let overshoots_before = egi_obs::global()
            .counter("egi_fleet_deadline_overshoots_total")
            .get();
        let start = Instant::now();
        let units = fleet.refresh(Deadline::after(BUDGET));
        let elapsed = start.elapsed();

        // The deadline expired mid-backlog (64 units × 25 ms ≫ 10 ms),
        // yet the loop stopped within one unit of the budget. The
        // extra UNIT of slack absorbs scheduler noise on a busy box;
        // two full units past the budget would mean the contract broke.
        assert!(fleet.pending_units() > 0, "deadline cut the backlog");
        assert!(
            units <= 2,
            "budget only covers the first check, ran {units}"
        );
        assert!(
            elapsed < BUDGET + 2 * UNIT,
            "overshoot exceeded one unit's work: {elapsed:?}"
        );
        if units > 0 {
            // The overshoot was observed and recorded as a metric.
            let overshoots_after = egi_obs::global()
                .counter("egi_fleet_deadline_overshoots_total")
                .get();
            assert!(overshoots_after > overshoots_before);
            assert_eq!(fleet.metrics().deadline_overshoots, 1);
        }
    }

    #[test]
    fn fleet_error_display_names_the_stream() {
        let e = FleetError::Evict {
            id: 3,
            error: EvictError::BelowMinimum {
                remaining: 2,
                minimum: 8,
            },
        };
        assert!(e.to_string().contains("stream 3"), "{e}");
        assert!(FleetError::UnknownStream { id: 11 }
            .to_string()
            .contains("11"));
        assert!(FleetError::DuplicateStream { id: 4 }
            .to_string()
            .contains('4'));
    }
}
