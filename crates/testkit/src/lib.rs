//! Shared toolkit for the workspace's property harnesses.
//!
//! Every streaming parity harness in this workspace follows the same
//! recipe: a deterministic unbounded stream regenerated from global
//! indices, a random `append` / `evict` / `step` schedule decoded from
//! proptest tuples, a validity filter that turns an arbitrary eviction
//! amount into a legal cut, and a shadow model that tracks which suffix
//! of the stream survived. Before this crate each harness carried its
//! own copy of those helpers; they are hoisted here so the
//! checkpoint/restore harnesses (and any future schedule-driven test)
//! can drive the *same* schedules against the same streams.
//!
//! Everything here is bitwise-deterministic: [`PointGen`] is a pure
//! function of the global index, so two harnesses using the same
//! generator see the same `f64` bits — which is exactly what the
//! bit-parity contracts (`finish()` vs. batch, restored vs.
//! uninterrupted) need.

/// Deterministic unbounded stream: a pure function from the global
/// position `i` to the point value. Generating points from their global
/// index keeps append chunks reproducible without materializing the
/// whole stream up front.
///
/// The closed form is shared by every harness in the workspace:
///
/// ```text
/// (t·f1 + phase)·sin · a1  +  a2 · (t·f2)·cos  +  ((i·k + offset) mod modulus) · 0.05
/// ```
///
/// with `t = i as f64`. The named constructors reproduce the exact
/// constants each harness has pinned since its introduction, so the
/// hoist is bitwise-invisible to the existing parity contracts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointGen {
    /// Frequency of the primary sine component.
    pub f1: f64,
    /// Amplitude of the primary sine component.
    pub a1: f64,
    /// Amplitude of the secondary cosine component.
    pub a2: f64,
    /// Frequency of the secondary cosine component.
    pub f2: f64,
    /// Integer drift multiplier.
    pub k: usize,
    /// Integer drift modulus.
    pub modulus: usize,
    /// Phase shift of the primary sine (per-stream salt in fleets).
    pub phase: f64,
    /// Integer drift offset (per-stream salt in fleets).
    pub offset: usize,
}

impl PointGen {
    /// The single-stream generator of the discord eviction harness.
    pub fn discord() -> Self {
        Self {
            f1: 0.17,
            a1: 1.3,
            a2: 0.5,
            f2: 0.031,
            k: 23,
            modulus: 11,
            phase: 0.0,
            offset: 0,
        }
    }

    /// The single-stream generator of the ensemble eviction harness.
    pub fn ensemble() -> Self {
        Self {
            f1: 0.12,
            a1: 1.4,
            a2: 0.6,
            f2: 0.041,
            k: 29,
            modulus: 13,
            phase: 0.0,
            offset: 0,
        }
    }

    /// The single-stream generator of the segmented-backend harness.
    pub fn segmented() -> Self {
        Self {
            f1: 0.19,
            a1: 1.4,
            a2: 0.6,
            f2: 0.029,
            k: 31,
            modulus: 13,
            phase: 0.0,
            offset: 0,
        }
    }

    /// The per-stream generator of the fleet harness: the discord wave
    /// with a distinct phase and integer drift per stream id, so
    /// cross-stream state leaks break parity immediately.
    pub fn fleet(id: u64) -> Self {
        Self {
            phase: id as f64 * 0.73,
            offset: id as usize * 7,
            ..Self::discord()
        }
    }

    /// The value at global position `i`.
    pub fn at(&self, i: usize) -> f64 {
        let t = i as f64;
        (t * self.f1 + self.phase).sin() * self.a1
            + self.a2 * (t * self.f2).cos()
            + ((i * self.k + self.offset) % self.modulus) as f64 * 0.05
    }

    /// The points at global positions `range`, materialized.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Vec<f64> {
        range.map(|i| self.at(i)).collect()
    }
}

/// Picks a *valid* eviction count for a stream of `live` points under
/// minimum window `m`: occasionally the full drain, otherwise a cut
/// leaving at least `m` points (0 while warming up, where only the full
/// drain is legal).
pub fn choose_evict(live: usize, m: usize, amount: usize) -> usize {
    if live == 0 {
        return 0;
    }
    if amount.is_multiple_of(5) {
        return live; // full drain now and then
    }
    if live < m {
        return 0;
    }
    (amount * live / 40).min(live - m)
}

/// One decoded step of a random append/evict/step schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOp {
    /// Append this many fresh points from the stream generator.
    Append(usize),
    /// Evict; the payload is the *raw* amount, to be narrowed to a
    /// valid cut via [`choose_evict`] against the live length.
    Evict(usize),
    /// Spend this much incremental-work budget.
    Run(usize),
}

/// Decodes one `(kind, amount)` proptest tuple into a schedule step,
/// with the append-biased split every harness uses: kinds `0..=4`
/// append (so streams actually grow), `5..=7` evict, the rest run.
pub fn decode_op(kind: usize, amount: usize) -> ScheduleOp {
    match kind {
        0..=4 => ScheduleOp::Append(amount),
        5..=7 => ScheduleOp::Evict(amount),
        _ => ScheduleOp::Run(amount),
    }
}

/// Shadow model of the surviving suffix: the global cursor of points
/// ever appended and the count evicted. Whatever the system under test
/// does internally, `offset..appended` of the generator is the ground
/// truth of what its live window must contain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowSuffix {
    /// Points ever appended (the global cursor).
    pub appended: usize,
    /// Points evicted off the front.
    pub offset: usize,
}

impl ShadowSuffix {
    /// A fresh shadow with nothing appended.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next `n` points from `gen`, advancing the global cursor.
    pub fn next_chunk(&mut self, gen: &PointGen, n: usize) -> Vec<f64> {
        let chunk = gen.slice(self.appended..self.appended + n);
        self.appended += n;
        chunk
    }

    /// Records an eviction of `c` points.
    pub fn evict(&mut self, c: usize) {
        self.offset += c;
    }

    /// Points currently live.
    pub fn live(&self) -> usize {
        self.appended - self.offset
    }

    /// The surviving suffix, materialized from `gen`.
    pub fn suffix(&self, gen: &PointGen) -> Vec<f64> {
        gen.slice(self.offset..self.appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The named generators must reproduce the historical closed forms
    // *bitwise* — the parity harnesses compare f64 bits, so any drift
    // here would silently change what the contracts test.
    #[test]
    fn named_generators_match_their_historical_closed_forms() {
        let discord = PointGen::discord();
        let ensemble = PointGen::ensemble();
        let segmented = PointGen::segmented();
        for i in 0..500usize {
            let t = i as f64;
            let d =
                (t * 0.17).sin() * 1.3 + 0.5 * (t * 0.031).cos() + ((i * 23) % 11) as f64 * 0.05;
            let e =
                (t * 0.12).sin() * 1.4 + 0.6 * (t * 0.041).cos() + ((i * 29) % 13) as f64 * 0.05;
            let s =
                (t * 0.19).sin() * 1.4 + 0.6 * (t * 0.029).cos() + ((i * 31) % 13) as f64 * 0.05;
            assert_eq!(discord.at(i).to_bits(), d.to_bits(), "discord at {i}");
            assert_eq!(ensemble.at(i).to_bits(), e.to_bits(), "ensemble at {i}");
            assert_eq!(segmented.at(i).to_bits(), s.to_bits(), "segmented at {i}");
        }
        for id in 0..8u64 {
            let gen = PointGen::fleet(id);
            for i in 0..200usize {
                let t = i as f64;
                let phase = id as f64 * 0.73;
                let f = (t * 0.17 + phase).sin() * 1.3
                    + 0.5 * (t * 0.031).cos()
                    + ((i * 23 + id as usize * 7) % 11) as f64 * 0.05;
                assert_eq!(gen.at(i).to_bits(), f.to_bits(), "fleet {id} at {i}");
            }
        }
    }

    #[test]
    fn choose_evict_only_proposes_valid_cuts() {
        for live in 0..120usize {
            for m in 1..12usize {
                for amount in 0..45usize {
                    let c = choose_evict(live, m, amount);
                    assert!(c <= live, "cut {c} past the {live} live points");
                    let remaining = live - c;
                    assert!(
                        c == 0 || remaining == 0 || remaining >= m,
                        "cut {c} of {live} leaves {remaining} < m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_op_splits_kinds_with_append_bias() {
        for amount in [1usize, 7, 32] {
            for kind in 0..=4usize {
                assert_eq!(decode_op(kind, amount), ScheduleOp::Append(amount));
            }
            for kind in 5..=7usize {
                assert_eq!(decode_op(kind, amount), ScheduleOp::Evict(amount));
            }
            for kind in 8..=11usize {
                assert_eq!(decode_op(kind, amount), ScheduleOp::Run(amount));
            }
        }
    }

    #[test]
    fn shadow_suffix_tracks_the_surviving_window() {
        let gen = PointGen::discord();
        let mut shadow = ShadowSuffix::new();
        let a = shadow.next_chunk(&gen, 10);
        assert_eq!(a, gen.slice(0..10));
        let b = shadow.next_chunk(&gen, 5);
        assert_eq!(b, gen.slice(10..15));
        shadow.evict(4);
        assert_eq!(shadow.live(), 11);
        assert_eq!(shadow.suffix(&gen), gen.slice(4..15));
        shadow.evict(11);
        assert_eq!(shadow.live(), 0);
        assert!(shadow.suffix(&gen).is_empty());
    }
}
