//! Streaming ensemble grammar induction: the paper's headline detector
//! as an online, append-to-series pipeline.
//!
//! [`StreamingEnsembleDetector`] owns a growing time series and keeps
//! the ensemble rule-density curve — and therefore the anomaly ranking
//! — current as points are appended, under hard latency budgets
//! between appends. It is the grammar-induction sibling of
//! `egi_discord::streaming::StreamingDiscordMonitor` (PR 3): ingest a
//! chunk of live traffic, spend a bounded slice of time refreshing
//! members, answer "most anomalous windows so far", repeat.
//!
//! # Architecture
//!
//! Every ensemble member runs a fully incremental pipeline, one layer
//! per crate:
//!
//! * **Prefix statistics** ([`egi_tskit::stats::PrefixStats`]) extend
//!   their running totals per append — bit-identical to a batch
//!   rebuild.
//! * **Sliding PAA** ([`egi_sax::stream::PaaStream`]) appends the
//!   coefficient rows of every window the new points completed, via
//!   the one shared FastPAA kernel
//!   ([`egi_sax::paa_znorm_from_stats`]). Streams are shared across
//!   members with equal PAA size `w` (the runtime's deduplication).
//! * **SAX word emission + numerosity reduction**
//!   ([`egi_sax::NumerosityReduced::push_word`]) fold new windows into
//!   the token sequence online — the batch reducer is literally this
//!   fold.
//! * **Interning + grammar induction**
//!   ([`crate::intern::OnlineInterner`], [`egi_sequitur::Sequitur::push`])
//!   feed each retained token to the inherently online Sequitur engine.
//! * **Rule density** is maintained *in place*: the engine emits the
//!   net occurrence-span changes of each push
//!   ([`egi_sequitur::OccDelta`]) and
//!   [`RuleDensityCurve::apply_delta`] folds them into the member's
//!   live curve — no grammar extraction, no occurrence re-enumeration,
//!   no full-curve rebuild (see *Delta maintenance vs. rebuild* below).
//!
//! Member curves combine under the *batch* detector's own
//! [`EnsembleDetector::combine_curves`] (σ-ranking, τ-filter,
//! max-normalization, point-wise combiner), so there is one Algorithm 1
//! implementation, not two.
//!
//! # Delta maintenance vs. rebuild
//!
//! Before the incremental density layer, every member refresh ended
//! with `RuleDensityCurve::from_occurrences(&seq.occurrences(), …)` —
//! an `O(series)` re-derivation (occurrence walk over the whole
//! grammar plus a full difference-array scan) even when the refresh
//! consumed a single new window. That cost model caps a fleet: with
//! `S` streams of length `n`, one tick of per-stream refreshes costs
//! `O(S · n)` no matter how little arrived.
//!
//! **Cost model.** With delta tracking on, [`Sequitur::push`] emits
//! the *net* changes to the transitive occurrence-span multiset
//! ([`egi_sequitur::OccDelta`]): nothing for a plain terminal or a
//! rule-body creation, one created span per transitive occurrence of
//! the edited body for a substitution, one destroyed span for an
//! inline expansion — nested contributions cancel exactly because a
//! rule's body expands to precisely the tokens it replaced.
//! [`RuleDensityCurve::apply_delta`] folds each span into the live
//! curve over just the points it covers, so a member
//! [`step`](StreamingEnsembleDetector::step) costs
//! `O(new windows + changed coverage)` instead of `O(series)`.
//!
//! **Why integer deltas keep bit-parity for free.** Curve values are
//! exact small integers stored in `f64` (coverage counts). The rebuild
//! reaches them by a difference-array prefix scan; the delta path by
//! `±1.0` interval adds over the identical intervals. Addition of
//! exact small integers in `f64` is exact and order-independent, so
//! the delta-maintained curve is **bit-identical** to a
//! [`RuleDensityCurve::from_occurrences`] rebuild at every drain
//! boundary — the batch-parity contract of
//! [`finish`](StreamingEnsembleDetector::finish) holds by
//! construction, and the from-scratch rebuild survives as the test
//! oracle
//! ([`delta_curves_match_rebuild`](StreamingEnsembleDetector::delta_curves_match_rebuild),
//! exercised by `tests/density_delta_proptests.rs` and the bench's
//! in-run parity gate).
//!
//! **Eviction rebase rule.** Pending deltas are in token coordinates;
//! eviction re-derives the token stream from a new origin, so
//! [`Sequitur::clear`] drops them (the replay re-emits everything).
//! The member's cached curve — a shifted structural carry served for
//! snapshots — is *not* a valid delta base; the member is flagged and
//! the next refresh zeroes the curve first, letting the replay's
//! deltas rebuild it from the empty baseline (delta-applied and
//! rebuilt curves coincide exactly on a cleared engine). The flag
//! round-trips through checkpoints (member payload v2).
//!
//! # Why streaming SAX is *exactly* incremental here
//!
//! The discord monitor must re-run old queries after an append because
//! its FFT rounding depends on the global transform length. The
//! grammar-induction pipeline has no such global: a window's
//! z-normalization statistics come from prefix sums over `[start,
//! start + n]` only, and [`PrefixStats::extend`] leaves every existing
//! slot bit-identical — so **nothing computed before an append ever
//! needs recomputation**. No numerical carry-over layer exists because
//! none is needed.
//!
//! What *does* shift under appends is grammar structure: Sequitur may
//! form a new rule whose second occurrence is fresh but whose first
//! occurrence covers an old region, retroactively raising old density.
//! A member's cached curve is therefore a **carry-over in the
//! structural sense**: exact for the member's consumed prefix *as of
//! its last refresh*, served zero-padded to the current series length
//! by [`StreamingEnsembleDetector::snapshot`] until the member's next
//! refresh (mirroring the discord monitor's live-snapshot carry). Once
//! every member has caught up
//! ([`StreamingEnsembleDetector::is_current`]), the snapshot *is* the
//! batch ensemble curve, bit for bit.
//!
//! # Sliding-window eviction
//!
//! [`StreamingEnsembleDetector::evict`] retires the oldest points, and
//! [`StreamingEnsembleDetector::retain_last`] installs a retention
//! policy that trims automatically after every append — the
//! bounded-memory mode for unbounded streams. The parity contract
//! extends one level up: **after any interleaving of appends and
//! evictions, [`finish`](StreamingEnsembleDetector::finish) is
//! bit-identical to batch [`EnsembleDetector::detect`] over the
//! surviving suffix** (property-tested). Reported indices are local to
//! the live window; the global position of local index `i` is
//! [`stream_offset`](StreamingEnsembleDetector::stream_offset)` + i`.
//!
//! ## Eviction cost model (why eviction is a replay)
//!
//! Appends are exactly incremental here because nothing old is ever
//! recomputed. Eviction breaks both halves of that argument:
//!
//! * **Numerically**, a window's z-normalization reads prefix-sum
//!   *differences*, and after the front truncation the sums
//!   re-accumulate from a new origin
//!   ([`PrefixStats::rebase`](egi_tskit::stats::PrefixStats::rebase)),
//!   so surviving windows can re-discretize to different SAX words near
//!   breakpoint boundaries. The shared PAA streams are therefore
//!   rebuilt from the rebased statistics at evict time
//!   ([`PaaStream::evict_front`], `O(remaining · w)` per distinct `w`).
//! * **Structurally**, Sequitur is order-dependent: the grammar of the
//!   token suffix is not a sub-grammar of the full-history grammar
//!   (rules whose occurrences lay in or straddled the retired region
//!   cease to exist; suffix-only rules may appear). Each member is
//!   therefore reset ([`NumerosityReduced::clear`],
//!   [`OnlineInterner::clear`](crate::intern::OnlineInterner::clear),
//!   [`Sequitur::clear`] — allocation-reusing) and **replays** the
//!   surviving windows through the normal refresh path, so the replay
//!   cost (`O(remaining)` per member) is paid in
//!   [`step`](StreamingEnsembleDetector::step) units under the usual
//!   deadline budgets, not inside `evict` itself.
//!
//! As with the discord monitor's re-transform, **callers should batch
//! evictions**: per eviction of `c` points the total work is
//! `O(remaining)`-shaped, i.e. `O(remaining / c)` per retired point.
//! Until a member's replay completes, [`snapshot`](StreamingEnsembleDetector::snapshot)
//! serves its pre-eviction curve shifted into suffix coordinates — the
//! structural carry-over again, healed by the next refresh. For
//! long-running services,
//! [`compact`](StreamingEnsembleDetector::compact) additionally
//! defragments each member's grammar slab
//! ([`Sequitur::compact`]) without observable effect on any result.
//!
//! # Parity and budget contract
//!
//! * [`StreamingEnsembleDetector::finish`] returns an [`AnomalyReport`]
//!   — scores, ranked anomaly indices, tie-breaks, and the ensemble
//!   curve — **bit-identical** to batch
//!   [`EnsembleDetector::detect`] on the full ingested series, for
//!   every append schedule, chunk size (including 1-point appends),
//!   seed, and rayon worker count (property-tested, the PR 3 contract).
//! * One **unit of work** is one member refresh
//!   ([`StreamingEnsembleDetector::step`]): discretize that member's
//!   backlog of fresh windows and rebuild its density curve.
//!   [`StreamingEnsembleDetector::run_until`] checks the shared
//!   [`Deadline`] before each unit, so a wall-clock deadline is
//!   overshot by at most one member refresh (regression-tested).
//! * [`StreamingEnsembleDetector::append`] never does scoring work:
//!   its cost is `O(c)` statistics extension for `c` new points, plus
//!   `O(members)` queue bookkeeping.
//!
//! [`PrefixStats::extend`]: egi_tskit::stats::PrefixStats::extend
//! [`Deadline`]: egi_tskit::Deadline

use std::collections::VecDeque;
use std::io::{Read, Write};

/// The shared per-session telemetry snapshot, re-exported from
/// [`egi_obs`] for callers of [`StreamingEnsembleDetector::metrics`].
pub use egi_obs::SessionStats;
use egi_sax::breakpoints::{MAX_ALPHABET, MIN_ALPHABET};
use egi_sax::stream::PaaStream;
use egi_sax::{MultiResBreakpoints, NumerosityReduced, SaxConfig, SaxWord};
use egi_sequitur::Sequitur;
/// The persistence contract implemented by the detector, re-exported
/// from [`egi_tskit::checkpoint`]: save at any point of an
/// append/evict/step schedule, restore, replay the rest — the finished
/// report is bit-identical to the uninterrupted run.
pub use egi_tskit::checkpoint::{Checkpoint, CheckpointError};
use egi_tskit::checkpoint::{CheckpointReader, CheckpointWriter, FieldReader, FieldWriter};
use egi_tskit::evict::{validate_evict, EvictError};
use egi_tskit::session::StreamClock;
/// The shared session contract (and its budgeted drivers), re-exported
/// from [`egi_tskit::session`]: import it to drive the detector
/// generically (e.g. from an `egi-serve` fleet).
pub use egi_tskit::session::StreamSession;
use egi_tskit::stats::PrefixStats;
use egi_tskit::window::window_count;
use rayon::prelude::*;

use crate::density::RuleDensityCurve;
use crate::detector::{rank_anomalies, AnomalyReport, Candidate};
use crate::ensemble::{Combiner, EnsembleConfig, EnsembleDetector};
use crate::intern::OnlineInterner;

/// One ensemble member's incremental pipeline state: its token
/// sequence, live grammar, and last-computed density curve.
#[derive(Debug)]
struct MemberState {
    /// The member's `(w, a)` draw.
    sax: SaxConfig,
    /// Index of the shared PAA stream for this member's `w`.
    stream: usize,
    /// Sliding windows already folded into the token pipeline.
    consumed: usize,
    /// Online numerosity-reduced token sequence.
    nr: NumerosityReduced,
    /// Online SAX-word interning table.
    interner: OnlineInterner,
    /// The live Sequitur engine (delta tracking on).
    seq: Sequitur,
    /// Delta-maintained density curve; `curve.len()` records the
    /// series length as of the last refresh.
    curve: RuleDensityCurve,
    /// `true` while `curve` is a valid delta base (bit-identical to a
    /// rebuild from `seq.occurrences()` at `curve.len()` points).
    /// Cleared by eviction, whose shifted structural carry is served
    /// for snapshots but must be discarded — not delta-patched — by
    /// the next refresh (see the module docs' eviction rebase rule).
    delta_base: bool,
}

/// Builds one member's empty pipeline state (engine delta tracking on).
fn empty_member(sax: SaxConfig, stream: usize, window: usize) -> MemberState {
    let mut seq = Sequitur::new();
    seq.set_delta_tracking(true);
    MemberState {
        sax,
        stream,
        consumed: 0,
        nr: NumerosityReduced::empty(window),
        interner: OnlineInterner::new(),
        seq,
        curve: RuleDensityCurve { values: Vec::new() },
        delta_base: true,
    }
}

/// Advances one member through every window in `consumed..target` and
/// folds the resulting occurrence deltas into its density curve at
/// `series_len` points — `O(new windows + changed coverage)`, never
/// `O(series)` (see the module docs' *Delta maintenance vs. rebuild*).
///
/// This is the "one unit of work" of the budget contract, shared by the
/// serial [`StreamingEnsembleDetector::step`] path and the parallel
/// catch-up — members are independent, so running units in any order or
/// on any worker count yields identical member states.
fn refresh_member(
    member: &mut MemberState,
    stream: &PaaStream,
    multi: &MultiResBreakpoints,
    target: usize,
    series_len: usize,
) {
    if !member.delta_base {
        // Eviction rebase: the cached curve is a shifted carry, not a
        // delta base. The engine restarted at token zero alongside
        // (Sequitur::clear dropped the stale-coordinate deltas), so
        // zero the curve and let the replay's deltas rebuild it.
        debug_assert_eq!(
            member.seq.token_count(),
            0,
            "curve flagged non-base with a live grammar"
        );
        member.curve.values.clear();
        member.delta_base = true;
    }
    // Appends extend coverage with zeros until a rule covers them; the
    // curve never shrinks between evictions (which reset it above).
    member.curve.values.resize(series_len, 0.0);
    for start in member.consumed..target {
        let row = stream.row(start);
        let word = SaxWord(row.iter().map(|&c| multi.symbol(c, member.sax.a)).collect());
        if member.nr.push_word(word) {
            let word = &member.nr.tokens.last().expect("word just retained").word;
            let id = member.interner.intern(word);
            member.seq.push(id);
        }
    }
    member.consumed = target;
    let deltas = member.seq.take_deltas();
    let mut touched = 0usize;
    for delta in &deltas {
        touched += member.curve.apply_delta(delta, &member.nr);
    }
    egi_obs::counter!("egi_core_density_deltas_applied_total").add(deltas.len() as u64);
    egi_obs::counter!("egi_core_density_delta_coverage_points_total").add(touched as u64);
    // What a from-scratch rebuild would have scanned instead — the
    // delta win is this counter divided by the coverage counter.
    egi_obs::counter!("egi_core_density_rebuild_equiv_points_total").add(series_len as u64);
}

/// An online ensemble grammar-induction detector over an append-only
/// time series.
///
/// See the [module docs](self) for the architecture, the
/// exact-vs-carry-over split, and the parity contract.
///
/// # Examples
///
/// ```
/// use egi_core::streaming::StreamingEnsembleDetector;
/// use egi_core::{EnsembleConfig, EnsembleDetector};
///
/// // A sine train with one corrupted beat in the second half.
/// let mut series: Vec<f64> = (0..600).map(|i| (i as f64 * 0.2).sin()).collect();
/// for (k, v) in series[400..430].iter_mut().enumerate() {
///     *v = 1.5 + (k as f64 * 1.3).cos();
/// }
///
/// let config = EnsembleConfig {
///     window: 40,
///     ensemble_size: 8,
///     ..EnsembleConfig::default()
/// };
/// let seed = 7;
/// let mut detector = StreamingEnsembleDetector::new(config, seed);
/// for chunk in series.chunks(100) {
///     detector.append(chunk);          // live traffic arrives…
///     detector.run_for(4);             // …refresh up to 4 members now,
///     let _ = detector.anomalies(1);   // best candidates so far
/// }
///
/// // Caught up, the result is bit-identical to the batch detector.
/// let report = detector.finish(1);
/// let batch = EnsembleDetector::new(config).detect(&series, 1, seed);
/// assert_eq!(report, batch);
/// let top = &report.anomalies[0];
/// assert!(top.start >= 360 && top.start <= 440, "found {}", top.start);
/// ```
#[derive(Debug)]
pub struct StreamingEnsembleDetector {
    detector: EnsembleDetector,
    seed: u64,
    multi: MultiResBreakpoints,
    series: Vec<f64>,
    stats: PrefixStats,
    /// One shared PAA stream per distinct member PAA size `w`
    /// (ascending), window length fixed at `config.window`.
    streams: Vec<PaaStream>,
    /// Members in draw order (= batch `member_params` order).
    members: Vec<MemberState>,
    /// Members awaiting a refresh, FIFO in member order.
    stale: VecDeque<usize>,
    /// Epoch, stream offset, and retention bookkeeping — the
    /// [`StreamClock`] shared by every [`StreamSession`] implementor.
    clock: StreamClock,
    /// Lifetime telemetry (appends, member refreshes, staleness) —
    /// pure `u64` bookkeeping, outside the checkpoint payload and
    /// every parity contract.
    telemetry: SessionStats,
}

impl StreamingEnsembleDetector {
    /// Builds an empty streaming detector.
    ///
    /// `seed` draws the member `(w, a)` pairs exactly as batch
    /// [`EnsembleDetector::detect`] does, so
    /// [`finish`](StreamingEnsembleDetector::finish) can land on the
    /// identical report.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as
    /// [`EnsembleDetector::new`].
    pub fn new(config: EnsembleConfig, seed: u64) -> Self {
        let detector = EnsembleDetector::new(config);
        let params = detector.member_params(seed);
        let mut ws: Vec<usize> = params.iter().map(|p| p.w).collect();
        ws.sort_unstable();
        ws.dedup();
        let streams: Vec<PaaStream> = ws
            .iter()
            .map(|&w| PaaStream::empty(config.window, w))
            .collect();
        let members: Vec<MemberState> = params
            .iter()
            .map(|&sax| {
                let stream = ws.binary_search(&sax.w).expect("w collected above");
                empty_member(sax, stream, config.window)
            })
            .collect();
        Self {
            detector,
            seed,
            multi: MultiResBreakpoints::new(config.amax),
            series: Vec::new(),
            stats: PrefixStats::new(&[]),
            streams,
            members,
            stale: VecDeque::new(),
            clock: StreamClock::new(),
            telemetry: SessionStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> EnsembleConfig {
        self.detector.config()
    }

    /// The member-draw seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The drawn member parameter pairs, in member order (identical to
    /// batch [`EnsembleDetector::member_params`] for this seed).
    pub fn member_params(&self) -> Vec<SaxConfig> {
        self.members.iter().map(|m| m.sax).collect()
    }

    /// Points ingested so far.
    pub fn series_len(&self) -> usize {
        self.series.len()
    }

    /// The full series ingested so far.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// Number of sliding windows the current series supports.
    pub fn window_count(&self) -> usize {
        window_count(self.series.len(), self.config().window)
    }

    /// Members awaiting a refresh (= pending units of work).
    pub fn pending_members(&self) -> usize {
        self.stale.len()
    }

    /// Ingest events (appends and evictions) so far.
    pub fn epochs(&self) -> u64 {
        self.clock.epochs()
    }

    /// Points retired from the front of the stream so far. Every index
    /// the detector reports (anomaly starts, curve positions) is local
    /// to the live window; its global stream position is
    /// `stream_offset() + index`.
    pub fn stream_offset(&self) -> usize {
        self.clock.offset()
    }

    /// The retention policy installed by
    /// [`StreamingEnsembleDetector::retain_last`], if any.
    pub fn retention(&self) -> Option<usize> {
        self.clock.retention()
    }

    /// Total capacity (in `f64`s) retained by the shared PAA coefficient
    /// streams — cheap accessor for memory-bound assertions on eviction
    /// workloads.
    pub fn paa_capacity(&self) -> usize {
        self.streams.iter().map(PaaStream::capacity).sum()
    }

    /// Total grammar-slab slots allocated across members (live nodes
    /// plus free-list holes) — cheap accessor for memory-bound
    /// assertions; see [`Sequitur::slab_len`].
    pub fn slab_len(&self) -> usize {
        self.members.iter().map(|m| m.seq.slab_len()).sum()
    }

    /// Capacity (in `f64`s) retained by the live series buffer.
    pub fn series_capacity(&self) -> usize {
        self.series.capacity()
    }

    /// `true` once every member's curve covers the current series —
    /// from here [`snapshot`](Self::snapshot) and
    /// [`anomalies`](Self::anomalies) answer with the exact batch
    /// ensemble curve of the ingested series.
    pub fn is_current(&self) -> bool {
        self.stale.is_empty()
    }

    /// Lifetime telemetry for this detector: appends, evictions,
    /// member refreshes served, staleness (points appended since the
    /// ensemble last caught up), and structural staleness (points of
    /// the current snapshot served from a zero-pad or eviction carry
    /// rather than healed coverage — see
    /// [`structural_staleness`](Self::structural_staleness)). Pure
    /// `u64` counters, deliberately not part of checkpoints (a
    /// restored detector starts from zero).
    pub fn metrics(&self) -> SessionStats {
        self.telemetry
    }

    /// Points of the current series whose [`snapshot`](Self::snapshot)
    /// contribution is structurally stale for at least one member:
    /// zero-padded beyond the member's last refresh, or — after an
    /// eviction — served from the shifted pre-eviction carry until the
    /// replay heals it. Distinct from `SessionStats::staleness_points`
    /// (points *appended* since last caught up): an eviction adds no
    /// points but makes every member's whole curve structurally stale
    /// until its replay completes. Zero exactly when
    /// [`is_current`](Self::is_current) work has healed all coverage.
    pub fn structural_staleness(&self) -> usize {
        let len = self.series.len();
        let healed = self
            .members
            .iter()
            .map(|m| {
                if m.delta_base {
                    m.curve.len().min(len)
                } else {
                    0
                }
            })
            .min()
            .unwrap_or(len);
        len - healed
    }

    /// Test/bench oracle for the incremental density layer: `true` iff
    /// every member's delta-maintained curve is **bit-identical** to a
    /// from-scratch [`RuleDensityCurve::from_occurrences`] rebuild over
    /// its live grammar (members still serving a post-eviction carry
    /// are excluded — their curve is intentionally not a delta base
    /// until the replay refresh). This retains the pre-delta rebuild
    /// path purely as a differential check; the property harness in
    /// `tests/density_delta_proptests.rs` and the bench's in-run
    /// parity gate both assert it after every schedule operation.
    pub fn delta_curves_match_rebuild(&self) -> bool {
        self.members.iter().all(|m| {
            !m.delta_base
                || m.curve
                    == RuleDensityCurve::from_occurrences(
                        &m.seq.occurrences(),
                        &m.nr,
                        m.curve.len(),
                    )
        })
    }

    /// Ingests new points. Never blocks on scoring work: the cost is
    /// the `O(c)` prefix-statistics extension plus `O(members)` queue
    /// bookkeeping; all discretization, grammar, and density work is
    /// deferred to [`step`](Self::step) / [`run_until`](Self::run_until)
    /// so the caller controls the latency budget.
    ///
    /// Every member goes stale on an append — even when no new window
    /// completed, curves must grow to the new series length (and fresh
    /// tokens may retroactively change old coverage through new rules).
    ///
    /// # Panics
    ///
    /// Panics if `points` contains non-finite values (same contract as
    /// batch [`EnsembleDetector::detect`]).
    pub fn append(&mut self, points: &[f64]) {
        assert!(
            points.iter().all(|v| v.is_finite()),
            "series contains non-finite values"
        );
        if points.is_empty() {
            return;
        }
        let span = egi_obs::SpanTimer::start();
        self.clock.record_append();
        self.series.extend_from_slice(points);
        self.stats.extend(points);
        self.stale.clear();
        self.stale.extend(0..self.members.len());
        let excess = self.clock.excess(self.series.len());
        if excess > 0 {
            self.evict(excess)
                .expect("retention >= window leaves a viable suffix");
        }
        self.telemetry
            .record_append(points.len() as u64, self.stale.is_empty());
        self.telemetry
            .set_structural_staleness(self.structural_staleness() as u64);
        span.record(egi_obs::histogram!("egi_monitor_append_nanos"));
    }

    /// Retires the oldest `count` points from the live window. After
    /// the eviction the detector behaves — bit for bit, for every
    /// future operation — like a fresh detector that ingested only the
    /// surviving suffix (plus the [`stream_offset`] bookkeeping), so
    /// [`finish`](Self::finish) lands on batch
    /// [`EnsembleDetector::detect`] over that suffix.
    ///
    /// The immediate cost is the statistics rebase and shared PAA
    /// stream rebuild (`O(remaining)`-shaped); each member's grammar
    /// replay over the suffix is deferred to
    /// [`step`](Self::step)/[`run_until`](Self::run_until) like any
    /// other refresh, and until it runs,
    /// [`snapshot`](Self::snapshot) serves the member's pre-eviction
    /// curve shifted into suffix coordinates (see the
    /// [module docs](self) for why eviction cannot be incremental).
    ///
    /// # Errors
    ///
    /// Rejected atomically (state untouched) when `count` exceeds the
    /// live point count ([`EvictError::PastEnd`]) or a non-empty suffix
    /// shorter than the analysis `window` would survive
    /// ([`EvictError::BelowMinimum`]). Evicting *everything* is
    /// allowed: the stream resets (offset preserved).
    ///
    /// [`stream_offset`]: Self::stream_offset
    pub fn evict(&mut self, count: usize) -> Result<(), EvictError> {
        validate_evict(self.series.len(), count, self.config().window)?;
        if count == 0 {
            return Ok(());
        }
        let span = egi_obs::SpanTimer::start();
        self.clock.record_evict(count);
        self.series.drain(..count);
        self.stats.rebase(&self.series);
        for stream in &mut self.streams {
            stream.evict_front(count, &self.stats);
        }
        let windowless = window_count(self.series.len(), self.config().window) == 0;
        for member in &mut self.members {
            member.consumed = 0;
            member.nr.clear();
            member.interner.clear();
            // Drops pending deltas too (the eviction rebase rule).
            member.seq.clear();
            member.delta_base = false;
            if windowless {
                // No window fits the suffix (under the boundary rule
                // this is the full drain): the exact batch curve is
                // all zeros, so materialize it now rather than letting
                // a stale carry of coincidentally-right length pass
                // the parallel catch-up's currency check.
                member.curve.values.clear();
                member.curve.values.resize(self.series.len(), 0.0);
            } else {
                // Structural carry for live snapshots: the cached
                // curve, shifted into suffix coordinates (exact for
                // the member's pre-eviction view, replaced wholesale
                // by its replay).
                let drop = count.min(member.curve.values.len());
                member.curve.values.drain(..drop);
            }
        }
        self.stale.clear();
        self.stale.extend(0..self.members.len());
        self.telemetry
            .record_evict(count as u64, self.stale.is_empty());
        self.telemetry
            .set_structural_staleness(self.structural_staleness() as u64);
        span.record(egi_obs::histogram!("egi_monitor_evict_nanos"));
        Ok(())
    }

    /// Installs a sliding-window retention policy and trims the live
    /// window to at most `n` points now and after every future append —
    /// the bounded-memory mode for unbounded streams. Returns how many
    /// points the immediate trim retired.
    ///
    /// # Errors
    ///
    /// [`EvictError::BelowMinimum`] when `n` is smaller than the
    /// analysis `window` (the policy could never keep a viable window);
    /// the state is untouched.
    ///
    /// # Examples
    ///
    /// ```
    /// use egi_core::streaming::StreamingEnsembleDetector;
    /// use egi_core::{EnsembleConfig, EnsembleDetector};
    ///
    /// let series: Vec<f64> = (0..700)
    ///     .map(|i| (i as f64 * 0.21).sin() + ((i * 11) % 5) as f64 * 0.04)
    ///     .collect();
    /// let config = EnsembleConfig {
    ///     window: 32,
    ///     ensemble_size: 6,
    ///     ..EnsembleConfig::default()
    /// };
    /// let mut detector = StreamingEnsembleDetector::new(config, 7);
    /// detector.retain_last(300).unwrap();
    /// for chunk in series.chunks(100) {
    ///     detector.append(chunk); // auto-trims to the last 300 points
    /// }
    /// assert_eq!(detector.series_len(), 300);
    /// assert_eq!(detector.stream_offset(), 400);
    ///
    /// // The finished report is bit-identical to the batch detector
    /// // over the surviving suffix.
    /// let report = detector.finish(2);
    /// let batch = EnsembleDetector::new(config).detect(&series[400..], 2, 7);
    /// assert_eq!(report, batch);
    /// ```
    pub fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
        let window = self.config().window;
        if n < window {
            return Err(EvictError::BelowMinimum {
                remaining: n,
                minimum: window,
            });
        }
        self.clock.set_retention(n);
        let excess = self.clock.excess(self.series.len());
        if excess > 0 {
            self.evict(excess)?;
        }
        Ok(excess)
    }

    /// Defragments every member's grammar slab
    /// ([`Sequitur::compact`]), reclaiming free-list holes and
    /// tombstoned rule records left by rule churn on long streams.
    /// Observationally invisible: snapshots, future refreshes, and
    /// [`finish`](Self::finish) are bit-identical with or without
    /// compaction (property-tested).
    pub fn compact(&mut self) {
        for member in &mut self.members {
            member.seq.compact();
        }
    }

    /// Refreshes the next stale member (one unit of work): advances the
    /// shared PAA stream, folds the member's backlog of fresh windows
    /// through discretization → numerosity reduction → interning →
    /// [`Sequitur::push`], and rebuilds its density curve at the
    /// current series length. Returns `false` when no member is stale.
    pub fn step(&mut self) -> bool {
        let Some(i) = self.stale.pop_front() else {
            return false;
        };
        let target = self.window_count();
        let len = self.series.len();
        let si = self.members[i].stream;
        self.streams[si].extend_from_stats(&self.stats);
        refresh_member(
            &mut self.members[i],
            &self.streams[si],
            &self.multi,
            target,
            len,
        );
        self.telemetry.record_step(self.stale.is_empty());
        self.telemetry
            .set_structural_staleness(self.structural_staleness() as u64);
        true
    }

    /// The current best-known ensemble rule-density curve, combined
    /// from each member's cached curve under the batch combination rule
    /// (σ-rank → τ-filter → max-normalize → point-wise combine).
    ///
    /// Stale members contribute their last refresh zero-padded to the
    /// current series length (the structural carry-over — see the
    /// [module docs](self)); once
    /// [`is_current`](Self::is_current), the result is bit-identical to
    /// batch [`EnsembleDetector::ensemble_curve`] on the ingested
    /// series.
    pub fn snapshot(&self) -> RuleDensityCurve {
        let len = self.series.len();
        let curves: Vec<RuleDensityCurve> = self
            .members
            .iter()
            .map(|m| {
                let mut curve = m.curve.clone();
                curve.values.resize(len, 0.0);
                curve
            })
            .collect();
        self.detector.combine_curves(curves)
    }

    /// Top-`k` non-overlapping anomaly candidates of the current
    /// [`snapshot`](Self::snapshot) — the "most anomalous windows so
    /// far" answer, available at any moment.
    pub fn anomalies(&self, k: usize) -> Vec<Candidate> {
        let curve = self.snapshot();
        rank_anomalies(&curve.values, self.config().window, k)
    }

    /// Refreshes every stale member (on rayon workers when the
    /// configuration says `parallel`, serially otherwise — results are
    /// bit-identical either way) and returns the finished report:
    /// **bit-identical** to batch [`EnsembleDetector::detect`] on the
    /// full ingested series with this detector's seed, for every append
    /// schedule, chunk size, and worker count.
    pub fn finish(&mut self, k: usize) -> AnomalyReport {
        self.catch_up();
        let curve = self.snapshot();
        let anomalies = rank_anomalies(&curve.values, self.config().window, k);
        AnomalyReport {
            anomalies,
            curve: curve.values,
        }
    }

    /// Drains the stale queue. Members are independent, so the parallel
    /// path (in-place rayon iteration) produces states bit-identical to
    /// the serial one.
    fn catch_up(&mut self) {
        if !self.config().parallel || self.stale.len() <= 1 {
            while self.step() {}
            return;
        }
        self.telemetry.steps += self.stale.len() as u64;
        self.telemetry.caught_up += 1;
        self.telemetry.staleness_points = 0;
        self.stale.clear();
        let target = self.window_count();
        let len = self.series.len();
        for stream in self.streams.iter_mut() {
            stream.extend_from_stats(&self.stats);
        }
        let streams = &self.streams;
        let multi = &self.multi;
        self.members.par_iter_mut().for_each(|member| {
            if member.consumed < target || member.curve.len() != len || !member.delta_base {
                let stream = &streams[member.stream];
                refresh_member(member, stream, multi, target, len);
            }
        });
        self.telemetry
            .set_structural_staleness(self.structural_staleness() as u64);
    }
}

/// Section tag of the detector-state section (`b"ENS1"` little-endian).
const CKPT_SECTION_DETECTOR: u32 = u32::from_le_bytes(*b"ENS1");
/// Section tag of each per-member section (`b"MEM1"`), one per ensemble
/// member in draw order.
const CKPT_SECTION_MEMBER: u32 = u32::from_le_bytes(*b"MEM1");
const CKPT_DETECTOR_VERSION: u32 = 1;
/// Member payload v2 (the incremental density layer): the Sequitur
/// node record gained per-node position/owner fields and the engine its
/// delta-tracking state, and the member record gained the
/// `delta_base` flag — none of which a v1 payload carries, so v1
/// members are rejected as [`CheckpointError::UnsupportedSection`]
/// rather than restored with a silently unmaintainable curve.
const CKPT_MEMBER_VERSION: u32 = 2;

fn corrupt(what: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt(what.into())
}

/// Persistence for the detector (see [`Checkpoint`] for the container
/// format). The checkpoint holds the series, the clock, and each
/// member's token pipeline (numerosity-reduced sequence, interning
/// table, live Sequitur grammar slab, cached density curve); the prefix
/// statistics, shared PAA streams, breakpoint tables, and the batch
/// combiner are re-derived on load — each is a pure function of the
/// series and configuration, bit-identical to the evolved originals.
impl Checkpoint for StreamingEnsembleDetector {
    fn save_checkpoint(&self, writer: &mut impl Write) -> Result<(), CheckpointError> {
        use serde::Serialize;
        let config = self.config();
        let mut out = CheckpointWriter::begin(writer, 1 + self.members.len() as u32)?;
        let mut f = FieldWriter::new();
        f.usize(config.window);
        f.usize(config.ensemble_size);
        f.usize(config.wmax);
        f.usize(config.amax);
        f.f64(config.selectivity);
        f.u32(match config.combiner {
            Combiner::Median => 0,
            Combiner::Mean => 1,
            Combiner::Min => 2,
            Combiner::Max => 3,
        });
        f.bool(config.parallel);
        f.u64(self.seed);
        f.u64(self.clock.epochs());
        f.usize(self.clock.offset());
        f.opt_usize(self.clock.retention());
        f.f64_slice(&self.series);
        let stale: Vec<usize> = self.stale.iter().copied().collect();
        f.usize_slice(&stale);
        f.usize(self.members.len());
        out.section(
            CKPT_SECTION_DETECTOR,
            CKPT_DETECTOR_VERSION,
            &f.into_bytes(),
        )?;
        for member in &self.members {
            let mut f = FieldWriter::new();
            f.usize(member.consumed);
            f.bool(member.delta_base);
            f.f64_slice(&member.curve.values);
            f.value(&member.nr.to_value());
            f.value(&member.interner.to_value());
            f.value(&member.seq.to_value());
            out.section(CKPT_SECTION_MEMBER, CKPT_MEMBER_VERSION, &f.into_bytes())?;
        }
        Ok(())
    }

    fn load_checkpoint(reader: &mut impl Read) -> Result<Self, CheckpointError> {
        use serde::Deserialize;
        let mut input = CheckpointReader::begin(reader)?;
        let (_, payload) = input.section(CKPT_SECTION_DETECTOR, CKPT_DETECTOR_VERSION)?;
        let mut f = FieldReader::new(&payload);
        let window = f.usize()?;
        let ensemble_size = f.usize()?;
        let wmax = f.usize()?;
        let amax = f.usize()?;
        let selectivity = f.f64()?;
        let combiner = match f.u32()? {
            0 => Combiner::Median,
            1 => Combiner::Mean,
            2 => Combiner::Min,
            3 => Combiner::Max,
            other => return Err(corrupt(format!("unknown combiner tag {other}"))),
        };
        let parallel = f.bool()?;
        let seed = f.u64()?;
        let epochs = f.u64()?;
        let offset = f.usize()?;
        let retention = f.opt_usize()?;
        let series = f.f64_vec()?;
        let stale = f.usize_vec()?;
        let member_count = f.usize()?;
        f.finish()?;

        // Every bound a panicking constructor downstream would assert,
        // surfaced as a typed error first.
        if window < 2 {
            return Err(corrupt("window must be at least 2"));
        }
        if ensemble_size == 0 {
            return Err(corrupt("ensemble size must be positive"));
        }
        if wmax < 2 {
            return Err(corrupt("wmax must be at least 2"));
        }
        if !(MIN_ALPHABET..=MAX_ALPHABET).contains(&amax) {
            return Err(corrupt(format!("amax {amax} outside the alphabet range")));
        }
        if !(selectivity > 0.0 && selectivity <= 1.0) {
            return Err(corrupt("selectivity outside (0, 1]"));
        }
        if !series.iter().all(|v| v.is_finite()) {
            return Err(corrupt("series contains non-finite values"));
        }
        if let Some(n) = retention {
            if n < window {
                return Err(corrupt(format!("retention {n} below window {window}")));
            }
        }
        let config = EnsembleConfig {
            window,
            ensemble_size,
            wmax,
            amax,
            selectivity,
            combiner,
            parallel,
        };
        let mut detector = Self::new(config, seed);
        if detector.members.len() != member_count
            || input.sections_remaining() as usize != member_count
        {
            return Err(corrupt(format!(
                "member count {member_count} disagrees with the {} drawn \
                 by this configuration and seed",
                detector.members.len()
            )));
        }
        let mut seen = vec![false; member_count];
        for &i in &stale {
            if i >= member_count || std::mem::replace(&mut seen[i], true) {
                return Err(corrupt("stale queue cites a bad member"));
            }
        }
        detector.series = series;
        detector.stats = PrefixStats::new(&detector.series);
        for stream in &mut detector.streams {
            stream.extend_from_stats(&detector.stats);
        }
        let count = detector.window_count();
        let len = detector.series.len();
        for (i, member) in detector.members.iter_mut().enumerate() {
            let (version, payload) = input.section(CKPT_SECTION_MEMBER, CKPT_MEMBER_VERSION)?;
            if version != CKPT_MEMBER_VERSION {
                // v1 members predate the delta-maintained curve (no
                // per-node position/owner state to resume from).
                return Err(CheckpointError::UnsupportedSection {
                    tag: CKPT_SECTION_MEMBER,
                    found: version,
                    supported: CKPT_MEMBER_VERSION,
                });
            }
            let mut f = FieldReader::new(&payload);
            let consumed = f.usize()?;
            let delta_base = f.bool()?;
            let curve = f.f64_vec()?;
            let nr = NumerosityReduced::from_value(&f.value()?)?;
            let interner = OnlineInterner::from_value(&f.value()?)?;
            let mut seq = Sequitur::from_value(&f.value()?)?;
            // Tracking is structural for the detector (enabling is a
            // no-op on the already-tracking engines we write, and
            // never discards restored pending deltas).
            seq.set_delta_tracking(true);
            f.finish()?;
            if consumed > count {
                return Err(corrupt(format!("member {i} consumed beyond the series")));
            }
            if curve.len() > len || !curve.iter().all(|v| v.is_finite()) {
                return Err(corrupt(format!("member {i} carries a malformed curve")));
            }
            if nr.window != config.window {
                return Err(corrupt(format!("member {i} tokens use a foreign window")));
            }
            if nr.end_offset != consumed {
                return Err(corrupt(format!("member {i} tokens desync its windows")));
            }
            // Every retained token was pushed into the grammar; a count
            // mismatch would let occurrence spans index out of range.
            if seq.token_count() != nr.len() {
                return Err(corrupt(format!("member {i} grammar/token desync")));
            }
            // A non-base curve is the post-eviction carry; the engine
            // must have been cleared alongside or the next refresh
            // would zero the curve under a live grammar.
            if !delta_base && seq.token_count() != 0 {
                return Err(corrupt(format!(
                    "member {i} carries a non-base curve with a live grammar"
                )));
            }
            member.consumed = consumed;
            member.delta_base = delta_base;
            member.curve = RuleDensityCurve { values: curve };
            member.nr = nr;
            member.interner = interner;
            member.seq = seq;
        }
        detector.stale = stale.into();
        detector.clock = StreamClock::with_state(epochs, offset, retention);
        // Lifetime counters restart at zero, but structural staleness
        // is a level derived from the restored state — initialize the
        // gauge so a half-healed snapshot reports truthfully at once.
        detector
            .telemetry
            .set_structural_staleness(detector.structural_staleness() as u64);
        Ok(detector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Combiner;
    use egi_tskit::Deadline;
    use std::time::{Duration, Instant};

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.11).sin() * 1.4 + 0.6 * (t * 0.037).cos() + ((i * 31) % 17) as f64 * 0.05
            })
            .collect()
    }

    fn config(window: usize, members: usize) -> EnsembleConfig {
        EnsembleConfig {
            window,
            ensemble_size: members,
            ..EnsembleConfig::default()
        }
    }

    #[test]
    fn finish_matches_batch_detect_bitwise() {
        let series = test_series(400);
        let cfg = config(32, 10);
        let batch = EnsembleDetector::new(cfg).detect(&series, 3, 11);
        for chunk in [1usize, 13, 100, 400] {
            let mut streaming = StreamingEnsembleDetector::new(cfg, 11);
            for part in series.chunks(chunk) {
                streaming.append(part);
            }
            let report = streaming.finish(3);
            assert_eq!(report, batch, "chunk {chunk}");
            assert!(streaming.is_current());
        }
    }

    #[test]
    fn interleaved_stepping_still_matches_batch() {
        let series = test_series(350);
        let cfg = config(28, 8);
        let batch = EnsembleDetector::new(cfg).detect(&series, 2, 5);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 5);
        for part in series.chunks(37) {
            streaming.append(part);
            streaming.run_for(3); // leave a backlog on purpose
            let _ = streaming.snapshot();
            let _ = streaming.anomalies(2);
        }
        assert_eq!(streaming.finish(2), batch);
    }

    #[test]
    fn member_draw_matches_batch_member_params() {
        let cfg = config(64, 20);
        let streaming = StreamingEnsembleDetector::new(cfg, 99);
        let batch = EnsembleDetector::new(cfg).member_params(99);
        assert_eq!(streaming.member_params(), batch);
    }

    #[test]
    fn append_defers_all_scoring_work() {
        let mut streaming = StreamingEnsembleDetector::new(config(16, 6), 1);
        streaming.append(&test_series(200));
        assert_eq!(streaming.pending_members(), 6);
        assert_eq!(streaming.epochs(), 1);
        assert!(!streaming.is_current());
        // Members are untouched until stepped.
        assert!(streaming.members.iter().all(|m| m.consumed == 0));
        assert_eq!(streaming.run_for(usize::MAX), 6);
        assert!(streaming.is_current());
    }

    #[test]
    fn snapshot_before_any_step_is_all_zero() {
        let mut streaming = StreamingEnsembleDetector::new(config(16, 5), 3);
        streaming.append(&test_series(120));
        let snap = streaming.snapshot();
        assert_eq!(snap.len(), 120);
        assert!(snap.values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn snapshot_when_current_equals_batch_ensemble_curve() {
        let series = test_series(300);
        let cfg = config(24, 7);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 21);
        for part in series.chunks(50) {
            streaming.append(part);
            streaming.run_for(usize::MAX);
        }
        let batch = EnsembleDetector::new(cfg).ensemble_curve(&series, 21);
        assert_eq!(streaming.snapshot(), batch);
    }

    #[test]
    fn short_series_yields_empty_everything() {
        let mut streaming = StreamingEnsembleDetector::new(config(64, 5), 0);
        streaming.append(&test_series(10)); // shorter than the window
        assert_eq!(streaming.window_count(), 0);
        assert!(streaming.anomalies(3).is_empty());
        let report = streaming.finish(3);
        assert!(report.anomalies.is_empty());
        assert_eq!(report.curve, vec![0.0; 10]);
        let batch = EnsembleDetector::new(config(64, 5)).detect(streaming.series(), 3, 0);
        assert_eq!(report, batch);
    }

    #[test]
    fn empty_append_is_a_noop() {
        let mut streaming = StreamingEnsembleDetector::new(config(8, 4), 2);
        streaming.append(&[]);
        assert_eq!(streaming.epochs(), 0);
        assert_eq!(streaming.series_len(), 0);
        assert!(streaming.is_current());
    }

    #[test]
    fn expired_deadline_runs_zero_units() {
        let mut streaming = StreamingEnsembleDetector::new(config(8, 6), 4);
        streaming.append(&test_series(100));
        assert_eq!(streaming.run_until(Deadline::at(Instant::now())), 0);
        assert_eq!(streaming.pending_members(), 6);
        assert_eq!(streaming.run_for_duration(Duration::ZERO), 0);
    }

    #[test]
    fn deadline_overshoots_by_at_most_one_unit() {
        // A deadline that expires mid-run: the unit count processed can
        // exceed the expiry check count by at most one (checked before
        // each unit).
        let mut streaming = StreamingEnsembleDetector::new(config(8, 10), 4);
        streaming.append(&test_series(300));
        let ran = streaming.run_until(Deadline::queries(3));
        assert_eq!(ran, 3, "query-capped deadline runs exactly the cap");
        assert_eq!(streaming.pending_members(), 7);
    }

    #[test]
    fn parallel_and_serial_finish_agree_exactly() {
        let series = test_series(320);
        let serial_cfg = EnsembleConfig {
            parallel: false,
            ..config(20, 9)
        };
        let parallel_cfg = EnsembleConfig {
            parallel: true,
            ..config(20, 9)
        };
        let mut a = StreamingEnsembleDetector::new(serial_cfg, 8);
        let mut b = StreamingEnsembleDetector::new(parallel_cfg, 8);
        for part in series.chunks(60) {
            a.append(part);
            b.append(part);
        }
        assert_eq!(a.finish(3), b.finish(3));
    }

    #[test]
    fn finish_deterministic_across_thread_counts() {
        let series = test_series(280);
        let cfg = config(18, 8);
        let reference = EnsembleDetector::new(cfg).detect(&series, 2, 13);
        for threads in [1usize, 2, 4] {
            let mut streaming = StreamingEnsembleDetector::new(cfg, 13);
            for part in series.chunks(45) {
                streaming.append(part);
                streaming.run_for(2);
            }
            let report = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| streaming.finish(2));
            assert_eq!(report, reference, "{threads} threads");
        }
    }

    #[test]
    fn detects_planted_anomaly_mid_stream() {
        let mut series: Vec<f64> = (0..500).map(|i| (i as f64 * 0.25).sin()).collect();
        for (k, v) in series[350..380].iter_mut().enumerate() {
            *v = 1.8 + (k as f64 * 1.1).cos();
        }
        let mut streaming = StreamingEnsembleDetector::new(config(40, 10), 42);
        for part in series.chunks(125) {
            streaming.append(part);
            streaming.run_for(usize::MAX);
        }
        let top = streaming.anomalies(1);
        assert_eq!(top.len(), 1);
        assert!(
            (310..=390).contains(&top[0].start),
            "top candidate at {} should cover the corrupted beat",
            top[0].start
        );
    }

    #[test]
    fn alternative_combiner_parity_holds_too() {
        let series = test_series(260);
        let cfg = EnsembleConfig {
            combiner: Combiner::Mean,
            selectivity: 0.6,
            ..config(22, 7)
        };
        let batch = EnsembleDetector::new(cfg).detect(&series, 2, 77);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 77);
        for part in series.chunks(19) {
            streaming.append(part);
        }
        assert_eq!(streaming.finish(2), batch);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_append_rejected() {
        let mut streaming = StreamingEnsembleDetector::new(config(8, 4), 0);
        streaming.append(&[1.0, f64::NAN]);
    }

    // ------------------------------------------------------------------
    // Sliding-window eviction: boundary regressions. The property
    // harness in tests/eviction_proptests.rs covers random schedules;
    // these pin the exact edges of the contract.
    // ------------------------------------------------------------------

    #[test]
    fn evict_then_finish_matches_batch_over_suffix() {
        let series = test_series(360);
        let cfg = config(24, 7);
        for cut in [1usize, 60, 200] {
            let mut streaming = StreamingEnsembleDetector::new(cfg, 9);
            for part in series.chunks(45) {
                streaming.append(part);
                streaming.run_for(2);
            }
            streaming.evict(cut).unwrap();
            assert_eq!(streaming.stream_offset(), cut);
            let report = streaming.finish(3);
            let batch = EnsembleDetector::new(cfg).detect(&series[cut..], 3, 9);
            assert_eq!(report, batch, "cut {cut}");
        }
    }

    #[test]
    fn evict_to_exactly_window_points_leaves_one_window() {
        let series = test_series(200);
        let cfg = config(20, 6);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 4);
        streaming.append(&series);
        streaming.evict(series.len() - 20).unwrap();
        assert_eq!(streaming.series_len(), 20);
        assert_eq!(streaming.window_count(), 1);
        let report = streaming.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[180..], 2, 4);
        assert_eq!(report, batch);
    }

    #[test]
    fn evict_below_minimum_errors_without_state_change() {
        let series = test_series(100);
        let cfg = config(16, 5);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 2);
        streaming.append(&series);
        streaming.run_for(usize::MAX);
        let before = streaming.snapshot();
        assert_eq!(
            streaming.evict(90),
            Err(EvictError::BelowMinimum {
                remaining: 10,
                minimum: 16
            })
        );
        assert_eq!(
            streaming.evict(101),
            Err(EvictError::PastEnd {
                requested: 101,
                available: 100
            })
        );
        assert_eq!(streaming.series_len(), 100);
        assert_eq!(streaming.stream_offset(), 0);
        assert!(streaming.is_current());
        assert_eq!(streaming.snapshot(), before);
    }

    #[test]
    fn evict_everything_then_append_restarts_cleanly() {
        let series = test_series(300);
        let cfg = config(18, 6);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 3);
        streaming.append(&series[..160]);
        streaming.run_for(3);
        streaming.evict(160).unwrap();
        assert_eq!(streaming.series_len(), 0);
        assert_eq!(streaming.window_count(), 0);
        assert_eq!(streaming.stream_offset(), 160);
        assert!(streaming.snapshot().is_empty());
        streaming.append(&series[160..]);
        let report = streaming.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[160..], 2, 3);
        assert_eq!(report, batch);
        assert_eq!(streaming.stream_offset(), 160);
    }

    #[test]
    fn full_drain_parallel_finish_serves_empty_report_exactly() {
        // The only valid windowless suffix is the empty one (the
        // boundary rule rejects 0 < suffix < window); both the serial
        // and the parallel finish must serve the empty batch report
        // even though members were current before the drain.
        let series = test_series(150);
        for parallel in [false, true] {
            let cfg = EnsembleConfig {
                parallel,
                ..config(30, 5)
            };
            let mut streaming = StreamingEnsembleDetector::new(cfg, 6);
            streaming.append(&series);
            streaming.run_for(usize::MAX);
            assert_eq!(
                streaming.evict(140),
                Err(EvictError::BelowMinimum {
                    remaining: 10,
                    minimum: 30
                })
            );
            streaming.evict(150).unwrap();
            assert_eq!(streaming.window_count(), 0);
            let report = streaming.finish(2);
            let batch = EnsembleDetector::new(cfg).detect(&[], 2, 6);
            assert_eq!(report, batch, "parallel {parallel}");
            assert!(report.curve.is_empty());
        }
    }

    #[test]
    fn one_point_evictions_mirror_one_point_appends() {
        let series = test_series(160);
        let cfg = config(14, 5);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 8);
        streaming.append(&series);
        for step in 1..=30usize {
            streaming.evict(1).unwrap();
            assert_eq!(streaming.stream_offset(), step);
            streaming.run_for(1);
        }
        let report = streaming.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[30..], 2, 8);
        assert_eq!(report, batch);
    }

    #[test]
    fn retain_last_policy_trims_on_every_append() {
        let series = test_series(500);
        let cfg = config(22, 6);
        assert_eq!(
            StreamingEnsembleDetector::new(cfg, 5).retain_last(21),
            Err(EvictError::BelowMinimum {
                remaining: 21,
                minimum: 22
            })
        );
        let mut streaming = StreamingEnsembleDetector::new(cfg, 5);
        assert_eq!(streaming.retain_last(150), Ok(0));
        assert_eq!(streaming.retention(), Some(150));
        for part in series.chunks(40) {
            streaming.append(part);
            assert!(streaming.series_len() <= 150);
            streaming.run_for(3);
        }
        assert_eq!(streaming.series_len(), 150);
        assert_eq!(streaming.stream_offset(), 350);
        let report = streaming.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[350..], 2, 5);
        assert_eq!(report, batch);
    }

    #[test]
    fn snapshot_after_evict_serves_shifted_carry_inside_live_window() {
        let series = test_series(260);
        let cfg = config(20, 5);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 11);
        streaming.append(&series);
        streaming.run_for(usize::MAX);
        streaming.evict(60).unwrap();
        // Before any replay, the snapshot serves the pre-eviction
        // curves shifted into suffix coordinates — right length, and
        // every reported candidate inside the live window.
        let snap = streaming.snapshot();
        assert_eq!(snap.len(), 200);
        for c in streaming.anomalies(3) {
            assert!(c.start + c.len <= 200, "candidate escaped the window");
        }
        // Replay restores batch exactness.
        let report = streaming.finish(3);
        let batch = EnsembleDetector::new(cfg).detect(&series[60..], 3, 11);
        assert_eq!(report, batch);
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore: pinned mid-schedule round trips. The property
    // harness in tests/checkpoint_proptests.rs injects save/restore at
    // every prefix of random schedules; these pin the structural edges.
    // ------------------------------------------------------------------

    #[test]
    fn checkpoint_round_trip_resumes_bit_identically() {
        let series = test_series(420);
        let cfg = EnsembleConfig {
            combiner: Combiner::Mean,
            selectivity: 0.7,
            ..config(24, 7)
        };
        let mut live = StreamingEnsembleDetector::new(cfg, 17);
        live.append(&series[..260]);
        live.run_for(4); // mid-refresh: some members current, some stale
        live.evict(50).unwrap();
        live.run_for(2);
        live.append(&series[260..340]);
        live.run_for(3);

        let bytes = live.checkpoint_bytes().unwrap();
        let mut restored = StreamingEnsembleDetector::from_checkpoint_bytes(&bytes).unwrap();
        assert_eq!(restored.seed(), 17);
        assert_eq!(restored.config(), cfg);
        assert_eq!(restored.stream_offset(), live.stream_offset());
        assert_eq!(restored.pending_members(), live.pending_members());
        assert_eq!(restored.snapshot(), live.snapshot());

        // Replay the identical remainder on both sides.
        for detector in [&mut live, &mut restored] {
            detector.run_for(2);
            detector.append(&series[340..]);
            detector.run_for(3);
            detector.evict(31).unwrap();
        }
        assert_eq!(restored.snapshot(), live.snapshot());
        assert_eq!(restored.finish(3), live.finish(3));
    }

    #[test]
    fn checkpoint_restore_lands_on_batch_parity() {
        // The restored detector inherits the full contract: finishing
        // after restore is bit-identical to batch detect on the suffix.
        let series = test_series(300);
        let cfg = config(20, 6);
        let mut live = StreamingEnsembleDetector::new(cfg, 3);
        live.retain_last(220).unwrap();
        for part in series.chunks(70) {
            live.append(part);
            live.run_for(2);
        }
        let mut restored =
            StreamingEnsembleDetector::from_checkpoint_bytes(&live.checkpoint_bytes().unwrap())
                .unwrap();
        assert_eq!(restored.retention(), Some(220));
        let report = restored.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[300 - 220..], 2, 3);
        assert_eq!(report, batch);
    }

    #[test]
    fn checkpoint_of_an_empty_detector_round_trips() {
        let live = StreamingEnsembleDetector::new(config(16, 5), 9);
        let mut restored =
            StreamingEnsembleDetector::from_checkpoint_bytes(&live.checkpoint_bytes().unwrap())
                .unwrap();
        assert_eq!(restored.series_len(), 0);
        assert!(restored.is_current());
        let series = test_series(140);
        restored.append(&series);
        let batch = EnsembleDetector::new(config(16, 5)).detect(&series, 2, 9);
        assert_eq!(restored.finish(2), batch);
    }

    #[test]
    fn checkpoint_rejects_malformed_input_with_typed_errors() {
        let series = test_series(200);
        let mut detector = StreamingEnsembleDetector::new(config(18, 5), 1);
        detector.append(&series);
        detector.run_for(3);
        let bytes = detector.checkpoint_bytes().unwrap();

        let mut foreign = bytes.clone();
        foreign[0] ^= 0xFF;
        assert!(matches!(
            StreamingEnsembleDetector::from_checkpoint_bytes(&foreign),
            Err(CheckpointError::BadMagic)
        ));
        for cut in [0, 8, 12, 16, 60, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                StreamingEnsembleDetector::from_checkpoint_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut flipped = bytes.clone();
        let target = flipped.len() * 2 / 3;
        flipped[target] ^= 0x40;
        assert!(StreamingEnsembleDetector::from_checkpoint_bytes(&flipped).is_err());

        // A checkpoint of some other session type (different leading
        // section tag) is rejected as such, not misparsed.
        let mut alien = Vec::new();
        let mut writer = CheckpointWriter::begin(&mut alien, 1).unwrap();
        writer
            .section(u32::from_le_bytes(*b"MON1"), 1, &[1, 2, 3])
            .unwrap();
        assert!(matches!(
            StreamingEnsembleDetector::from_checkpoint_bytes(&alien),
            Err(CheckpointError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn compact_is_observationally_invisible() {
        let series = test_series(320);
        let cfg = config(16, 7);
        let batch = EnsembleDetector::new(cfg).detect(&series[40..], 2, 13);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 13);
        for (i, part) in series.chunks(64).enumerate() {
            streaming.append(part);
            streaming.run_for(3);
            if i % 2 == 0 {
                streaming.compact();
            }
        }
        streaming.evict(40).unwrap();
        streaming.run_for(2);
        streaming.compact();
        assert_eq!(streaming.finish(2), batch);
    }
}
