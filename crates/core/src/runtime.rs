//! The ensemble execution runtime: PAA deduplication + rayon parallelism.
//!
//! Both [`EnsembleDetector`] and [`MultiWindowEnsemble`] boil down to the
//! same workload — many `(window, w, a)` grammar-induction runs over one
//! series. Two structural redundancies make the naive loop wasteful:
//!
//! 1. **PAA streams are alphabet-independent.** Members that share
//!    `(window, w)` and differ only in `a` produce identical PAA
//!    coefficient streams; with the paper's `wmax = amax = 10` parameter
//!    space, an `N = 50` ensemble has ~9 distinct `w` values for 50
//!    members, so ~80% of PAA work is duplicated. The runtime computes
//!    one [`PaaStream`] per distinct `(window, w)` and shares it.
//! 2. **Members are independent.** Every stage (streams, then member
//!    discretize→Sequitur→density runs) is executed with rayon-style
//!    `par_iter().map().collect()`, which preserves input order, so
//!    parallel and serial execution produce bit-identical results.
//!
//! [`EnsembleDetector`]: crate::ensemble::EnsembleDetector
//! [`MultiWindowEnsemble`]: crate::multiwindow::MultiWindowEnsemble

use std::collections::HashMap;

use egi_sax::stream::{discretize_from_stream, PaaStream};
use egi_sax::{FastSax, MultiResBreakpoints, SaxConfig};
use rayon::prelude::*;

use crate::density::RuleDensityCurve;

/// One grammar-induction run: a sliding-window length plus a `(w, a)`
/// discretization choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberJob {
    /// Sliding-window length `n`.
    pub window: usize,
    /// Discretization parameters.
    pub sax: SaxConfig,
}

/// Runs every job against `fast`, returning curves in job order.
///
/// `parallel = false` forces fully serial execution (the results are
/// identical either way; the flag exists for benchmarking and for
/// embedding in already-parallel callers).
pub fn compute_member_curves(
    fast: &FastSax<'_>,
    multi: &MultiResBreakpoints,
    jobs: &[MemberJob],
    parallel: bool,
) -> Vec<RuleDensityCurve> {
    // Stage 1: one PAA stream per distinct (window, w).
    let mut keys: Vec<(usize, usize)> = jobs.iter().map(|j| (j.window, j.sax.w)).collect();
    keys.sort_unstable();
    keys.dedup();
    let streams: Vec<PaaStream> = if parallel {
        keys.par_iter()
            .map(|&(n, w)| PaaStream::new(fast, n, w))
            .collect()
    } else {
        keys.iter()
            .map(|&(n, w)| PaaStream::new(fast, n, w))
            .collect()
    };
    let by_key: HashMap<(usize, usize), &PaaStream> =
        keys.iter().copied().zip(streams.iter()).collect();

    // Stage 2: per-member symbol mapping + grammar induction + density.
    let run = |job: &MemberJob| -> RuleDensityCurve {
        let stream = by_key[&(job.window, job.sax.w)];
        let nr = discretize_from_stream(stream, job.sax, multi);
        RuleDensityCurve::from_tokens(&nr, fast.len())
    };
    if parallel {
        jobs.par_iter().map(run).collect()
    } else {
        jobs.iter().map(run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64 / 11.0).sin() * 2.0 + ((i * 13) % 7) as f64 * 0.3)
            .collect()
    }

    #[test]
    fn parallel_and_serial_curves_agree_exactly() {
        let series = wave(600);
        let fast = FastSax::new(&series);
        let multi = MultiResBreakpoints::new(8);
        let jobs: Vec<MemberJob> = [
            (48usize, 4usize, 4usize),
            (48, 4, 6),
            (48, 6, 4),
            (64, 5, 3),
        ]
        .iter()
        .map(|&(window, w, a)| MemberJob {
            window,
            sax: SaxConfig::new(w, a),
        })
        .collect();
        let par = compute_member_curves(&fast, &multi, &jobs, true);
        let ser = compute_member_curves(&fast, &multi, &jobs, false);
        assert_eq!(par, ser);
        assert_eq!(par.len(), jobs.len());
        assert!(par.iter().all(|c| c.len() == series.len()));
    }

    #[test]
    fn shared_stream_matches_independent_computation() {
        let series = wave(400);
        let fast = FastSax::new(&series);
        let multi = MultiResBreakpoints::new(10);
        // Two members share (window, w); results must equal the
        // non-deduplicated per-member path.
        let jobs = [
            MemberJob {
                window: 32,
                sax: SaxConfig::new(5, 3),
            },
            MemberJob {
                window: 32,
                sax: SaxConfig::new(5, 9),
            },
        ];
        let shared = compute_member_curves(&fast, &multi, &jobs, false);
        for (job, curve) in jobs.iter().zip(&shared) {
            let nr = egi_sax::discretize_series(&fast, job.window, job.sax, &multi);
            let direct = RuleDensityCurve::from_tokens(&nr, series.len());
            assert_eq!(curve, &direct);
        }
    }
}
