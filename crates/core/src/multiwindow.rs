//! Multi-window ensemble: extending Algorithm 1 over the third parameter.
//!
//! The paper's opening motivation is that anomalies of *different lengths*
//! may co-exist, yet its Algorithm 1 still fixes the sliding-window length
//! `n` and randomizes only `(w, a)`. Its own Table 13 shows the method is
//! robust to moderately wrong `n` — which suggests the obvious extension
//! the conclusion leaves open: ensemble over several window lengths too.
//!
//! [`MultiWindowEnsemble`] runs one full Algorithm 1 ensemble per window
//! length, normalizes each ensemble curve to `[0, 1]` (zeros preserved,
//! same rationale as Section 6.1.2), and combines the per-window curves
//! point-wise by median. Candidates are then extracted per window length
//! and merged non-overlappingly by ascending combined-curve score, so the
//! report can contain candidates of different lengths — matching the
//! Figure 9 case study where the two real anomalies have different
//! durations.

use crate::density::RuleDensityCurve;
use crate::detector::{rank_anomalies, AnomalyReport, Candidate};
use crate::ensemble::{EnsembleConfig, EnsembleDetector};
use crate::runtime::{compute_member_curves, MemberJob};
use egi_sax::{FastSax, MultiResBreakpoints};
use egi_tskit::window::intervals_overlap;

/// Configuration of the multi-window extension.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiWindowConfig {
    /// The window lengths to ensemble over (each gets a full Algorithm 1
    /// run). Must be non-empty, each ≥ 2.
    pub windows: Vec<usize>,
    /// Per-window ensemble settings (the `window` field is overridden).
    pub base: EnsembleConfig,
    /// Minimum gap (points) between reported candidates. A deep, long
    /// anomaly forms a wide basin in the combined curve into which several
    /// short windows fit; without a gap the top-k would all describe that
    /// one event. `None` defaults to half the longest window.
    pub suppression_margin: Option<usize>,
}

/// Ensemble-of-ensembles detector over several window lengths.
#[derive(Debug, Clone)]
pub struct MultiWindowEnsemble {
    config: MultiWindowConfig,
}

impl MultiWindowEnsemble {
    /// Creates the detector.
    ///
    /// # Panics
    ///
    /// Panics when `windows` is empty or contains a length < 2.
    pub fn new(config: MultiWindowConfig) -> Self {
        assert!(
            !config.windows.is_empty(),
            "need at least one window length"
        );
        assert!(
            config.windows.iter().all(|&w| w >= 2),
            "window lengths must be ≥ 2"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MultiWindowConfig {
        &self.config
    }

    /// One normalized ensemble curve per window length, in input order.
    ///
    /// All member runs across *all* window lengths are flattened into a
    /// single parallel batch (one shared [`FastSax`], one shared
    /// breakpoint table, PAA streams deduplicated per `(window, w)`), so
    /// the multi-window ensemble parallelizes across window lengths and
    /// members at once instead of processing windows one after another.
    pub fn window_curves(&self, series: &[f64], seed: u64) -> Vec<RuleDensityCurve> {
        let fast = FastSax::new(series);
        let multi = MultiResBreakpoints::new(self.config.base.amax);

        // Per-window detectors and their (decorrelated) member draws.
        let members: Vec<(EnsembleDetector, Vec<egi_sax::SaxConfig>)> = self
            .config
            .windows
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let det = EnsembleDetector::new(EnsembleConfig {
                    window: w,
                    ..self.config.base
                });
                // Decorrelate member draws across window lengths.
                let params = det.member_params(seed ^ ((i as u64 + 1) << 48));
                (det, params)
            })
            .collect();

        // One flattened batch of member jobs over every window length.
        let jobs: Vec<MemberJob> = members
            .iter()
            .flat_map(|(det, params)| {
                let window = det.config().window;
                params.iter().map(move |&sax| MemberJob { window, sax })
            })
            .collect();
        let mut curves =
            compute_member_curves(&fast, &multi, &jobs, self.config.base.parallel).into_iter();

        members
            .iter()
            .map(|(det, params)| {
                let member_curves: Vec<RuleDensityCurve> =
                    curves.by_ref().take(params.len()).collect();
                let mut curve = det.combine_curves(member_curves);
                // Level the series edges before normalizing: boundary
                // points are covered by fewer windows and would otherwise
                // masquerade as anomalies in the global ranking.
                curve.correct_edge_coverage(det.config().window);
                curve.normalize_by_max();
                curve
            })
            .collect()
    }

    /// The combined (point-wise median) curve across window lengths.
    pub fn combined_curve(&self, series: &[f64], seed: u64) -> RuleDensityCurve {
        let curves = self.window_curves(series, seed);
        let len = curves[0].len();
        let mut column = vec![0.0f64; curves.len()];
        let mut values = Vec::with_capacity(len);
        for t in 0..len {
            for (slot, c) in column.iter_mut().zip(&curves) {
                *slot = c.values[t];
            }
            let mid = column.len() / 2;
            column.select_nth_unstable_by(mid, |x, y| {
                x.partial_cmp(y).expect("curve values are finite")
            });
            let hi = column[mid];
            values.push(if column.len() % 2 == 1 {
                hi
            } else {
                let lo = column[..mid]
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                0.5 * (lo + hi)
            });
        }
        RuleDensityCurve { values }
    }

    /// Detection with *variable-length* candidates: for each window
    /// length, candidate windows are scored on the combined curve; all
    /// candidates are merged by ascending score under a global
    /// non-overlap constraint, so a short and a long anomaly can both be
    /// reported.
    ///
    /// # Panics
    ///
    /// Panics if `series` contains non-finite values.
    pub fn detect(&self, series: &[f64], k: usize, seed: u64) -> AnomalyReport {
        assert!(
            series.iter().all(|v| v.is_finite()),
            "series contains non-finite values"
        );
        let combined = self.combined_curve(series, seed);
        // Generous per-window candidate pool, merged globally below.
        let mut pool: Vec<Candidate> = Vec::new();
        for &w in &self.config.windows {
            pool.extend(rank_anomalies(&combined.values, w, k.saturating_mul(2)));
        }
        pool.sort_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .expect("scores are finite")
                .then(a.start.cmp(&b.start))
                .then(a.len.cmp(&b.len))
        });
        let margin = self
            .config
            .suppression_margin
            .unwrap_or_else(|| self.config.windows.iter().copied().max().unwrap_or(2) / 2);
        let mut picked: Vec<Candidate> = Vec::with_capacity(k);
        for c in pool {
            if picked.len() == k {
                break;
            }
            // Conflict = overlapping after inflating by the margin: the
            // gap between two reported events must exceed `margin`.
            let conflicts = |p: &Candidate| {
                intervals_overlap(p.start, p.len + margin, c.start, c.len + margin)
                    || intervals_overlap(
                        p.start.saturating_sub(margin),
                        p.len + margin,
                        c.start,
                        c.len,
                    )
            };
            if !picked.iter().any(conflicts) {
                picked.push(c);
            }
        }
        AnomalyReport {
            anomalies: picked,
            curve: combined.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::EnsembleConfig;
    use egi_tskit::gen::ecg::{ecg_beat, EcgParams};

    /// Beat train with a short anomaly (one odd beat) and a long anomaly
    /// (three consecutive odd beats) — different lengths by construction.
    fn two_length_series(beat_len: usize) -> (Vec<f64>, (usize, usize), (usize, usize)) {
        let normal = ecg_beat(beat_len, &EcgParams::default());
        let weird = ecg_beat(beat_len, &EcgParams::ectopic());
        let mut series = Vec::new();
        let mut short = (0, beat_len);
        let mut long = (0, 3 * beat_len);
        for b in 0..40 {
            if b == 10 {
                short.0 = series.len();
                series.extend_from_slice(&weird);
            } else if b == 25 {
                long.0 = series.len();
                for _ in 0..3 {
                    series.extend_from_slice(&weird);
                }
            } else {
                series.extend_from_slice(&normal);
            }
        }
        (series, short, long)
    }

    fn config(windows: Vec<usize>) -> MultiWindowConfig {
        MultiWindowConfig {
            windows,
            base: EnsembleConfig {
                ensemble_size: 12,
                ..EnsembleConfig::default()
            },
            suppression_margin: None,
        }
    }

    #[test]
    fn finds_anomalies_of_both_lengths() {
        let beat = 80;
        let (series, short, long) = two_length_series(beat);
        let det = MultiWindowEnsemble::new(config(vec![beat, 3 * beat]));
        let report = det.detect(&series, 2, 3);
        assert_eq!(report.anomalies.len(), 2);
        let hit = |gt: (usize, usize)| {
            report
                .anomalies
                .iter()
                .any(|c| intervals_overlap(c.start, c.len, gt.0, gt.1))
        };
        assert!(hit(short), "short anomaly missed: {:?}", report.anomalies);
        assert!(hit(long), "long anomaly missed: {:?}", report.anomalies);
    }

    #[test]
    fn candidates_never_overlap_across_lengths() {
        let (series, _, _) = two_length_series(60);
        let det = MultiWindowEnsemble::new(config(vec![60, 120, 180]));
        let report = det.detect(&series, 4, 1);
        for i in 0..report.anomalies.len() {
            for j in i + 1..report.anomalies.len() {
                let (a, b) = (&report.anomalies[i], &report.anomalies[j]);
                assert!(!intervals_overlap(a.start, a.len, b.start, b.len));
            }
        }
    }

    #[test]
    fn combined_curve_is_normalized() {
        let (series, _, _) = two_length_series(60);
        let det = MultiWindowEnsemble::new(config(vec![60, 120]));
        let curve = det.combined_curve(&series, 1);
        assert_eq!(curve.len(), series.len());
        assert!(curve.values.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn single_window_degenerates_to_plain_ensemble_ranking() {
        let (series, _, _) = two_length_series(60);
        let det = MultiWindowEnsemble::new(config(vec![60]));
        let report = det.detect(&series, 2, 7);
        assert!(report.anomalies.iter().all(|c| c.len == 60));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn empty_windows_panics() {
        MultiWindowEnsemble::new(MultiWindowConfig {
            windows: vec![],
            base: EnsembleConfig::default(),
            suppression_margin: None,
        });
    }
}
