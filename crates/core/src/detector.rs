//! Anomaly candidate extraction from a density curve.
//!
//! The paper locates anomalies at minima of the (ensemble) rule density
//! curve and requires the reported top-k candidates to be mutually
//! non-overlapping (Section 7.1.2). We score each length-`n` window by its
//! *mean* density — integrating the curve over the window is the natural
//! windowed reading of "find the minima and rank by density value" and is
//! robust to single-point dips; ties break toward the earlier window.

use egi_tskit::stats::PrefixStats;
use egi_tskit::window::{intervals_overlap, window_count};

/// One ranked anomaly candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Window start in the series.
    pub start: usize,
    /// Window length (the sliding-window length `n`).
    pub len: usize,
    /// Mean rule density over the window — lower is more anomalous.
    pub score: f64,
}

/// Result of a detection run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyReport {
    /// Top-k candidates, most anomalous first, mutually non-overlapping.
    pub anomalies: Vec<Candidate>,
    /// The density curve the candidates were extracted from (raw counts
    /// for single runs, normalized medians for the ensemble).
    pub curve: Vec<f64>,
}

impl AnomalyReport {
    /// An empty report with the given curve (used for degenerate inputs).
    pub fn empty(curve: Vec<f64>) -> Self {
        Self {
            anomalies: Vec::new(),
            curve,
        }
    }

    /// Start position of the best candidate, if any.
    pub fn top_location(&self) -> Option<usize> {
        self.anomalies.first().map(|c| c.start)
    }
}

/// Extracts up to `k` non-overlapping windows of length `n` with the
/// lowest mean density from `curve`.
///
/// Greedy by ascending score: the best window is taken, every window
/// overlapping it is discarded, and so on — `O(N log N)`.
pub fn rank_anomalies(curve: &[f64], n: usize, k: usize) -> Vec<Candidate> {
    let count = window_count(curve.len(), n);
    if count == 0 || k == 0 {
        return Vec::new();
    }
    let ps = PrefixStats::new(curve);
    let mut order: Vec<usize> = (0..count).collect();
    // Cache scores; sort ascending with index tiebreak for determinism.
    let scores: Vec<f64> = (0..count)
        .map(|s| ps.range_sum(s, s + n) / n as f64)
        .collect();
    order.sort_by(|&x, &y| {
        scores[x]
            .partial_cmp(&scores[y])
            .expect("density scores are finite")
            .then(x.cmp(&y))
    });

    let mut picked: Vec<Candidate> = Vec::with_capacity(k);
    for s in order {
        if picked.len() == k {
            break;
        }
        if picked
            .iter()
            .all(|c| !intervals_overlap(c.start, c.len, s, n))
        {
            picked.push(Candidate {
                start: s,
                len: n,
                score: scores[s],
            });
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_single_dip() {
        // Density 5 everywhere except a dip of 0 at [10, 15).
        let mut curve = vec![5.0; 40];
        for v in curve[10..15].iter_mut() {
            *v = 0.0;
        }
        let got = rank_anomalies(&curve, 5, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].start, 10);
        assert_eq!(got[0].score, 0.0);
    }

    #[test]
    fn candidates_do_not_overlap() {
        let mut curve = vec![5.0; 100];
        for v in curve[20..30].iter_mut() {
            *v = 0.0;
        }
        for v in curve[60..70].iter_mut() {
            *v = 1.0;
        }
        let got = rank_anomalies(&curve, 10, 3);
        assert_eq!(got.len(), 3);
        for i in 0..got.len() {
            for j in i + 1..got.len() {
                assert!(
                    !intervals_overlap(got[i].start, got[i].len, got[j].start, got[j].len),
                    "{:?} overlaps {:?}",
                    got[i],
                    got[j]
                );
            }
        }
        // Deepest dip first.
        assert_eq!(got[0].start, 20);
        assert_eq!(got[1].start, 60);
    }

    #[test]
    fn scores_are_nondecreasing() {
        let curve: Vec<f64> = (0..50).map(|i| ((i * 7) % 13) as f64).collect();
        let got = rank_anomalies(&curve, 8, 4);
        for pair in got.windows(2) {
            assert!(pair[0].score <= pair[1].score);
        }
    }

    #[test]
    fn k_larger_than_possible_returns_fewer() {
        let curve = vec![1.0; 10];
        // Only ⌊10/4⌋ = 2 non-overlapping windows of length 4 fit greedily.
        let got = rank_anomalies(&curve, 4, 10);
        assert!(got.len() <= 3);
        assert!(!got.is_empty());
    }

    #[test]
    fn window_longer_than_curve_gives_nothing() {
        let curve = vec![1.0; 5];
        assert!(rank_anomalies(&curve, 6, 2).is_empty());
        assert!(rank_anomalies(&curve, 0, 2).is_empty());
        assert!(rank_anomalies(&[], 3, 2).is_empty());
    }

    #[test]
    fn tie_breaks_toward_earlier_window() {
        let curve = vec![2.0; 30];
        let got = rank_anomalies(&curve, 5, 1);
        assert_eq!(got[0].start, 0);
    }

    #[test]
    fn report_helpers() {
        let r = AnomalyReport::empty(vec![0.0; 3]);
        assert!(r.top_location().is_none());
        let r = AnomalyReport {
            anomalies: vec![Candidate {
                start: 7,
                len: 3,
                score: 0.1,
            }],
            curve: vec![],
        };
        assert_eq!(r.top_location(), Some(7));
    }
}
