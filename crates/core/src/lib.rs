//! # egi-core — grammar-induction anomaly detection
//!
//! The paper's contribution, layered on the substrates:
//!
//! * [`intern`] — SAX-word interning into the `u32` tokens Sequitur eats.
//! * [`density`] — the **rule density curve** (Section 5.2): a meta time
//!   series counting, for every point of the input, how many grammar-rule
//!   occurrences cover it. Anomalies are its minima.
//! * [`detector`] — candidate extraction: lowest-mean-density,
//!   non-overlapping top-k windows.
//! * [`single`] — the single-run GrammarViz-style detector
//!   (discretize → Sequitur → density → rank), the engine behind the
//!   GI-Fix / GI-Random / GI-Select baselines.
//! * [`ensemble`] — **Algorithm 1**: N randomized `(w, a)` runs, standard
//!   deviation filtering (keep top τ·N curves), max-normalization, and
//!   point-wise median combination.
//! * [`runtime`] — the ensemble execution runtime: PAA-stream
//!   deduplication across members plus rayon-style parallelism with
//!   order-preserving (bit-deterministic) collection.
//! * [`streaming`] — **online ensemble grammar induction**:
//!   [`StreamingEnsembleDetector`] appends live traffic, refreshes
//!   members under wall-clock [`Deadline`](egi_tskit::Deadline)
//!   budgets, and finishes bit-identical to batch
//!   [`EnsembleDetector::detect`].
//! * [`select`] — the GI-Select parameter-search baseline (Section 7.1.3).
//! * [`multiwindow`] — an extension beyond the paper: ensemble over
//!   several sliding-window lengths, reporting variable-length anomalies.
//!
//! # Examples
//!
//! Run the paper's ensemble detector on a sine train with one
//! corrupted beat (sizes kept small so this doubles as a doctest):
//!
//! ```
//! use egi_core::{EnsembleConfig, EnsembleDetector};
//!
//! let mut series: Vec<f64> = (0..600).map(|i| (i as f64 * 0.2).sin()).collect();
//! for (k, v) in series[400..430].iter_mut().enumerate() {
//!     *v = 1.5 + (k as f64 * 1.3).cos(); // anomalous shape
//! }
//! let detector = EnsembleDetector::new(EnsembleConfig {
//!     window: 40,
//!     ensemble_size: 12,
//!     ..EnsembleConfig::default()
//! });
//! let report = detector.detect(&series, 1, /* seed */ 7);
//! let top = &report.anomalies[0];
//! assert!(top.start >= 360 && top.start <= 440, "found {}", top.start);
//! // Same seed, same report — the runtime is bit-deterministic.
//! assert_eq!(report, detector.detect(&series, 1, 7));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod density;
pub mod detector;
pub mod ensemble;
pub mod intern;
pub mod multiwindow;
pub mod runtime;
pub mod select;
pub mod session;
pub mod single;
pub mod streaming;

pub use density::RuleDensityCurve;
pub use detector::{rank_anomalies, AnomalyReport, Candidate};
pub use ensemble::{Combiner, EnsembleConfig, EnsembleDetector, MemberDiagnostics};
pub use intern::{intern_tokens, OnlineInterner};
pub use multiwindow::{MultiWindowConfig, MultiWindowEnsemble};
pub use select::select_parameters;
pub use single::{GiConfig, SingleGiDetector};
pub use streaming::StreamingEnsembleDetector;

/// The shared eviction error of both streaming subsystems, re-exported
/// from [`egi_tskit::evict`] for callers of
/// [`StreamingEnsembleDetector::evict`] /
/// [`StreamingEnsembleDetector::retain_last`].
pub use egi_tskit::EvictError;
