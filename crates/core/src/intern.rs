//! SAX-word interning.
//!
//! Sequitur operates on integer tokens; the discretizer produces
//! [`SaxWord`]s. Interning assigns consecutive `u32` ids in first-seen
//! order, which keeps the mapping deterministic for a given input (the
//! evaluation harness relies on run-to-run reproducibility).

use std::collections::HashMap;

use egi_sax::{NumerosityReduced, SaxWord};

/// Interns the words of a numerosity-reduced token sequence.
///
/// Returns one token id per retained token, in order. Identical words get
/// identical ids; ids are dense starting at 0.
pub fn intern_tokens(nr: &NumerosityReduced) -> Vec<u32> {
    let mut table: HashMap<&SaxWord, u32> = HashMap::with_capacity(nr.len());
    let mut out = Vec::with_capacity(nr.len());
    for token in &nr.tokens {
        let next_id = table.len() as u32;
        let id = *table.entry(&token.word).or_insert(next_id);
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_sax::{numerosity_reduce, SaxWord};

    fn nr_from(words: &[&[u8]]) -> NumerosityReduced {
        numerosity_reduce(words.iter().map(|w| SaxWord(w.to_vec())).collect(), 4)
    }

    #[test]
    fn dense_first_seen_ids() {
        let nr = nr_from(&[b"ab", b"cd", b"ab", b"ee", b"cd"]);
        assert_eq!(intern_tokens(&nr), vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn empty_input() {
        let nr = nr_from(&[]);
        assert!(intern_tokens(&nr).is_empty());
    }

    #[test]
    fn single_word() {
        // Numerosity reduction collapses the run first.
        let nr = nr_from(&[b"xy", b"xy", b"xy"]);
        assert_eq!(intern_tokens(&nr), vec![0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let nr = nr_from(&[b"aa", b"bb", b"aa", b"cc"]);
        assert_eq!(intern_tokens(&nr), intern_tokens(&nr));
    }
}
