//! SAX-word interning.
//!
//! Sequitur operates on integer tokens; the discretizer produces
//! [`SaxWord`]s. Interning assigns consecutive `u32` ids in first-seen
//! order, which keeps the mapping deterministic for a given input (the
//! evaluation harness relies on run-to-run reproducibility).

use std::collections::HashMap;

use egi_sax::{NumerosityReduced, SaxWord};

/// Interns the words of a numerosity-reduced token sequence.
///
/// Returns one token id per retained token, in order. Identical words get
/// identical ids; ids are dense starting at 0.
pub fn intern_tokens(nr: &NumerosityReduced) -> Vec<u32> {
    let mut table: HashMap<&SaxWord, u32> = HashMap::with_capacity(nr.len());
    let mut out = Vec::with_capacity(nr.len());
    for token in &nr.tokens {
        let next_id = table.len() as u32;
        let id = *table.entry(&token.word).or_insert(next_id);
        out.push(id);
    }
    out
}

/// An interning table that assigns ids one word at a time — the online
/// counterpart of [`intern_tokens`] for the streaming detector.
///
/// Ids are dense `u32`s in first-seen order, so feeding the words of a
/// token sequence through [`OnlineInterner::intern`] in order yields
/// exactly the ids [`intern_tokens`] assigns to the whole sequence at
/// once, for every append schedule.
#[derive(Debug, Clone, Default)]
pub struct OnlineInterner {
    table: HashMap<SaxWord, u32>,
}

impl OnlineInterner {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `word`, assigning the next dense id on first sight
    /// (the word is cloned into the table only in that case).
    pub fn intern(&mut self, word: &SaxWord) -> u32 {
        if let Some(&id) = self.table.get(word) {
            return id;
        }
        let id = self.table.len() as u32;
        self.table.insert(word.clone(), id);
        id
    }

    /// Forgets every assignment, reusing the table allocation — the
    /// eviction-replay reset of the streaming detector. Ids are
    /// first-seen-order, so a replay over a token suffix must restart
    /// the numbering to land on the ids a fresh batch run would assign.
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Number of distinct words seen.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` before any word has been interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl serde::Serialize for OnlineInterner {
    fn to_value(&self) -> serde::Value {
        // Emit (word, id) pairs sorted by id so checkpoints are
        // byte-deterministic; the table itself is order-insensitive.
        let mut pairs: Vec<(&SaxWord, u32)> = self.table.iter().map(|(w, &id)| (w, id)).collect();
        pairs.sort_unstable_by_key(|&(_, id)| id);
        pairs.to_value()
    }
}

impl serde::Deserialize for OnlineInterner {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeserializeError> {
        let pairs: Vec<(SaxWord, u32)> = serde::Deserialize::from_value(value)?;
        // Ids are dense and first-seen-ordered by construction; a table
        // violating that would desynchronize a restored replay.
        let mut table = HashMap::with_capacity(pairs.len());
        for (i, (word, id)) in pairs.into_iter().enumerate() {
            if id as usize != i {
                return Err(serde::DeserializeError(format!(
                    "interner ids not dense: expected {i}, found {id}"
                )));
            }
            if table.insert(word, id).is_some() {
                return Err(serde::DeserializeError("duplicate interned word".into()));
            }
        }
        Ok(OnlineInterner { table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_sax::{numerosity_reduce, SaxWord};

    fn nr_from(words: &[&[u8]]) -> NumerosityReduced {
        numerosity_reduce(words.iter().map(|w| SaxWord(w.to_vec())).collect(), 4)
    }

    #[test]
    fn dense_first_seen_ids() {
        let nr = nr_from(&[b"ab", b"cd", b"ab", b"ee", b"cd"]);
        assert_eq!(intern_tokens(&nr), vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn empty_input() {
        let nr = nr_from(&[]);
        assert!(intern_tokens(&nr).is_empty());
    }

    #[test]
    fn single_word() {
        // Numerosity reduction collapses the run first.
        let nr = nr_from(&[b"xy", b"xy", b"xy"]);
        assert_eq!(intern_tokens(&nr), vec![0]);
    }

    #[test]
    fn deterministic_across_calls() {
        let nr = nr_from(&[b"aa", b"bb", b"aa", b"cc"]);
        assert_eq!(intern_tokens(&nr), intern_tokens(&nr));
    }

    #[test]
    fn serde_round_trip_preserves_assignments() {
        use serde::{Deserialize, Serialize};
        let nr = nr_from(&[b"ab", b"cd", b"ab", b"ee", b"cd"]);
        let mut original = OnlineInterner::new();
        for t in &nr.tokens {
            original.intern(&t.word);
        }
        let mut restored = OnlineInterner::from_value(&original.to_value()).unwrap();
        assert_eq!(restored.len(), original.len());
        // Existing words keep their ids; new words continue the dense
        // numbering exactly where the original would.
        assert_eq!(restored.intern(&SaxWord(b"cd".to_vec())), 1);
        assert_eq!(
            restored.intern(&SaxWord(b"zz".to_vec())),
            original.len() as u32
        );

        // Non-dense ids and duplicate words are rejected.
        let sparse = vec![(SaxWord(b"a".to_vec()), 0u32), (SaxWord(b"b".to_vec()), 2)];
        assert!(OnlineInterner::from_value(&sparse.to_value()).is_err());
        let dup = vec![(SaxWord(b"a".to_vec()), 0u32), (SaxWord(b"a".to_vec()), 1)];
        assert!(OnlineInterner::from_value(&dup.to_value()).is_err());
    }

    #[test]
    fn online_interner_matches_batch() {
        let nr = nr_from(&[b"ab", b"cd", b"ab", b"ee", b"cd", b"ff", b"ab"]);
        let batch = intern_tokens(&nr);
        let mut online = OnlineInterner::new();
        let incremental: Vec<u32> = nr.tokens.iter().map(|t| online.intern(&t.word)).collect();
        assert_eq!(incremental, batch);
        assert_eq!(online.len(), 4);
        assert!(!online.is_empty());
    }
}
