//! GI-Select: parameter selection on a normal prefix (paper Section 7.1.3).
//!
//! The baseline "Grammar Induction with Selected Parameter Values" picks
//! `(w, a)` via the optimization procedure of GrammarViz 3.0 \[19\], run on
//! 10% of the normal time series. The published procedure searches for the
//! discretization under which the (normal) data is *most compressible* —
//! regular structure should compress well, so a parameter choice that
//! captures the regularity of normal data makes deviations stand out.
//! We implement that criterion directly: grid-search `(w, a)` over the
//! same ranges the ensemble samples from, scoring each pair by the grammar
//! compression ratio on the prefix, and keep the best pair.

use egi_sax::{discretize_series, FastSax, MultiResBreakpoints, SaxConfig};
use egi_sequitur::induce;

use crate::intern::intern_tokens;

/// Selects `(w, a)` for `series` by maximizing grammar compression on the
/// leading `train_fraction` of the series (paper: 10%).
///
/// The search space is `w ∈ [2, min(wmax, window)] × a ∈ [2, amax]`. The
/// training prefix is clamped to at least two windows so every candidate
/// can be evaluated; ties break toward smaller `(w, a)` (coarser, cheaper
/// models), matching the "prefer simpler" reading of \[19\].
pub fn select_parameters(
    series: &[f64],
    window: usize,
    wmax: usize,
    amax: usize,
    train_fraction: f64,
) -> SaxConfig {
    assert!(window >= 2, "window must be at least 2");
    assert!(
        train_fraction > 0.0 && train_fraction <= 1.0,
        "train fraction must be in (0, 1]"
    );
    let min_prefix = (window + 1).min(series.len());
    let prefix_len = ((series.len() as f64 * train_fraction) as usize)
        .max(min_prefix)
        .min(series.len());
    let prefix = &series[..prefix_len];

    let fast = FastSax::new(prefix);
    let multi = MultiResBreakpoints::new(amax.max(2));
    let w_hi = wmax.min(window).max(2);

    let mut best = SaxConfig::new(2, 2);
    let mut best_score = f64::NEG_INFINITY;
    for w in 2..=w_hi {
        for a in 2..=amax.max(2) {
            let cfg = SaxConfig::new(w, a);
            let score = compression_score(&fast, window, cfg, &multi);
            if score > best_score {
                best_score = score;
                best = cfg;
            }
        }
    }
    best
}

/// Compression ratio of the grammar induced from the prefix under `cfg`:
/// `1 − grammar_size / token_count`, in `[−∞, 1)`. Higher means the
/// discretization exposes more regularity. Degenerate discretizations
/// (fewer than 2 tokens after numerosity reduction) score `−∞` so they are
/// never selected.
fn compression_score(
    fast: &FastSax<'_>,
    window: usize,
    cfg: SaxConfig,
    multi: &MultiResBreakpoints,
) -> f64 {
    let nr = discretize_series(fast, window, cfg, multi);
    if nr.len() < 2 {
        return f64::NEG_INFINITY;
    }
    let tokens = intern_tokens(&nr);
    let token_count = tokens.len();
    let grammar = induce(tokens);
    1.0 - grammar.total_size() as f64 / token_count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_tskit::gen::ecg::{ecg_beat, EcgParams};

    fn periodic_series(beats: usize, beat_len: usize) -> Vec<f64> {
        let beat = ecg_beat(beat_len, &EcgParams::default());
        (0..beats).flat_map(|_| beat.iter().copied()).collect()
    }

    #[test]
    fn returns_params_in_range() {
        let series = periodic_series(30, 50);
        let cfg = select_parameters(&series, 50, 10, 10, 0.1);
        assert!((2..=10).contains(&cfg.w));
        assert!((2..=10).contains(&cfg.a));
    }

    #[test]
    fn respects_small_window() {
        let series = periodic_series(40, 4);
        let cfg = select_parameters(&series, 4, 10, 10, 0.2);
        assert!(cfg.w <= 4);
    }

    #[test]
    fn deterministic() {
        let series = periodic_series(25, 60);
        let a = select_parameters(&series, 60, 10, 10, 0.1);
        let b = select_parameters(&series, 60, 10, 10, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn periodic_data_scores_better_than_noise() {
        // The selected configuration on periodic data must achieve a
        // positive compression score; on white noise the best score should
        // be much lower. We compare via the internal scorer.
        let periodic = periodic_series(40, 40);
        let noise: Vec<f64> = (0..1600)
            .map(|i| {
                let x = (i as f64 * 12.9898).sin() * 43758.5453;
                x - x.floor() - 0.5
            })
            .collect();
        let multi = MultiResBreakpoints::new(10);
        let cfg = SaxConfig::new(4, 4);
        let fp = FastSax::new(&periodic);
        let fnz = FastSax::new(&noise);
        let sp = compression_score(&fp, 40, cfg, &multi);
        let sn = compression_score(&fnz, 40, cfg, &multi);
        assert!(
            sp > sn,
            "periodic {sp} not more compressible than noise {sn}"
        );
    }

    #[test]
    fn short_series_does_not_panic() {
        let series = periodic_series(3, 20);
        let cfg = select_parameters(&series, 20, 10, 10, 0.1);
        assert!(cfg.w >= 2);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn bad_fraction_panics() {
        select_parameters(&[0.0; 100], 10, 10, 10, 0.0);
    }
}
