//! Single-run grammar-induction detector (the GrammarViz baseline engine).
//!
//! Pipeline per Sections 4–5: sliding-window SAX discretization with one
//! `(w, a)` choice → numerosity reduction → Sequitur → rule density curve →
//! top-k minima. The ensemble of Section 6 runs many of these and combines
//! the curves; the single-run detector is also used directly by the
//! GI-Fix / GI-Random / GI-Select baselines.

use egi_sax::{discretize_series, FastSax, MultiResBreakpoints, SaxConfig};

use crate::density::RuleDensityCurve;
use crate::detector::{rank_anomalies, AnomalyReport};

/// Configuration of a single grammar-induction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiConfig {
    /// Sliding-window length `n`.
    pub window: usize,
    /// Discretization parameters `(w, a)`.
    pub sax: SaxConfig,
}

impl GiConfig {
    /// The paper's "generic" fixed configuration (GI-Fix): `w = 4, a = 4`.
    pub fn fixed(window: usize) -> Self {
        Self {
            window,
            sax: SaxConfig::new(4, 4),
        }
    }
}

/// Single-configuration grammar-induction anomaly detector.
#[derive(Debug, Clone)]
pub struct SingleGiDetector {
    config: GiConfig,
}

impl SingleGiDetector {
    /// Creates a detector for `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.sax.w > config.window` (a PAA size larger than
    /// the window is meaningless).
    pub fn new(config: GiConfig) -> Self {
        assert!(
            config.sax.w <= config.window,
            "PAA size {} exceeds window {}",
            config.sax.w,
            config.window
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> GiConfig {
        self.config
    }

    /// Computes the raw rule density curve for `series`.
    ///
    /// Exposed separately because the ensemble consumes curves, not
    /// reports. Shares the caller's [`FastSax`] and multi-resolution
    /// table, so ensemble members pay only `O(N·w)` each.
    pub fn density_curve(
        &self,
        fast: &FastSax<'_>,
        multi: &MultiResBreakpoints,
    ) -> RuleDensityCurve {
        let nr = discretize_series(fast, self.config.window, self.config.sax, multi);
        RuleDensityCurve::from_tokens(&nr, fast.len())
    }

    /// Full detection: density curve → top-`k` non-overlapping minima.
    ///
    /// # Panics
    ///
    /// Panics if `series` contains non-finite values (NaN/±∞ would poison
    /// the prefix sums silently; failing loudly at the boundary is safer).
    pub fn detect(&self, series: &[f64], k: usize) -> AnomalyReport {
        assert!(
            series.iter().all(|v| v.is_finite()),
            "series contains non-finite values"
        );
        let fast = FastSax::new(series);
        let multi = MultiResBreakpoints::new(self.config.sax.a);
        let curve = self.density_curve(&fast, &multi);
        let anomalies = rank_anomalies(&curve.values, self.config.window, k);
        AnomalyReport {
            anomalies,
            curve: curve.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_tskit::gen::ecg::{ecg_beat, EcgParams};

    /// A repetitive beat train with one ectopic beat in the middle.
    fn beat_train_with_anomaly(
        beats: usize,
        beat_len: usize,
        anomaly_at: usize,
    ) -> (Vec<f64>, usize) {
        let normal = ecg_beat(beat_len, &EcgParams::default());
        let weird = ecg_beat(beat_len, &EcgParams::ectopic());
        let mut series = Vec::with_capacity(beats * beat_len);
        let mut gt = 0;
        for b in 0..beats {
            if b == anomaly_at {
                gt = series.len();
                series.extend_from_slice(&weird);
            } else {
                series.extend_from_slice(&normal);
            }
        }
        (series, gt)
    }

    #[test]
    fn detects_planted_ectopic_beat() {
        let beat_len = 100;
        let (series, gt) = beat_train_with_anomaly(20, beat_len, 11);
        let det = SingleGiDetector::new(GiConfig {
            window: beat_len,
            sax: SaxConfig::new(4, 4),
        });
        let report = det.detect(&series, 1);
        assert_eq!(report.anomalies.len(), 1);
        let found = report.anomalies[0].start;
        assert!(
            (found as i64 - gt as i64).unsigned_abs() as usize <= beat_len,
            "found {found}, ground truth {gt}"
        );
    }

    #[test]
    fn curve_minimum_sits_at_anomaly() {
        let beat_len = 80;
        let (series, gt) = beat_train_with_anomaly(16, beat_len, 8);
        let det = SingleGiDetector::new(GiConfig {
            window: beat_len,
            sax: SaxConfig::new(5, 5),
        });
        let report = det.detect(&series, 1);
        // Mean density inside the ground-truth interval must be below the
        // overall mean (anomaly = low coverage).
        let inside: f64 = report.curve[gt..gt + beat_len].iter().sum::<f64>() / beat_len as f64;
        let overall: f64 = report.curve.iter().sum::<f64>() / report.curve.len() as f64;
        assert!(
            inside < overall,
            "inside density {inside} not below overall {overall}"
        );
    }

    #[test]
    fn short_series_yields_empty_report() {
        let det = SingleGiDetector::new(GiConfig::fixed(50));
        let report = det.detect(&[1.0, 2.0, 3.0], 3);
        assert!(report.anomalies.is_empty());
        assert_eq!(report.curve.len(), 3);
    }

    #[test]
    fn curve_has_series_length() {
        let (series, _) = beat_train_with_anomaly(10, 60, 5);
        let det = SingleGiDetector::new(GiConfig::fixed(60));
        let report = det.detect(&series, 2);
        assert_eq!(report.curve.len(), series.len());
    }

    #[test]
    fn reported_candidates_have_window_length() {
        let (series, _) = beat_train_with_anomaly(12, 64, 6);
        let det = SingleGiDetector::new(GiConfig::fixed(64));
        for c in det.detect(&series, 3).anomalies {
            assert_eq!(c.len, 64);
            assert!(c.start + c.len <= series.len());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds window")]
    fn paa_larger_than_window_panics() {
        SingleGiDetector::new(GiConfig {
            window: 4,
            sax: SaxConfig::new(8, 3),
        });
    }
}
