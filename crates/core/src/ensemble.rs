//! Ensemble grammar induction (paper Section 6, Algorithm 1).
//!
//! Instead of betting on one `(w, a)` discretization, run `N` members with
//! random distinct parameter pairs, score each member's rule density curve
//! by its standard deviation, keep the top `τ·N` curves, normalize each to
//! `[0, 1]` by its maximum, and combine point-wise with the median. Members
//! share the prefix-sum statistics, the merged breakpoint table, *and* the
//! PAA coefficient streams (members differing only in alphabet `a` reuse
//! the same stream), so the whole ensemble stays linear in the series
//! length; members execute through the rayon-style runtime in
//! [`crate::runtime`] since they are fully independent.

use egi_sax::{FastSax, MultiResBreakpoints, SaxConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::density::RuleDensityCurve;
use crate::detector::{rank_anomalies, AnomalyReport};
use crate::runtime::{compute_member_curves, MemberJob};

/// How the kept, normalized curves are merged into one.
///
/// The paper uses the median; mean and min are provided for the ablation
/// benches (DESIGN.md "Design notes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Combiner {
    /// Point-wise median (the paper's choice, robust to outlier members).
    #[default]
    Median,
    /// Point-wise arithmetic mean.
    Mean,
    /// Point-wise minimum (aggressively favors anomaly agreement: one
    /// member voting "uncovered" zeroes the point).
    Min,
    /// Point-wise maximum (conservative: any member covering a point
    /// counts it as covered).
    Max,
}

impl Combiner {
    fn combine(self, column: &mut [f64]) -> f64 {
        debug_assert!(!column.is_empty());
        match self {
            Combiner::Median => {
                let mid = column.len() / 2;
                column
                    .select_nth_unstable_by(mid, |x, y| x.partial_cmp(y).expect("finite density"));
                let hi = column[mid];
                if column.len() % 2 == 1 {
                    hi
                } else {
                    let lo = column[..mid]
                        .iter()
                        .cloned()
                        .fold(f64::NEG_INFINITY, f64::max);
                    0.5 * (lo + hi)
                }
            }
            Combiner::Mean => column.iter().sum::<f64>() / column.len() as f64,
            Combiner::Min => column.iter().cloned().fold(f64::INFINITY, f64::min),
            Combiner::Max => column.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Configuration of the ensemble detector (paper defaults in
/// [`Default`]: `N = 50`, `wmax = amax = 10`, `τ = 40%`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Sliding-window length `n`.
    pub window: usize,
    /// Ensemble size `N`: how many `(w, a)` pairs are drawn.
    pub ensemble_size: usize,
    /// Maximum PAA size; members draw `w ∈ [2, wmax]`.
    pub wmax: usize,
    /// Maximum alphabet size; members draw `a ∈ [2, amax]`.
    pub amax: usize,
    /// Ensemble selectivity `τ ∈ (0, 1]`: fraction of curves kept.
    pub selectivity: f64,
    /// Curve combination operator.
    pub combiner: Combiner,
    /// Run members on a thread pool.
    pub parallel: bool,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            window: 128,
            ensemble_size: 50,
            wmax: 10,
            amax: 10,
            selectivity: 0.4,
            combiner: Combiner::Median,
            parallel: true,
        }
    }
}

/// The ensemble grammar-induction anomaly detector (Algorithm 1).
#[derive(Debug, Clone)]
pub struct EnsembleDetector {
    config: EnsembleConfig,
}

/// Per-member ensemble diagnostics (see [`EnsembleDetector::diagnostics`]).
#[derive(Debug, Clone)]
pub struct MemberDiagnostics {
    /// The drawn `(w, a)` pairs, in member order.
    pub params: Vec<SaxConfig>,
    /// Raw (unnormalized) rule density curves, in member order.
    pub curves: Vec<RuleDensityCurve>,
    /// Standard deviation of each curve (the quality score).
    pub stds: Vec<f64>,
    /// Indices of the members kept by the τ filter, best first.
    pub kept: Vec<usize>,
}

impl EnsembleDetector {
    /// Creates a detector, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty parameter space (`wmax < 2` or `amax < 2`),
    /// `ensemble_size == 0`, a selectivity outside `(0, 1]`, or a window
    /// shorter than 2 points.
    pub fn new(config: EnsembleConfig) -> Self {
        assert!(config.window >= 2, "window must be at least 2");
        assert!(config.ensemble_size > 0, "ensemble size must be positive");
        assert!(
            config.wmax >= 2 && config.amax >= 2,
            "wmax/amax must be ≥ 2"
        );
        assert!(
            config.selectivity > 0.0 && config.selectivity <= 1.0,
            "selectivity must be in (0, 1]"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> EnsembleConfig {
        self.config
    }

    /// Draws the member parameter pairs for `seed`: up to `N` distinct
    /// `(w, a)` with `w ∈ [2, min(wmax, window)]`, `a ∈ [2, amax]`
    /// (Algorithm 1 lines 4–5; "any w, a combination is used only once").
    pub fn member_params(&self, seed: u64) -> Vec<SaxConfig> {
        let w_hi = self.config.wmax.min(self.config.window);
        let mut pairs: Vec<SaxConfig> = (2..=w_hi)
            .flat_map(|w| (2..=self.config.amax).map(move |a| SaxConfig::new(w, a)))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        pairs.shuffle(&mut rng);
        pairs.truncate(self.config.ensemble_size);
        pairs
    }

    /// Computes one rule density curve per member parameter pair.
    ///
    /// Curves come back in `params` order regardless of scheduling, and
    /// parallel execution is bit-identical to serial. Members sharing a
    /// PAA size `w` share one precomputed coefficient stream (see
    /// [`crate::runtime`]).
    pub fn member_curves(&self, series: &[f64], params: &[SaxConfig]) -> Vec<RuleDensityCurve> {
        let fast = FastSax::new(series);
        let multi = MultiResBreakpoints::new(self.config.amax);
        let jobs: Vec<MemberJob> = params
            .iter()
            .map(|&sax| MemberJob {
                window: self.config.window,
                sax,
            })
            .collect();
        compute_member_curves(&fast, &multi, &jobs, self.config.parallel)
    }

    /// Algorithm 1: builds the ensemble rule density curve.
    pub fn ensemble_curve(&self, series: &[f64], seed: u64) -> RuleDensityCurve {
        let params = self.member_params(seed);
        let curves = self.member_curves(series, &params);
        self.combine_curves(curves)
    }

    /// Filtering + normalization + combination (Algorithm 1 lines 7–14),
    /// exposed separately so tests and ablations can inject curves.
    pub fn combine_curves(&self, curves: Vec<RuleDensityCurve>) -> RuleDensityCurve {
        assert!(!curves.is_empty(), "no ensemble members");
        let len = curves[0].len();
        debug_assert!(curves.iter().all(|c| c.len() == len));

        // Rank by standard deviation, descending (line 9); index tiebreak
        // keeps the procedure deterministic.
        let mut order: Vec<usize> = (0..curves.len()).collect();
        let stds: Vec<f64> = curves.iter().map(RuleDensityCurve::stddev).collect();
        order.sort_by(|&x, &y| {
            stds[y]
                .partial_cmp(&stds[x])
                .expect("stddev is finite")
                .then(x.cmp(&y))
        });
        let keep = ((self.config.selectivity * curves.len() as f64).round() as usize)
            .clamp(1, curves.len());

        // Normalize the kept curves (line 11).
        let mut kept: Vec<RuleDensityCurve> =
            order[..keep].iter().map(|&i| curves[i].clone()).collect();
        for c in kept.iter_mut() {
            c.normalize_by_max();
        }

        // Point-wise combination (line 14).
        let mut values = Vec::with_capacity(len);
        let mut column = vec![0.0f64; keep];
        for t in 0..len {
            for (slot, c) in column.iter_mut().zip(&kept) {
                *slot = c.values[t];
            }
            values.push(self.config.combiner.combine(&mut column));
        }
        RuleDensityCurve { values }
    }

    /// Per-member diagnostics: parameters, raw curves, standard
    /// deviations, and which members survived the τ filter — everything
    /// needed to reproduce the paper's Figure 5 (top-2 vs bottom-2 curves
    /// by std ranking).
    pub fn diagnostics(&self, series: &[f64], seed: u64) -> MemberDiagnostics {
        let params = self.member_params(seed);
        let curves = self.member_curves(series, &params);
        let stds: Vec<f64> = curves.iter().map(RuleDensityCurve::stddev).collect();
        let mut order: Vec<usize> = (0..curves.len()).collect();
        order.sort_by(|&x, &y| {
            stds[y]
                .partial_cmp(&stds[x])
                .expect("stddev is finite")
                .then(x.cmp(&y))
        });
        let keep = ((self.config.selectivity * curves.len() as f64).round() as usize)
            .clamp(1, curves.len());
        order.truncate(keep);
        MemberDiagnostics {
            params,
            curves,
            stds,
            kept: order,
        }
    }

    /// Full detection: ensemble curve → top-`k` non-overlapping minima.
    ///
    /// # Panics
    ///
    /// Panics if `series` contains non-finite values (NaN/±∞ would poison
    /// the shared prefix sums silently).
    pub fn detect(&self, series: &[f64], k: usize, seed: u64) -> AnomalyReport {
        assert!(
            series.iter().all(|v| v.is_finite()),
            "series contains non-finite values"
        );
        let curve = self.ensemble_curve(series, seed);
        let anomalies = rank_anomalies(&curve.values, self.config.window, k);
        AnomalyReport {
            anomalies,
            curve: curve.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_tskit::gen::ecg::{ecg_beat, EcgParams};

    fn beat_train(beats: usize, beat_len: usize, anomaly_at: usize) -> (Vec<f64>, usize) {
        let normal = ecg_beat(beat_len, &EcgParams::default());
        let weird = ecg_beat(beat_len, &EcgParams::ectopic());
        let mut series = Vec::new();
        let mut gt = 0;
        for b in 0..beats {
            if b == anomaly_at {
                gt = series.len();
                series.extend_from_slice(&weird);
            } else {
                series.extend_from_slice(&normal);
            }
        }
        (series, gt)
    }

    fn config(window: usize) -> EnsembleConfig {
        EnsembleConfig {
            window,
            ensemble_size: 20,
            ..EnsembleConfig::default()
        }
    }

    #[test]
    fn member_params_are_distinct_and_in_range() {
        let det = EnsembleDetector::new(config(64));
        let params = det.member_params(1);
        assert_eq!(params.len(), 20);
        let mut seen = std::collections::HashSet::new();
        for p in &params {
            assert!((2..=10).contains(&p.w));
            assert!((2..=10).contains(&p.a));
            assert!(seen.insert((p.w, p.a)), "duplicate pair {p}");
        }
    }

    #[test]
    fn member_params_respect_small_window() {
        let det = EnsembleDetector::new(EnsembleConfig {
            window: 4,
            ..config(4)
        });
        for p in det.member_params(3) {
            assert!(p.w <= 4, "w={} exceeds window 4", p.w);
        }
    }

    #[test]
    fn ensemble_size_larger_than_space_uses_all_pairs() {
        let det = EnsembleDetector::new(EnsembleConfig {
            ensemble_size: 500,
            ..config(64)
        });
        // 9 × 9 = 81 pairs available.
        assert_eq!(det.member_params(0).len(), 81);
    }

    #[test]
    fn params_are_deterministic_per_seed() {
        let det = EnsembleDetector::new(config(64));
        assert_eq!(det.member_params(7), det.member_params(7));
        assert_ne!(det.member_params(7), det.member_params(8));
    }

    #[test]
    fn detects_planted_anomaly() {
        let beat_len = 100;
        let (series, gt) = beat_train(20, beat_len, 12);
        let det = EnsembleDetector::new(config(beat_len));
        let report = det.detect(&series, 1, 42);
        let found = report.top_location().expect("one candidate");
        assert!(
            (found as i64 - gt as i64).unsigned_abs() as usize <= beat_len,
            "found {found}, gt {gt}"
        );
    }

    #[test]
    fn parallel_and_sequential_agree_exactly() {
        let (series, _) = beat_train(12, 64, 6);
        let par = EnsembleDetector::new(EnsembleConfig {
            parallel: true,
            ..config(64)
        });
        let seq = EnsembleDetector::new(EnsembleConfig {
            parallel: false,
            ..config(64)
        });
        let a = par.detect(&series, 3, 5);
        let b = seq.detect(&series, 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn combine_keeps_zero_regions_zero_under_median() {
        let det = EnsembleDetector::new(EnsembleConfig {
            selectivity: 1.0,
            ..config(8)
        });
        // Three curves that all vanish at point 2.
        let curves = vec![
            RuleDensityCurve {
                values: vec![2.0, 4.0, 0.0, 2.0],
            },
            RuleDensityCurve {
                values: vec![1.0, 2.0, 0.0, 1.0],
            },
            RuleDensityCurve {
                values: vec![3.0, 3.0, 0.0, 3.0],
            },
        ];
        let combined = det.combine_curves(curves);
        assert_eq!(combined.values[2], 0.0);
        assert!(combined.values[0] > 0.0);
    }

    #[test]
    fn selectivity_drops_low_std_curves() {
        let det = EnsembleDetector::new(EnsembleConfig {
            selectivity: 0.5,
            combiner: Combiner::Mean,
            ..config(8)
        });
        // One informative curve (high std) and one flat curve. τ = 50%
        // keeps only the informative one.
        let curves = vec![
            RuleDensityCurve {
                values: vec![4.0, 4.0, 4.0, 4.0],
            }, // flat
            RuleDensityCurve {
                values: vec![4.0, 0.0, 4.0, 4.0],
            }, // dip
        ];
        let combined = det.combine_curves(curves);
        // The kept curve normalized: [1, 0, 1, 1].
        assert_eq!(combined.values, vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn median_of_even_count_averages_middle_pair() {
        assert_eq!(Combiner::Median.combine(&mut [1.0, 3.0]), 2.0);
        assert_eq!(Combiner::Median.combine(&mut [1.0, 2.0, 4.0, 8.0]), 3.0);
        assert_eq!(Combiner::Median.combine(&mut [5.0, 1.0, 9.0]), 5.0);
    }

    #[test]
    fn mean_min_max_combiners() {
        assert_eq!(Combiner::Mean.combine(&mut [1.0, 2.0, 3.0]), 2.0);
        assert_eq!(Combiner::Min.combine(&mut [3.0, 1.0, 2.0]), 1.0);
        assert_eq!(Combiner::Max.combine(&mut [3.0, 1.0, 2.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn zero_selectivity_rejected() {
        EnsembleDetector::new(EnsembleConfig {
            selectivity: 0.0,
            ..EnsembleConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "no ensemble members")]
    fn combine_empty_panics() {
        let det = EnsembleDetector::new(EnsembleConfig::default());
        det.combine_curves(Vec::new());
    }
}
