//! The rule density curve (paper Section 5.2).
//!
//! Every grammar-rule occurrence covers a span of the token sequence;
//! through the numerosity-reduction offsets each token run maps back to an
//! interval of the original series. The density curve counts, per series
//! point, how many rule occurrences cover it. Subsequences never covered by
//! a rule are incompressible — the anomaly candidates.

use egi_sax::NumerosityReduced;
use egi_sequitur::{Grammar, OccDelta, RuleOccurrence};

/// A rule density curve over a time series.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDensityCurve {
    /// Coverage count (or normalized coverage) per series point.
    pub values: Vec<f64>,
}

impl RuleDensityCurve {
    /// Builds the curve for `series_len` points from a grammar and the
    /// token/offset map that produced it.
    ///
    /// A rule occurrence covering tokens `[s, s+len)` maps to the series
    /// interval from the first covered window's start to the last covered
    /// window's end:
    /// `[offset(s), offset(s + len − 1) + window)` — the GrammarViz
    /// convention. Interval additions use a difference array, so the build
    /// is `O(occurrences + series_len)`.
    pub fn build(grammar: &Grammar, nr: &NumerosityReduced, series_len: usize) -> Self {
        Self::from_occurrences(&grammar.occurrences(), nr, series_len)
    }

    /// Builds the curve directly from an occurrence list — the entry
    /// point for incremental maintenance: the streaming detector feeds
    /// the live engine's [`Sequitur::occurrences`] here after each
    /// batch of pushes, skipping grammar extraction entirely.
    ///
    /// Only the `(start, len)` spans are read (rule ids — dense or
    /// engine — are irrelevant), and the difference-array accumulation
    /// adds exact small integers, so the result is **bit-identical**
    /// for any enumeration order of the same occurrence multiset; in
    /// particular [`build`](Self::build) over an extracted grammar and
    /// this function over the live engine agree exactly.
    ///
    /// [`Sequitur::occurrences`]: egi_sequitur::Sequitur::occurrences
    pub fn from_occurrences(
        occurrences: &[RuleOccurrence],
        nr: &NumerosityReduced,
        series_len: usize,
    ) -> Self {
        let mut diff = vec![0.0f64; series_len + 1];
        for occ in occurrences {
            debug_assert!(occ.len >= 1);
            let first_tok = occ.start;
            let last_tok = occ.start + occ.len - 1;
            if last_tok >= nr.len() {
                debug_assert!(false, "occurrence beyond token sequence");
                continue;
            }
            let lo = nr.tokens[first_tok].offset;
            let hi = (nr.tokens[last_tok].offset + nr.window).min(series_len);
            if lo < hi {
                diff[lo] += 1.0;
                diff[hi] -= 1.0;
            }
        }
        let mut values = Vec::with_capacity(series_len);
        let mut acc = 0.0;
        for d in diff.iter().take(series_len) {
            acc += d;
            values.push(acc);
        }
        Self { values }
    }

    /// Folds one occurrence-span delta from
    /// [`Sequitur::take_deltas`] into the live curve, touching only the
    /// points the span covers — the `O(changed coverage)` incremental
    /// counterpart of a [`from_occurrences`](Self::from_occurrences)
    /// rebuild. Returns the number of points touched (the
    /// "changed coverage" an observability layer can compare against
    /// the series length).
    ///
    /// The span maps to the identical series interval the rebuild uses
    /// (`[offset(start), offset(start + len − 1) + window)`, clamped to
    /// the curve length), and adds the identical exact integer `±1.0`
    /// per point — floating-point addition on exact small integers is
    /// exact and order-independent, so a curve maintained by deltas is
    /// **bit-identical** to one rebuilt from the full occurrence set at
    /// any drain boundary. The curve must already span the current
    /// series length (resize with zeros after appends, before
    /// applying).
    ///
    /// [`Sequitur::take_deltas`]: egi_sequitur::Sequitur::take_deltas
    pub fn apply_delta(&mut self, delta: &OccDelta, nr: &NumerosityReduced) -> usize {
        let series_len = self.values.len();
        debug_assert!(delta.len >= 1);
        let first_tok = delta.start;
        let last_tok = delta.start + delta.len - 1;
        if last_tok >= nr.len() {
            debug_assert!(false, "delta beyond token sequence");
            return 0;
        }
        let lo = nr.tokens[first_tok].offset;
        let hi = (nr.tokens[last_tok].offset + nr.window).min(series_len);
        if lo >= hi {
            return 0;
        }
        let add = if delta.created { 1.0 } else { -1.0 };
        for v in &mut self.values[lo..hi] {
            *v += add;
        }
        hi - lo
    }

    /// Full grammar-induction pipeline from a token sequence: intern →
    /// Sequitur → density build. Returns an all-zero curve for an empty
    /// token sequence (series shorter than the window).
    pub fn from_tokens(nr: &NumerosityReduced, series_len: usize) -> Self {
        if nr.is_empty() {
            return Self {
                values: vec![0.0; series_len],
            };
        }
        let tokens = crate::intern::intern_tokens(nr);
        let grammar = egi_sequitur::induce(tokens);
        Self::build(&grammar, nr, series_len)
    }

    /// Curve length (= series length).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` for an empty curve.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Population standard deviation of the curve — the ensemble's curve
    /// quality score (Algorithm 1, line 7).
    pub fn stddev(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        egi_tskit::stats::stddev_population(&self.values)
    }

    /// Divides by the maximum so values land in `[0, 1]` (Algorithm 1,
    /// line 11). Deliberately *not* min–max normalization: zeros — the
    /// never-covered points — must stay exactly zero (Section 6.1.2).
    /// A flat-zero curve is left untouched.
    pub fn normalize_by_max(&mut self) {
        let max = self.values.iter().cloned().fold(0.0f64, f64::max);
        if max > 0.0 {
            for v in self.values.iter_mut() {
                *v /= max;
            }
        }
    }

    /// Corrects the boundary attenuation of the raw curve.
    ///
    /// A point near the series edge lies inside fewer sliding windows, so
    /// even perfectly regular data shows lower rule density there — an
    /// artifact that competes with real anomalies once candidates are
    /// ranked globally. Dividing each point by the number of windows that
    /// *can* cover it (`min(t+1, n, N−t, N−n+1)`) levels the playing
    /// field. The paper does not apply this (its anomalies are planted at
    /// 40–80% of the series, where the artifact is invisible); the
    /// multi-window extension does.
    pub fn correct_edge_coverage(&mut self, window: usize) {
        let n = self.values.len();
        if window == 0 || n == 0 {
            return;
        }
        let max_windows = n.saturating_sub(window) + 1;
        for (t, v) in self.values.iter_mut().enumerate() {
            let covering = (t + 1).min(window).min(n - t).min(max_windows);
            if covering > 0 {
                *v *= max_windows.min(window) as f64 / covering as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egi_sax::{numerosity_reduce, SaxWord};
    use egi_sequitur::induce;

    /// Builds an NR sequence where token i sits at offset i (no runs).
    fn identity_nr(words: &[u32], window: usize) -> NumerosityReduced {
        numerosity_reduce(
            words
                .iter()
                .map(|&w| SaxWord(vec![w as u8, (w >> 8) as u8]))
                .collect(),
            window,
        )
    }

    #[test]
    fn incompressible_gap_has_zero_density() {
        // Section 3.2 pattern with a wide gap: a repeated motif 0,1,2
        // around four unique tokens 9,8,7,6. The rule occurrences cover
        // [offset(0), offset(2)+2) = [0, 4) and [offset(7), offset(9)+2) =
        // [7, 11); the gap interior [4, 7) is covered by no rule.
        let tokens = [0u32, 1, 2, 9, 8, 7, 6, 0, 1, 2];
        let nr = identity_nr(&tokens, 2);
        let g = induce(tokens.iter().copied());
        let curve = RuleDensityCurve::build(&g, &nr, 11);
        assert_eq!(curve.len(), 11);
        for t in 4..7 {
            assert_eq!(curve.values[t], 0.0, "gap point {t}: {:?}", curve.values);
        }
        assert!(curve.values[0] > 0.0);
        assert!(curve.values[10] > 0.0);
    }

    #[test]
    fn fully_repetitive_sequence_is_fully_covered() {
        let tokens: Vec<u32> = std::iter::repeat_n([0u32, 1], 10).flatten().collect();
        let nr = identity_nr(&tokens, 3);
        let g = induce(tokens.iter().copied());
        let curve = RuleDensityCurve::build(&g, &nr, tokens.len() + 2);
        // Every point inside the covered range has positive density.
        let interior = &curve.values[1..curve.len() - 1];
        assert!(
            interior.iter().all(|&v| v > 0.0),
            "gaps in repetitive coverage: {:?}",
            curve.values
        );
    }

    #[test]
    fn no_rules_means_flat_zero_curve() {
        let tokens = [0u32, 1, 2, 3, 4];
        let nr = identity_nr(&tokens, 2);
        let g = induce(tokens.iter().copied());
        let curve = RuleDensityCurve::build(&g, &nr, 6);
        assert!(curve.values.iter().all(|&v| v == 0.0));
        assert_eq!(curve.stddev(), 0.0);
    }

    #[test]
    fn normalize_by_max_keeps_zeros() {
        let mut curve = RuleDensityCurve {
            values: vec![0.0, 2.0, 4.0, 0.0],
        };
        curve.normalize_by_max();
        assert_eq!(curve.values, vec![0.0, 0.5, 1.0, 0.0]);
    }

    #[test]
    fn normalize_flat_zero_is_noop() {
        let mut curve = RuleDensityCurve {
            values: vec![0.0; 4],
        };
        curve.normalize_by_max();
        assert_eq!(curve.values, vec![0.0; 4]);
    }

    #[test]
    fn offsets_shift_coverage() {
        // Two tokens with a run: ba,ba,ba,dc → NR ba@0, dc@3. Rules: none
        // (no repeats), so zero curve; but with repeats the offsets matter.
        let words = vec![
            SaxWord(vec![9]),
            SaxWord(vec![9]),
            SaxWord(vec![9]),
            SaxWord(vec![7]),
            SaxWord(vec![9]),
            SaxWord(vec![9]),
            SaxWord(vec![7]),
        ];
        let nr = numerosity_reduce(words, 2);
        // NR tokens: 9@0, 7@3, 9@4, 7@6 → interned 0,1,0,1.
        let tokens = crate::intern::intern_tokens(&nr);
        assert_eq!(tokens, vec![0, 1, 0, 1]);
        let g = induce(tokens);
        let curve = RuleDensityCurve::build(&g, &nr, 8);
        // Rule (0,1) occurs at token spans [0,2) → series [0, 3+2=5) and
        // [2,4) → series [4, 6+2=8).
        assert!(curve.values[0] > 0.0);
        assert!(curve.values[7] > 0.0);
    }

    #[test]
    fn stddev_of_varied_curve_positive() {
        let curve = RuleDensityCurve {
            values: vec![0.0, 1.0, 3.0, 1.0, 0.0],
        };
        assert!(curve.stddev() > 0.0);
    }

    #[test]
    fn edge_correction_flattens_uniform_coverage() {
        // A single rule covering every window of a length-10 series with
        // window 3 produces the classic ramp 1,2,3,3,...,3,2,1 (scaled).
        // After correction the curve must be flat.
        let n = 10;
        let window = 3;
        let mut values = vec![0.0; n];
        for (t, v) in values.iter_mut().enumerate() {
            let covering = (t + 1).min(window).min(n - t).min(n - window + 1);
            *v = covering as f64;
        }
        let mut curve = RuleDensityCurve { values };
        curve.correct_edge_coverage(window);
        let first = curve.values[0];
        assert!(
            curve.values.iter().all(|&v| (v - first).abs() < 1e-9),
            "not flat: {:?}",
            curve.values
        );
    }

    #[test]
    fn edge_correction_keeps_zeros_zero() {
        let mut curve = RuleDensityCurve {
            values: vec![0.0, 2.0, 0.0, 2.0, 0.0],
        };
        curve.correct_edge_coverage(2);
        assert_eq!(curve.values[0], 0.0);
        assert_eq!(curve.values[2], 0.0);
        assert_eq!(curve.values[4], 0.0);
    }

    #[test]
    fn edge_correction_degenerate_inputs() {
        let mut empty = RuleDensityCurve { values: vec![] };
        empty.correct_edge_coverage(4);
        assert!(empty.is_empty());
        let mut c = RuleDensityCurve {
            values: vec![1.0, 1.0],
        };
        c.correct_edge_coverage(0);
        assert_eq!(c.values, vec![1.0, 1.0]);
    }

    // ------------------------------------------------------------------
    // Boundary-handling regression tests (PR 4 audit): first/last
    // window, empty numerosity-reduced output, and the short-series
    // regimes of the edge correction.
    // ------------------------------------------------------------------

    #[test]
    fn from_tokens_empty_nr_returns_flat_zero_curve() {
        // A series shorter than the window produces no tokens; the
        // curve must still have one (zero) value per series point so
        // downstream combination never sees a length mismatch.
        let nr = numerosity_reduce(Vec::new(), 6);
        let curve = RuleDensityCurve::from_tokens(&nr, 9);
        assert_eq!(curve.values, vec![0.0; 9]);
        // Degenerate series too: zero points, zero-length curve.
        let curve = RuleDensityCurve::from_tokens(&nr, 0);
        assert!(curve.is_empty());
    }

    #[test]
    fn from_occurrences_with_no_occurrences_is_flat_zero() {
        let nr = identity_nr(&[0, 1, 2], 2);
        let curve = RuleDensityCurve::from_occurrences(&[], &nr, 4);
        assert_eq!(curve.values, vec![0.0; 4]);
    }

    #[test]
    fn build_clamps_last_window_to_series_len() {
        // A trailing occurrence whose last window extends past the end
        // of the series (offset + window > series_len) must be clipped,
        // not written out of bounds or wrapped.
        let nr = identity_nr(&[4, 5, 4, 5], 4); // offsets 0..=3, window 4
        let occ = [egi_sequitur::RuleOccurrence {
            rule: 1,
            start: 2,
            len: 2,
        }];
        // Token 3 sits at offset 3; its window would cover [3, 7) but
        // the series has only 5 points.
        let curve = RuleDensityCurve::from_occurrences(&occ, &nr, 5);
        assert_eq!(curve.values, vec![0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn build_covers_first_window_from_point_zero() {
        let nr = identity_nr(&[7, 8, 7, 8], 3);
        let occ = [egi_sequitur::RuleOccurrence {
            rule: 1,
            start: 0,
            len: 2,
        }];
        // Covers [offset(0), offset(1) + 3) = [0, 4).
        let curve = RuleDensityCurve::from_occurrences(&occ, &nr, 6);
        assert_eq!(curve.values, vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn edge_correction_single_window_series_is_noop() {
        // n == window: exactly one window exists, every point is
        // covered by it, so there is no attenuation to correct.
        let mut curve = RuleDensityCurve {
            values: vec![2.0; 5],
        };
        curve.correct_edge_coverage(5);
        assert_eq!(curve.values, vec![2.0; 5]);
    }

    #[test]
    fn edge_correction_window_longer_than_series_is_noop() {
        // window > n: no sliding window fits, so the curve (all zeros
        // in practice) must pass through unchanged — in particular no
        // division blow-up from the max_windows = 1 clamp.
        let mut curve = RuleDensityCurve {
            values: vec![3.0, 1.0, 2.0],
        };
        curve.correct_edge_coverage(7);
        assert_eq!(curve.values, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn edge_correction_window_one_is_noop() {
        // window == 1: every point lies in exactly one window; the
        // ramp is already flat.
        let mut curve = RuleDensityCurve {
            values: vec![1.0, 4.0, 2.0],
        };
        curve.correct_edge_coverage(1);
        assert_eq!(curve.values, vec![1.0, 4.0, 2.0]);
    }

    #[test]
    fn edge_correction_flattens_short_series_regime() {
        // window ≤ n < 2·window − 1: the interior plateau is capped by
        // max_windows = n − window + 1 rather than by window, the case
        // the `.min(max_windows)` terms exist for. Uniform coverage
        // must still flatten exactly.
        let n = 6;
        let window = 4; // max_windows = 3 < window
        let mut values = vec![0.0; n];
        for (t, v) in values.iter_mut().enumerate() {
            *v = (t + 1).min(window).min(n - t).min(n - window + 1) as f64;
        }
        assert_eq!(values, vec![1.0, 2.0, 3.0, 3.0, 2.0, 1.0]);
        let mut curve = RuleDensityCurve { values };
        curve.correct_edge_coverage(window);
        let first = curve.values[0];
        assert!(
            curve.values.iter().all(|&v| (v - first).abs() < 1e-9),
            "not flat: {:?}",
            curve.values
        );
    }

    // ------------------------------------------------------------------
    // apply_delta: the incremental counterpart of from_occurrences.
    // The cross-layer differential (deltas from a live engine vs
    // rebuilds, under full schedules) lives in
    // tests/density_delta_proptests.rs; these pin the interval mapping
    // edges bit-for-bit.
    // ------------------------------------------------------------------

    #[test]
    fn apply_delta_matches_from_occurrences_per_push() {
        // Drive a delta-tracking engine over an interned token stream;
        // after every push the delta-maintained curve must equal the
        // from-scratch rebuild bit-for-bit.
        let tokens: Vec<u32> = (0..160).map(|i| ((i * 13) % 9) as u32).collect();
        let nr = identity_nr(&tokens, 3);
        let series_len = tokens.len() + 2;
        let ids = crate::intern::intern_tokens(&nr);
        let mut seq = egi_sequitur::Sequitur::new();
        seq.set_delta_tracking(true);
        let mut curve = RuleDensityCurve {
            values: vec![0.0; series_len],
        };
        for (i, &id) in ids.iter().enumerate() {
            seq.push(id);
            for d in seq.take_deltas() {
                curve.apply_delta(&d, &nr);
            }
            let rebuilt = RuleDensityCurve::from_occurrences(&seq.occurrences(), &nr, series_len);
            assert_eq!(curve, rebuilt, "after push {i}");
        }
    }

    #[test]
    fn apply_delta_clamps_last_window_to_series_len() {
        // Mirror of build_clamps_last_window_to_series_len: a span whose
        // last window extends past the series end is clipped.
        let nr = identity_nr(&[4, 5, 4, 5], 4); // offsets 0..=3, window 4
        let delta = egi_sequitur::OccDelta {
            start: 2,
            len: 2,
            created: true,
        };
        let mut curve = RuleDensityCurve {
            values: vec![0.0; 5],
        };
        assert_eq!(curve.apply_delta(&delta, &nr), 3);
        assert_eq!(curve.values, vec![0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn apply_delta_covers_first_window_from_point_zero() {
        let nr = identity_nr(&[7, 8, 7, 8], 3);
        let delta = egi_sequitur::OccDelta {
            start: 0,
            len: 2,
            created: true,
        };
        let mut curve = RuleDensityCurve {
            values: vec![0.0; 6],
        };
        assert_eq!(curve.apply_delta(&delta, &nr), 4);
        assert_eq!(curve.values, vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn apply_delta_destroy_cancels_create_exactly() {
        // A created span later destroyed must restore the previous
        // curve bit-for-bit (exact integer adds commute and cancel).
        let nr = identity_nr(&[1, 2, 1, 2, 3], 2);
        let mut curve = RuleDensityCurve {
            values: vec![0.0, 1.0, 2.0, 1.0, 0.0, 1.0],
        };
        let before = curve.clone();
        let span = |created| egi_sequitur::OccDelta {
            start: 1,
            len: 3,
            created,
        };
        curve.apply_delta(&span(true), &nr);
        assert_ne!(curve, before);
        curve.apply_delta(&span(false), &nr);
        assert_eq!(curve, before);
    }
}
