//! [`StreamSession`] wiring for [`StreamingEnsembleDetector`]: the
//! budgeted driver entry points (thin delegates to the trait's default
//! implementations, kept inherent so no caller needs a trait import)
//! and the trait impl itself, through which generic drivers — e.g. an
//! `egi-serve` fleet — schedule the detector one [`step`] unit at a
//! time.
//!
//! [`step`]: StreamingEnsembleDetector::step

use std::time::Duration;

use egi_tskit::evict::EvictError;
use egi_tskit::session::StreamSession;
use egi_tskit::Deadline;

use crate::density::RuleDensityCurve;
use crate::detector::AnomalyReport;
use crate::streaming::StreamingEnsembleDetector;

impl StreamingEnsembleDetector {
    /// Refreshes up to `n` members; returns how many ran.
    pub fn run_for(&mut self, n: usize) -> usize {
        <Self as StreamSession>::run_for(self, n)
    }

    /// Refreshes members until `deadline` expires or the detector is
    /// current; returns how many units ran. The deadline is checked
    /// **before** each unit, so it is overshot by at most one member
    /// refresh's work, and an already-expired deadline runs zero units.
    pub fn run_until(&mut self, deadline: Deadline) -> usize {
        <Self as StreamSession>::run_until(self, deadline)
    }

    /// Refreshes members for (at most) `budget` of wall-clock time —
    /// the "hard latency budget between appends" entry point.
    pub fn run_for_duration(&mut self, budget: Duration) -> usize {
        <Self as StreamSession>::run_for_duration(self, budget)
    }
}

/// The shared streaming-session contract: every method forwards to the
/// inherent implementation, so driving the detector through the trait
/// (e.g. from an `egi-serve` fleet) is bit-identical to calling it
/// directly. One refresh *unit* is one member refresh.
///
/// The trait's parameterless [`finish`](StreamSession::finish) reports
/// **every** non-overlapping anomaly candidate (the inherent
/// [`finish`](StreamingEnsembleDetector::finish) with
/// `k = window_count()` —
/// [`rank_anomalies`](crate::detector::rank_anomalies) never yields
/// more candidates than windows), so generic drivers lose no
/// information; callers wanting a top-`k` cut keep using the inherent
/// method.
impl StreamSession for StreamingEnsembleDetector {
    type Snapshot = RuleDensityCurve;
    type Report = AnomalyReport;

    fn append(&mut self, points: &[f64]) {
        StreamingEnsembleDetector::append(self, points);
    }

    fn step(&mut self) -> bool {
        StreamingEnsembleDetector::step(self)
    }

    fn evict(&mut self, count: usize) -> Result<(), EvictError> {
        StreamingEnsembleDetector::evict(self, count)
    }

    fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
        StreamingEnsembleDetector::retain_last(self, n)
    }

    fn series_len(&self) -> usize {
        StreamingEnsembleDetector::series_len(self)
    }

    fn pending_units(&self) -> usize {
        self.pending_members()
    }

    fn stream_offset(&self) -> usize {
        StreamingEnsembleDetector::stream_offset(self)
    }

    fn is_current(&self) -> bool {
        StreamingEnsembleDetector::is_current(self)
    }

    fn snapshot(&self) -> RuleDensityCurve {
        StreamingEnsembleDetector::snapshot(self)
    }

    fn finish(&mut self) -> AnomalyReport {
        let k = self.window_count();
        StreamingEnsembleDetector::finish(self, k)
    }
}
