//! Golden-fixture test for the ensemble-detector checkpoint format.
//!
//! `tests/fixtures/ensemble_v2.ckpt` holds committed bytes written
//! when the format was introduced; this proves today's code still
//! loads them and resumes onto the same bit-identical report. A
//! failure means the on-disk format changed without a version bump.
//!
//! Regenerate after an intentional format change with:
//!
//! ```text
//! cargo test -p egi-core --test golden_checkpoints -- --ignored
//! ```

use egi_core::streaming::Checkpoint;
use egi_core::{EnsembleConfig, EnsembleDetector, StreamingEnsembleDetector};
use egi_testkit::PointGen;
use std::path::PathBuf;

const SEED: u64 = 17;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn canonical_config() -> EnsembleConfig {
    EnsembleConfig {
        window: 12,
        ensemble_size: 4,
        parallel: false,
        ..EnsembleConfig::default()
    }
}

/// The canonical mid-stream session: 120 points in uneven chunks,
/// 15 evicted, partial incremental progress.
fn canonical_detector() -> StreamingEnsembleDetector {
    let gen = PointGen::ensemble();
    let mut detector = StreamingEnsembleDetector::new(canonical_config(), SEED);
    detector.append(&gen.slice(0..50));
    detector.run_for(2);
    detector.append(&gen.slice(50..75));
    detector.evict(15).unwrap();
    detector.run_for(3);
    detector.append(&gen.slice(75..120));
    detector
}

#[test]
fn golden_ensemble_checkpoint_still_loads() {
    let gen = PointGen::ensemble();
    let bytes = std::fs::read(fixture_path("ensemble_v2.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let mut restored = StreamingEnsembleDetector::from_checkpoint_bytes(&bytes)
        .expect("golden ensemble checkpoint no longer loads: format broke without a version bump");
    assert_eq!(restored.series_len(), 105);
    assert_eq!(restored.stream_offset(), 15);
    let report = restored.finish(3);
    // Same as the session it was saved from, and transitively the
    // batch report over the surviving suffix 15..120.
    assert_eq!(report, canonical_detector().finish(3));
    let batch = EnsembleDetector::new(canonical_config()).detect(&gen.slice(15..120), 3, SEED);
    assert_eq!(report, batch);
}

/// The writer side is still byte-deterministic: saving the canonical
/// session today reproduces the committed fixture exactly.
#[test]
fn canonical_checkpoint_bytes_are_stable() {
    let committed = std::fs::read(fixture_path("ensemble_v2.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let fresh = canonical_detector().checkpoint_bytes().unwrap();
    assert_eq!(
        fresh, committed,
        "today's encoder no longer reproduces the committed bytes"
    );
}

#[test]
#[ignore = "regenerates the committed fixture; run only after an intentional format change"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let bytes = canonical_detector().checkpoint_bytes().unwrap();
    std::fs::write(fixture_path("ensemble_v2.ckpt"), &bytes).unwrap();
}
