//! Property harness for sliding-window eviction on the streaming
//! ensemble detector (the PR 5 suffix-parity contract).
//!
//! Random interleavings of `append` / `evict` / `step` schedules are
//! driven against a shadow model of the surviving suffix; at every
//! point the detector must report only candidates inside the live
//! window, and `finish()` must land **bit-identical** to a fresh batch
//! [`EnsembleDetector::detect`] over exactly the suffix the shadow
//! model says survived — for every seed, chunk size, eviction schedule,
//! and rayon worker count.

use egi_core::{EnsembleConfig, EnsembleDetector, EvictError, StreamingEnsembleDetector};
use egi_testkit::{choose_evict, PointGen};
use proptest::prelude::*;

/// Deterministic unbounded stream: the value at global position `i`
/// (the shared [`PointGen::ensemble`] wave).
fn point(i: usize) -> f64 {
    PointGen::ensemble().at(i)
}

fn config(window: usize, members: usize, parallel: bool) -> EnsembleConfig {
    EnsembleConfig {
        window,
        ensemble_size: members,
        parallel,
        ..EnsembleConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole acceptance property: for random append/evict/step
    /// interleavings, seeds, member counts, and chunk sizes, the
    /// finished report is bit-identical to batch detect over the
    /// surviving suffix, and no snapshot reports a candidate outside
    /// the live window.
    #[test]
    fn interleaved_append_evict_step_converges_to_suffix_batch(
        window in 8usize..20,
        members in 3usize..8,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec((0usize..10, 1usize..40), 3..12),
    ) {
        let cfg = config(window, members, false);
        let mut streaming = StreamingEnsembleDetector::new(cfg, seed);
        let mut appended = 0usize;
        let mut offset = 0usize;
        for &(kind, amount) in &ops {
            match kind {
                0..=4 => {
                    let chunk: Vec<f64> =
                        (0..amount).map(|j| point(appended + j)).collect();
                    streaming.append(&chunk);
                    appended += amount;
                }
                5..=7 => {
                    let c = choose_evict(streaming.series_len(), window, amount);
                    streaming.evict(c).unwrap();
                    offset += c;
                }
                _ => {
                    streaming.run_for(amount % (members + 1));
                }
            }
            prop_assert_eq!(streaming.stream_offset(), offset);
            prop_assert_eq!(streaming.series_len(), appended - offset);
            // Live answers never escape the live window.
            let snap = streaming.snapshot();
            prop_assert_eq!(snap.len(), streaming.series_len());
            for c in streaming.anomalies(2) {
                prop_assert!(
                    c.start + c.len <= streaming.series_len(),
                    "candidate [{}, {}) outside {} live points",
                    c.start, c.start + c.len, streaming.series_len()
                );
            }
        }
        let suffix: Vec<f64> = (offset..appended).map(point).collect();
        let report = streaming.finish(3);
        prop_assert!(streaming.is_current());
        let batch = EnsembleDetector::new(cfg).detect(&suffix, 3, seed);
        prop_assert_eq!(report, batch);
    }

    /// Invalid evictions are rejected atomically with the shared error
    /// type; valid state is untouched.
    #[test]
    fn invalid_evictions_are_rejected_atomically(
        window in 8usize..24,
        len in 1usize..80,
        over in 1usize..20,
    ) {
        let cfg = config(window, 4, false);
        let mut streaming = StreamingEnsembleDetector::new(cfg, 1);
        let chunk: Vec<f64> = (0..len).map(point).collect();
        streaming.append(&chunk);
        streaming.run_for(2);
        let snap = streaming.snapshot();
        prop_assert_eq!(
            streaming.evict(len + over),
            Err(EvictError::PastEnd { requested: len + over, available: len })
        );
        for remaining in 1..window.min(len + 1) {
            let c = len - remaining;
            if c == 0 {
                continue;
            }
            prop_assert_eq!(
                streaming.evict(c),
                Err(EvictError::BelowMinimum { remaining, minimum: window })
            );
        }
        prop_assert_eq!(streaming.series_len(), len);
        prop_assert_eq!(streaming.stream_offset(), 0);
        prop_assert_eq!(streaming.snapshot(), snap);
    }

    /// The parallel catch-up stays bit-identical to the suffix batch
    /// for every worker count, with an eviction landing mid-stream and
    /// slab compaction sprinkled in.
    #[test]
    fn parallel_finish_after_eviction_matches_suffix_batch(
        window in 8usize..18,
        members in 3usize..8,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..50,
        cut_pct in 0usize..100,
        threads in 2usize..9,
    ) {
        let total = 160usize;
        let series: Vec<f64> = (0..total).map(point).collect();
        let cfg = config(window, members, true);
        let mut streaming = StreamingEnsembleDetector::new(cfg, seed);
        for part in series.chunks(chunk) {
            streaming.append(part);
            streaming.run_for(1);
        }
        streaming.compact();
        let cut = ((total - window) * cut_pct / 100).min(total - window);
        streaming.evict(cut).unwrap();
        streaming.run_for(1);
        streaming.compact();
        let report = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| streaming.finish(2));
        let batch = EnsembleDetector::new(cfg).detect(&series[cut..], 2, seed);
        prop_assert_eq!(report, batch);
    }

    /// A retention policy is just a pre-scheduled eviction: streaming
    /// any series under `retain_last(n)` finishes bit-identical to the
    /// batch report over the last `n` points.
    #[test]
    fn retention_policy_matches_suffix_batch(
        window in 8usize..16,
        extra in 0usize..250,
        chunk in 1usize..60,
        n_mult in 2usize..6,
        seed in 0u64..1_000_000_000,
    ) {
        let n = window * n_mult;
        let total = n + extra;
        let series: Vec<f64> = (0..total).map(point).collect();
        let cfg = config(window, 5, false);
        let mut streaming = StreamingEnsembleDetector::new(cfg, seed);
        streaming.retain_last(n).unwrap();
        for part in series.chunks(chunk) {
            streaming.append(part);
            streaming.run_for(2);
            prop_assert!(streaming.series_len() <= n);
        }
        let survived = total.min(n);
        prop_assert_eq!(streaming.series_len(), survived);
        prop_assert_eq!(streaming.stream_offset(), total - survived);
        let report = streaming.finish(2);
        let batch = EnsembleDetector::new(cfg).detect(&series[total - survived..], 2, seed);
        prop_assert_eq!(report, batch);
    }
}

/// Memory-bound regression: a long run under `retain_last(n)` keeps the
/// live series, the shared PAA coefficient streams, and the Sequitur
/// slabs at `O(n + chunk)` — independent of how many points were
/// streamed — and still finishes on the exact suffix report. The bound
/// is asserted relative to a steady-state sample so it tracks the real
/// allocation footprint instead of a guessed constant.
#[test]
fn memory_stays_bounded_under_retention() {
    let window = 32;
    let members = 5;
    let n = 384;
    let chunk = 128;
    let total = 6_016; // 47 chunks
    let seed = 21;
    let cfg = config(window, members, false);
    let mut streaming = StreamingEnsembleDetector::new(cfg, seed);
    streaming.retain_last(n).unwrap();
    let mut fed = 0usize;
    let mut sample: Option<(usize, usize, usize)> = None;
    while fed < total {
        let part: Vec<f64> = (0..chunk).map(|j| point(fed + j)).collect();
        streaming.append(&part);
        fed += chunk;
        streaming.run_for(usize::MAX);
        assert!(streaming.series_len() <= n);
        let footprint = (
            streaming.series_capacity(),
            streaming.paa_capacity(),
            streaming.slab_len(),
        );
        match sample {
            // Let allocations settle over the first few steady-state
            // cycles, then pin them.
            None if fed >= 5 * chunk => sample = Some(footprint),
            Some((series_cap, paa_cap, slab)) => {
                assert!(
                    footprint.0 <= series_cap * 2,
                    "series capacity grew {} -> {}",
                    series_cap,
                    footprint.0
                );
                assert!(
                    footprint.1 <= paa_cap * 2,
                    "PAA stream capacity grew {} -> {}",
                    paa_cap,
                    footprint.1
                );
                assert!(
                    footprint.2 <= slab * 2 + 64,
                    "Sequitur slabs grew {} -> {}",
                    slab,
                    footprint.2
                );
            }
            None => {}
        }
    }
    assert_eq!(streaming.stream_offset(), total - n);
    let report = streaming.finish(3);
    let suffix: Vec<f64> = ((total - n)..total).map(point).collect();
    let batch = EnsembleDetector::new(cfg).detect(&suffix, 3, seed);
    assert_eq!(report, batch);
}
