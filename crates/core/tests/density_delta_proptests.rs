//! Differential harness for incremental density-delta maintenance
//! (the PR 10 "O(changed coverage) refresh" contract).
//!
//! Two layers of the same claim, proven against retained from-scratch
//! oracles:
//!
//! * **Engine level.** With delta tracking on, folding the
//!   [`OccDelta`]s emitted by every `push` into a span multiset must
//!   reproduce the grammar's transitive occurrence spans *exactly* —
//!   after every single push, across rule creation, reuse,
//!   utility-1 inlining, and mid-stream `clear` rebases.
//!
//! * **Full stack.** For random append/evict/step schedules (the same
//!   testkit schedule space as the eviction and checkpoint harnesses),
//!   every member's delta-maintained curve must be **bit-identical**
//!   to a from-scratch [`RuleDensityCurve::from_occurrences`] rebuild
//!   after every operation
//!   ([`StreamingEnsembleDetector::delta_curves_match_rebuild`]), the
//!   structural-staleness gauge must match the on-demand computation,
//!   and checkpoint round-trips must preserve all of it mid-schedule.
//!
//! [`OccDelta`]: egi_sequitur::OccDelta
//! [`RuleDensityCurve::from_occurrences`]: egi_core::RuleDensityCurve::from_occurrences

use std::collections::HashMap;

use egi_core::streaming::Checkpoint;
use egi_core::{EnsembleConfig, EnsembleDetector, StreamingEnsembleDetector};
use egi_sequitur::Sequitur;
use egi_testkit::{choose_evict, decode_op, PointGen, ScheduleOp, ShadowSuffix};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Engine level: deltas vs. the occurrence oracle
// ---------------------------------------------------------------------------

/// Folds pending deltas into a `(start, len) -> count` span multiset.
fn fold_deltas(counts: &mut HashMap<(usize, usize), i64>, seq: &mut Sequitur) {
    for delta in seq.take_deltas() {
        let slot = counts.entry((delta.start, delta.len)).or_insert(0);
        *slot += if delta.created { 1 } else { -1 };
        if *slot == 0 {
            counts.remove(&(delta.start, delta.len));
        }
    }
}

/// The grammar's transitive occurrence spans as the same multiset.
fn occurrence_spans(seq: &Sequitur) -> HashMap<(usize, usize), i64> {
    let mut counts = HashMap::new();
    for occ in seq.occurrences() {
        *counts.entry((occ.start, occ.len)).or_insert(0) += 1;
    }
    counts
}

/// Pushes `tokens` one at a time, folding deltas and comparing to the
/// occurrence oracle after every push. Returns the engine for reuse.
fn assert_deltas_track(
    seq: &mut Sequitur,
    counts: &mut HashMap<(usize, usize), i64>,
    tokens: &[u32],
) {
    for (i, &t) in tokens.iter().enumerate() {
        seq.push(t);
        fold_deltas(counts, seq);
        assert_eq!(
            counts,
            &occurrence_spans(seq),
            "delta fold diverged from occurrences after push {i} (token {t})"
        );
    }
}

/// Hand-picked adversarial token streams: rule reuse after creation,
/// a substitution that retires a digram mid-rule (nested rules), and
/// utility-1 expansion (rule inlining), each checked push-by-push.
#[test]
fn adversarial_streams_keep_delta_fold_exact() {
    let streams: [&[u32]; 5] = [
        // Rule creation then immediate reuse.
        &[0, 1, 0, 1, 0, 1],
        // Nested rules: [0,1] becomes a rule, then [R,2] becomes one.
        &[0, 1, 2, 0, 1, 2, 0, 1, 2],
        // Utility-1 inlining: the inner rule is consumed by the outer.
        &[0, 1, 0, 1, 2, 0, 1, 0, 1, 2],
        // The paper's Table 2 stream (ab bc aa cc ca ab bc aa).
        &[0, 1, 2, 3, 4, 0, 1, 2],
        // A long constant run: maximal digram churn.
        &[5; 40],
    ];
    for tokens in streams {
        let mut seq = Sequitur::new();
        seq.set_delta_tracking(true);
        let mut counts = HashMap::new();
        assert_deltas_track(&mut seq, &mut counts, tokens);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small-alphabet streams with a mid-stream `clear` rebase:
    /// the delta fold equals the occurrence oracle after every push,
    /// both before and after the clear (which drops pending deltas and
    /// restarts spans from a fresh zero-length stream).
    #[test]
    fn random_streams_with_clear_keep_delta_fold_exact(
        alphabet in 2u32..7,
        tokens in prop::collection::vec(0u32..64, 1..160),
        clear_pct in 0usize..100,
    ) {
        let tokens: Vec<u32> = tokens.iter().map(|t| t % alphabet).collect();
        let cut = tokens.len() * clear_pct / 100;
        let mut seq = Sequitur::new();
        seq.set_delta_tracking(true);
        let mut counts = HashMap::new();
        assert_deltas_track(&mut seq, &mut counts, &tokens[..cut]);
        // Rebase: clear drops the grammar *and* the pending deltas;
        // the fold restarts from the empty multiset.
        seq.clear();
        prop_assert!(seq.take_deltas().is_empty());
        prop_assert!(seq.delta_tracking());
        counts.clear();
        assert_deltas_track(&mut seq, &mut counts, &tokens[cut..]);
    }
}

// ---------------------------------------------------------------------------
// Full stack: delta curves vs. from-scratch rebuilds
// ---------------------------------------------------------------------------

fn config(window: usize, members: usize) -> EnsembleConfig {
    EnsembleConfig {
        window,
        ensemble_size: members,
        parallel: false,
        ..EnsembleConfig::default()
    }
}

/// Applies one decoded schedule step (same semantics as the eviction
/// and checkpoint harnesses: `Run` modulo `members + 1`).
fn drive(
    detector: &mut StreamingEnsembleDetector,
    shadow: &mut ShadowSuffix,
    gen: &PointGen,
    window: usize,
    members: usize,
    op: ScheduleOp,
) {
    match op {
        ScheduleOp::Append(n) => {
            let chunk = shadow.next_chunk(gen, n);
            detector.append(&chunk);
        }
        ScheduleOp::Evict(amount) => {
            let c = choose_evict(detector.series_len(), window, amount);
            detector.evict(c).unwrap();
            shadow.evict(c);
        }
        ScheduleOp::Run(budget) => {
            detector.run_for(budget % (members + 1));
        }
    }
}

/// Checks the per-op invariants: the delta oracle and the telemetry
/// gauge agreeing with the on-demand structural-staleness computation.
fn assert_delta_invariants(detector: &StreamingEnsembleDetector, context: &str) {
    assert!(
        detector.delta_curves_match_rebuild(),
        "delta-maintained curve diverged from from_occurrences rebuild {context}"
    );
    assert_eq!(
        detector.metrics().structural_staleness,
        detector.structural_staleness() as u64,
        "structural-staleness gauge out of sync {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole acceptance property: for random append/evict/step
    /// schedules, every member's delta-maintained curve is
    /// bit-identical to a from-scratch rebuild after **every**
    /// operation, the structural-staleness gauge tracks the on-demand
    /// computation, and the finished report (served entirely from
    /// delta-maintained curves) still lands bit-identical to batch
    /// detect over the surviving suffix.
    #[test]
    fn delta_curves_match_rebuild_after_every_op(
        window in 8usize..16,
        members in 3usize..7,
        seed in 0u64..1_000_000_000,
        raw_ops in prop::collection::vec((0usize..10, 1usize..40), 3..10),
    ) {
        let gen = PointGen::ensemble();
        let cfg = config(window, members);
        let mut detector = StreamingEnsembleDetector::new(cfg, seed);
        let mut shadow = ShadowSuffix::new();
        for (i, &(k, a)) in raw_ops.iter().enumerate() {
            let op = decode_op(k, a);
            drive(&mut detector, &mut shadow, &gen, window, members, op);
            assert_delta_invariants(&detector, &format!("after op {i} ({op:?})"));
        }
        detector.run_for(usize::MAX);
        prop_assert!(detector.is_current());
        prop_assert_eq!(detector.structural_staleness(), 0,
            "current detector still reports unhealed coverage");
        assert_delta_invariants(&detector, "after full catch-up");
        let report = detector.finish(3);
        let batch = EnsembleDetector::new(cfg).detect(&shadow.suffix(&gen), 3, seed);
        prop_assert_eq!(report, batch);
    }

    /// Checkpoint round-trips preserve the delta machinery
    /// mid-schedule: the restored detector satisfies the delta oracle
    /// immediately, derives the same structural staleness from state,
    /// keeps satisfying the oracle through the remaining schedule, and
    /// finishes bit-identical to the uninterrupted run.
    #[test]
    fn checkpoint_round_trip_preserves_delta_state(
        window in 8usize..16,
        members in 3usize..7,
        seed in 0u64..1_000_000_000,
        raw_ops in prop::collection::vec((0usize..10, 1usize..40), 2..8),
        cut_pct in 0usize..100,
    ) {
        let gen = PointGen::ensemble();
        let cfg = config(window, members);
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();
        let cut = ops.len() * cut_pct / 100;

        let mut original = StreamingEnsembleDetector::new(cfg, seed);
        let mut shadow = ShadowSuffix::new();
        for &op in &ops[..cut] {
            drive(&mut original, &mut shadow, &gen, window, members, op);
        }
        let bytes = original.checkpoint_bytes().unwrap();
        let mut restored =
            StreamingEnsembleDetector::from_checkpoint_bytes(&bytes).unwrap();
        assert_delta_invariants(&restored, "right after restore");
        prop_assert_eq!(
            restored.structural_staleness(),
            original.structural_staleness(),
            "restored detector derives different unhealed coverage"
        );
        let mut resumed = shadow;
        for (i, &op) in ops[cut..].iter().enumerate() {
            drive(&mut original, &mut shadow, &gen, window, members, op);
            drive(&mut restored, &mut resumed, &gen, window, members, op);
            assert_delta_invariants(&restored, &format!("after resumed op {i} ({op:?})"));
        }
        prop_assert_eq!(restored.finish(3), original.finish(3));
    }
}

// ---------------------------------------------------------------------------
// Boundary regressions
// ---------------------------------------------------------------------------

/// One-point appends: the smallest possible increment keeps the delta
/// oracle exact at every step, and the fully-drained detector matches
/// batch bit-for-bit.
#[test]
fn one_point_appends_keep_delta_curves_exact() {
    let gen = PointGen::ensemble();
    let cfg = config(8, 4);
    let seed = 11;
    let total = 64;
    let mut detector = StreamingEnsembleDetector::new(cfg, seed);
    for i in 0..total {
        detector.append(&[gen.at(i)]);
        detector.run_for(usize::MAX);
        assert!(detector.is_current());
        assert_delta_invariants(&detector, &format!("after 1-point append {i}"));
        assert_eq!(detector.structural_staleness(), 0);
    }
    let report = detector.finish(3);
    let batch = EnsembleDetector::new(cfg).detect(&gen.slice(0..total), 3, seed);
    assert_eq!(report, batch);
}

/// `window == series_len`: exactly one subsequence exists, the first
/// refresh heals the whole curve from zero tokens' worth of deltas.
#[test]
fn window_equals_series_len_boundary() {
    let gen = PointGen::ensemble();
    let window = 12;
    let cfg = config(window, 4);
    let seed = 7;
    let mut detector = StreamingEnsembleDetector::new(cfg, seed);
    detector.append(&gen.slice(0..window));
    detector.run_for(usize::MAX);
    assert!(detector.is_current());
    assert_delta_invariants(&detector, "at window == series_len");
    assert_eq!(detector.snapshot().len(), window);
    let report = detector.finish(2);
    let batch = EnsembleDetector::new(cfg).detect(&gen.slice(0..window), 2, seed);
    assert_eq!(report, batch);
}

/// Structural staleness is the *coverage* deficit, not the append
/// backlog: an append stales exactly the new tail, an eviction stales
/// the whole carried window (while adding zero points), and healing
/// brings both back to zero.
#[test]
fn structural_staleness_tracks_coverage_not_points() {
    let gen = PointGen::ensemble();
    let cfg = config(8, 4);
    let mut detector = StreamingEnsembleDetector::new(cfg, 3);
    detector.append(&gen.slice(0..40));
    detector.run_for(usize::MAX);
    assert_eq!(detector.structural_staleness(), 0);
    assert_eq!(detector.metrics().structural_staleness, 0);

    // Append: curves are short by exactly the new tail.
    detector.append(&gen.slice(40..50));
    assert_eq!(detector.structural_staleness(), 10);
    assert_eq!(detector.metrics().structural_staleness, 10);
    assert_eq!(detector.metrics().staleness_points, 10);
    detector.run_for(usize::MAX);
    assert_eq!(detector.metrics().structural_staleness, 0);

    // Eviction: zero points appended, yet every member's curve is a
    // shifted carry — the whole window is structurally stale until
    // the replay heals it, while the append-staleness gauge differs.
    detector.evict(20).unwrap();
    assert_eq!(detector.series_len(), 30);
    assert_eq!(detector.structural_staleness(), 30);
    assert_eq!(detector.metrics().structural_staleness, 30);
    assert_delta_invariants(&detector, "mid-carry after eviction");

    // Healing one member leaves the gauge pinned by the slowest one.
    detector.run_for(1);
    assert_eq!(detector.structural_staleness(), 30);
    detector.run_for(usize::MAX);
    assert!(detector.is_current());
    assert_eq!(detector.structural_staleness(), 0);
    assert_delta_invariants(&detector, "after eviction replay healed");
    let report = detector.finish(3);
    let batch = EnsembleDetector::new(cfg).detect(&gen.slice(20..50), 3, 3);
    assert_eq!(report, batch);
}

/// A checkpoint taken mid-replay (one member healed, the rest still
/// carrying) restores the mixed delta-base state and converges to the
/// suffix batch.
#[test]
fn checkpoint_mid_eviction_replay_round_trips() {
    let gen = PointGen::ensemble();
    let cfg = config(10, 5);
    let seed = 19;
    let mut detector = StreamingEnsembleDetector::new(cfg, seed);
    detector.append(&gen.slice(0..70));
    detector.run_for(usize::MAX);
    detector.evict(25).unwrap();
    detector.run_for(2); // heal two members, leave three carrying
    let bytes = detector.checkpoint_bytes().unwrap();
    let mut restored = StreamingEnsembleDetector::from_checkpoint_bytes(&bytes).unwrap();
    assert_delta_invariants(&restored, "restored mid-replay");
    assert_eq!(
        restored.structural_staleness(),
        detector.structural_staleness()
    );
    restored.run_for(usize::MAX);
    assert_delta_invariants(&restored, "after restored replay finished");
    let report = restored.finish(3);
    let batch = EnsembleDetector::new(cfg).detect(&gen.slice(25..70), 3, seed);
    assert_eq!(report, batch);
}
