//! Property-based tests for the detection core.

use egi_core::{rank_anomalies, Combiner, EnsembleConfig, EnsembleDetector, RuleDensityCurve};
use egi_tskit::window::intervals_overlap;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ranked candidates never overlap, have nondecreasing scores, and
    /// each score equals the window's mean density.
    #[test]
    fn rank_anomalies_invariants(
        curve in prop::collection::vec(0.0f64..50.0, 1..300),
        n in 1usize..40,
        k in 1usize..6,
    ) {
        let cands = rank_anomalies(&curve, n, k);
        prop_assert!(cands.len() <= k);
        for (i, c) in cands.iter().enumerate() {
            prop_assert!(c.start + c.len <= curve.len());
            let mean: f64 = curve[c.start..c.start + n].iter().sum::<f64>() / n as f64;
            prop_assert!((c.score - mean).abs() < 1e-9);
            for other in &cands[i + 1..] {
                prop_assert!(!intervals_overlap(c.start, c.len, other.start, other.len));
            }
        }
        for pair in cands.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score + 1e-12);
        }
    }

    /// The top-1 candidate is globally optimal: no window of length n has
    /// a strictly lower mean density.
    #[test]
    fn top_candidate_is_global_minimum(
        curve in prop::collection::vec(0.0f64..10.0, 5..150),
        n in 1usize..20,
    ) {
        prop_assume!(n <= curve.len());
        let cands = rank_anomalies(&curve, n, 1);
        prop_assert_eq!(cands.len(), 1);
        let best = cands[0].score;
        for s in 0..=curve.len() - n {
            let mean: f64 = curve[s..s + n].iter().sum::<f64>() / n as f64;
            prop_assert!(best <= mean + 1e-9, "window {} beats reported best", s);
        }
    }

    /// Median combination is bounded by min and max combinations
    /// point-wise, and all combiners preserve the [0, 1] range of
    /// normalized curves.
    #[test]
    fn combiners_are_bounded(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 20),
            1..9,
        ),
    ) {
        let det = |comb| EnsembleDetector::new(EnsembleConfig {
            window: 4,
            selectivity: 1.0,
            combiner: comb,
            ..EnsembleConfig::default()
        });
        let as_curves = |rows: &Vec<Vec<f64>>|

            rows.iter()
                .map(|r| RuleDensityCurve { values: r.clone() })
                .collect::<Vec<_>>();
        let med = det(Combiner::Median).combine_curves(as_curves(&rows));
        let min = det(Combiner::Min).combine_curves(as_curves(&rows));
        let max = det(Combiner::Max).combine_curves(as_curves(&rows));
        for t in 0..20 {
            prop_assert!(min.values[t] <= med.values[t] + 1e-9);
            prop_assert!(med.values[t] <= max.values[t] + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&med.values[t]));
        }
    }

    /// Selectivity never changes the curve length, and τ = 1.0 keeps all
    /// members (order-invariant median): permuting the input curves gives
    /// the same combined curve.
    #[test]
    fn median_is_permutation_invariant(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 10), 2..7),
        swap_a in 0usize..7,
        swap_b in 0usize..7,
    ) {
        let det = EnsembleDetector::new(EnsembleConfig {
            window: 4,
            selectivity: 1.0,
            ..EnsembleConfig::default()
        });
        let curves: Vec<RuleDensityCurve> = rows
            .iter()
            .map(|r| RuleDensityCurve { values: r.clone() })
            .collect();
        let mut permuted = curves.clone();
        let (a, b) = (swap_a % permuted.len(), swap_b % permuted.len());
        permuted.swap(a, b);
        let c1 = det.combine_curves(curves);
        let c2 = det.combine_curves(permuted);
        for (x, y) in c1.values.iter().zip(&c2.values) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}
