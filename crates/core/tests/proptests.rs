//! Property-based tests for the detection core.

use egi_core::{
    rank_anomalies, Combiner, EnsembleConfig, EnsembleDetector, RuleDensityCurve,
    StreamingEnsembleDetector,
};
use egi_tskit::window::intervals_overlap;
use proptest::prelude::*;

/// Deterministic pseudo-series: smooth enough for SAX structure,
/// parameterized so every case sees different data.
fn pseudo_series(len: usize, phase: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = i as f64;
            (t * 0.13 + phase).sin() * 1.5
                + 0.5 * (t * 0.029 + 2.0 * phase).cos()
                + ((i * 37) % 19) as f64 * 0.04
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ranked candidates never overlap, have nondecreasing scores, and
    /// each score equals the window's mean density.
    #[test]
    fn rank_anomalies_invariants(
        curve in prop::collection::vec(0.0f64..50.0, 1..300),
        n in 1usize..40,
        k in 1usize..6,
    ) {
        let cands = rank_anomalies(&curve, n, k);
        prop_assert!(cands.len() <= k);
        for (i, c) in cands.iter().enumerate() {
            prop_assert!(c.start + c.len <= curve.len());
            let mean: f64 = curve[c.start..c.start + n].iter().sum::<f64>() / n as f64;
            prop_assert!((c.score - mean).abs() < 1e-9);
            for other in &cands[i + 1..] {
                prop_assert!(!intervals_overlap(c.start, c.len, other.start, other.len));
            }
        }
        for pair in cands.windows(2) {
            prop_assert!(pair[0].score <= pair[1].score + 1e-12);
        }
    }

    /// The top-1 candidate is globally optimal: no window of length n has
    /// a strictly lower mean density.
    #[test]
    fn top_candidate_is_global_minimum(
        curve in prop::collection::vec(0.0f64..10.0, 5..150),
        n in 1usize..20,
    ) {
        prop_assume!(n <= curve.len());
        let cands = rank_anomalies(&curve, n, 1);
        prop_assert_eq!(cands.len(), 1);
        let best = cands[0].score;
        for s in 0..=curve.len() - n {
            let mean: f64 = curve[s..s + n].iter().sum::<f64>() / n as f64;
            prop_assert!(best <= mean + 1e-9, "window {} beats reported best", s);
        }
    }

    /// Median combination is bounded by min and max combinations
    /// point-wise, and all combiners preserve the [0, 1] range of
    /// normalized curves.
    #[test]
    fn combiners_are_bounded(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 20),
            1..9,
        ),
    ) {
        let det = |comb| EnsembleDetector::new(EnsembleConfig {
            window: 4,
            selectivity: 1.0,
            combiner: comb,
            ..EnsembleConfig::default()
        });
        let as_curves = |rows: &Vec<Vec<f64>>|

            rows.iter()
                .map(|r| RuleDensityCurve { values: r.clone() })
                .collect::<Vec<_>>();
        let med = det(Combiner::Median).combine_curves(as_curves(&rows));
        let min = det(Combiner::Min).combine_curves(as_curves(&rows));
        let max = det(Combiner::Max).combine_curves(as_curves(&rows));
        for t in 0..20 {
            prop_assert!(min.values[t] <= med.values[t] + 1e-9);
            prop_assert!(med.values[t] <= max.values[t] + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&med.values[t]));
        }
    }

    /// Streaming/batch parity, full pipeline (PR 4):
    /// `StreamingEnsembleDetector::finish` is bit-identical to batch
    /// `EnsembleDetector::detect` — scores, ranked anomaly indices,
    /// tie-breaks, and the ensemble curve — across randomized append
    /// schedules (including 1-point appends), member counts, window
    /// lengths, and seeds.
    #[test]
    fn streaming_finish_is_bit_identical_to_batch_detect(
        len in 80usize..320,
        phase in 0.0f64..6.0,
        cuts in prop::collection::vec(1usize..60, 1..5),
        members in 1usize..14,
        window in 8usize..40,
        seed in 0u64..1000,
        interleave in 0usize..4,
    ) {
        let series = pseudo_series(len, phase);
        let config = EnsembleConfig {
            window,
            ensemble_size: members,
            ..EnsembleConfig::default()
        };
        let batch = EnsembleDetector::new(config).detect(&series, 3, seed);

        let mut streaming = StreamingEnsembleDetector::new(config, seed);
        let mut at = 0;
        let mut i = 0;
        while at < series.len() {
            let c = cuts[i % cuts.len()].min(series.len() - at);
            streaming.append(&series[at..at + c]);
            at += c;
            // Interleave partial refreshes and live reads; neither may
            // perturb the finished result.
            streaming.run_for(i % (interleave + 1));
            if i % 3 == 0 {
                let _ = streaming.anomalies(2);
            }
            i += 1;
        }
        let report = streaming.finish(3);
        prop_assert_eq!(report, batch);
        prop_assert!(streaming.is_current());
    }

    /// Worker-count invariance (PR 4): the parallel catch-up lands on
    /// the same bits as serial for every thread count.
    #[test]
    fn streaming_finish_deterministic_across_worker_counts(
        len in 100usize..260,
        phase in 0.0f64..6.0,
        members in 2usize..10,
        seed in 0u64..100,
        threads in 1usize..5,
    ) {
        let series = pseudo_series(len, phase);
        let config = EnsembleConfig {
            window: 16,
            ensemble_size: members,
            ..EnsembleConfig::default()
        };
        let reference = EnsembleDetector::new(config).detect(&series, 2, seed);
        let mut streaming = StreamingEnsembleDetector::new(config, seed);
        for part in series.chunks(33) {
            streaming.append(part);
        }
        let report = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| streaming.finish(2));
        prop_assert_eq!(report, reference);
    }

    /// Selectivity never changes the curve length, and τ = 1.0 keeps all
    /// members (order-invariant median): permuting the input curves gives
    /// the same combined curve.
    #[test]
    fn median_is_permutation_invariant(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 10), 2..7),
        swap_a in 0usize..7,
        swap_b in 0usize..7,
    ) {
        let det = EnsembleDetector::new(EnsembleConfig {
            window: 4,
            selectivity: 1.0,
            ..EnsembleConfig::default()
        });
        let curves: Vec<RuleDensityCurve> = rows
            .iter()
            .map(|r| RuleDensityCurve { values: r.clone() })
            .collect();
        let mut permuted = curves.clone();
        let (a, b) = (swap_a % permuted.len(), swap_b % permuted.len());
        permuted.swap(a, b);
        let c1 = det.combine_curves(curves);
        let c2 = det.combine_curves(permuted);
        for (x, y) in c1.values.iter().zip(&c2.values) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}
