//! Property harness for checkpoint/restore on the streaming ensemble
//! detector (the PR 8 persistence contract).
//!
//! * **Round-trip at every prefix.** For random append/evict/step
//!   schedules, seeds, and member counts, a checkpoint taken after
//!   every prefix of the schedule, restored, and driven through the
//!   remaining ops must `finish()` **bit-identical** to the
//!   uninterrupted run — which the eviction harness already pins to
//!   batch detect over the surviving suffix.
//!
//! * **Corruption is loud.** Truncation at every section boundary is a
//!   typed [`CheckpointError`]; a bit flip is a typed error or an
//!   observationally-identical session — never a panic, never a
//!   silently-wrong detector.

use egi_core::streaming::{Checkpoint, CheckpointError};
use egi_core::{EnsembleConfig, StreamingEnsembleDetector};
use egi_testkit::{choose_evict, decode_op, PointGen, ScheduleOp, ShadowSuffix};
use egi_tskit::checkpoint::list_sections;
use proptest::prelude::*;

fn config(window: usize, members: usize) -> EnsembleConfig {
    EnsembleConfig {
        window,
        ensemble_size: members,
        parallel: false,
        ..EnsembleConfig::default()
    }
}

/// Applies one decoded schedule step (the grammar pipeline steps in
/// member-sized budget units, so `Run` is taken modulo `members + 1`
/// exactly as in the eviction harness).
fn drive(
    detector: &mut StreamingEnsembleDetector,
    shadow: &mut ShadowSuffix,
    gen: &PointGen,
    window: usize,
    members: usize,
    op: ScheduleOp,
) {
    match op {
        ScheduleOp::Append(n) => {
            let chunk = shadow.next_chunk(gen, n);
            detector.append(&chunk);
        }
        ScheduleOp::Evict(amount) => {
            let c = choose_evict(detector.series_len(), window, amount);
            detector.evict(c).unwrap();
            shadow.evict(c);
        }
        ScheduleOp::Run(budget) => {
            detector.run_for(budget % (members + 1));
        }
    }
}

/// Drives a fresh detector through `ops[..upto]`.
fn replay_prefix(
    window: usize,
    members: usize,
    seed: u64,
    gen: &PointGen,
    ops: &[ScheduleOp],
    upto: usize,
) -> (StreamingEnsembleDetector, ShadowSuffix) {
    let mut detector = StreamingEnsembleDetector::new(config(window, members), seed);
    let mut shadow = ShadowSuffix::new();
    for &op in &ops[..upto] {
        drive(&mut detector, &mut shadow, gen, window, members, op);
    }
    (detector, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Checkpoint-at-any-point: for every prefix of a random schedule,
    /// save → restore → replay the rest finishes bit-identical to the
    /// uninterrupted run.
    #[test]
    fn checkpoint_at_every_prefix_finishes_bit_identical(
        window in 8usize..16,
        members in 3usize..7,
        seed in 0u64..1_000_000_000,
        raw_ops in prop::collection::vec((0usize..10, 1usize..40), 2..7),
    ) {
        let gen = PointGen::ensemble();
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();

        let (mut oracle, _) =
            replay_prefix(window, members, seed, &gen, &ops, ops.len());
        let expected = oracle.finish(3);

        for cut in 0..=ops.len() {
            let (prefix_detector, prefix_shadow) =
                replay_prefix(window, members, seed, &gen, &ops, cut);
            let bytes = prefix_detector.checkpoint_bytes().unwrap();
            let mut restored =
                StreamingEnsembleDetector::from_checkpoint_bytes(&bytes).unwrap();
            prop_assert_eq!(restored.series_len(), prefix_detector.series_len());
            prop_assert_eq!(restored.stream_offset(), prefix_detector.stream_offset());
            let mut resumed = prefix_shadow;
            for &op in &ops[cut..] {
                drive(&mut restored, &mut resumed, &gen, window, members, op);
            }
            let finished = restored.finish(3);
            prop_assert_eq!(&finished, &expected,
                "report diverged after restore at prefix {}", cut);
        }
    }

    /// Truncation at every section boundary is a typed error; a bit
    /// flip is a typed error or an identical session — never a panic.
    #[test]
    fn corrupted_checkpoints_fail_loud_never_wrong(
        window in 8usize..16,
        members in 3usize..7,
        seed in 0u64..1_000_000_000,
        raw_ops in prop::collection::vec((0usize..10, 1usize..40), 2..6),
        flip_picks in prop::collection::vec((0usize..1 << 20, 0u8..8), 1..10),
    ) {
        let gen = PointGen::ensemble();
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();
        let (detector, _) =
            replay_prefix(window, members, seed, &gen, &ops, ops.len());
        let bytes = detector.checkpoint_bytes().unwrap();
        let expected = StreamingEnsembleDetector::from_checkpoint_bytes(&bytes)
            .unwrap()
            .finish(3);

        let sections = list_sections(&bytes).unwrap();
        let mut cuts: Vec<usize> = (0..=16).collect();
        for s in &sections {
            for at in [s.start, s.payload_start, s.end] {
                cuts.extend([at.saturating_sub(1), at, at + 1]);
            }
        }
        for cut in cuts {
            if cut >= bytes.len() {
                continue;
            }
            prop_assert!(
                StreamingEnsembleDetector::from_checkpoint_bytes(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes loaded successfully", cut, bytes.len()
            );
        }

        for &(pos, bit) in &flip_picks {
            let pos = pos % bytes.len();
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            match StreamingEnsembleDetector::from_checkpoint_bytes(&bad) {
                Err(_) => {}
                Ok(mut restored) => {
                    let finished = restored.finish(3);
                    prop_assert_eq!(&finished, &expected,
                        "flip at byte {} bit {} restored a different session", pos, bit);
                }
            }
        }

        let mut bad_magic = bytes.clone();
        bad_magic[3] ^= 0x20;
        prop_assert!(matches!(
            StreamingEnsembleDetector::from_checkpoint_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
        prop_assert!(matches!(
            StreamingEnsembleDetector::from_checkpoint_bytes(&bad_version),
            Err(CheckpointError::UnsupportedFormat { found: 7, .. })
        ));
    }

    /// v1 member payloads predate the delta-maintenance node layout
    /// (no `pos`/`owner` bookkeeping, no `delta_base` flag) and cannot
    /// be reinterpreted; downgrading any member section's version must
    /// be a typed [`CheckpointError::UnsupportedSection`], never a
    /// misparse. Pending delta buffers round-trip alongside (covered
    /// structurally here, behaviorally by the density-delta harness).
    #[test]
    fn v1_member_sections_are_rejected_with_a_typed_error(
        window in 8usize..16,
        members in 3usize..7,
        seed in 0u64..1_000_000_000,
        raw_ops in prop::collection::vec((0usize..10, 1usize..40), 2..6),
    ) {
        const MEMBER_TAG: u32 = u32::from_le_bytes(*b"MEM1");
        let gen = PointGen::ensemble();
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();
        let (detector, _) =
            replay_prefix(window, members, seed, &gen, &ops, ops.len());
        let bytes = detector.checkpoint_bytes().unwrap();
        let member_sections: Vec<_> = list_sections(&bytes)
            .unwrap()
            .into_iter()
            .filter(|s| s.tag == MEMBER_TAG)
            .collect();
        prop_assert_eq!(member_sections.len(), members);
        for s in &member_sections {
            prop_assert_eq!(s.payload_version, 2);
            // The payload version lives right after the 4-byte tag;
            // the checksum covers only the payload, so this is a
            // clean format downgrade, not corruption.
            let mut v1 = bytes.clone();
            v1[s.start + 4..s.start + 8].copy_from_slice(&1u32.to_le_bytes());
            match StreamingEnsembleDetector::from_checkpoint_bytes(&v1) {
                Err(CheckpointError::UnsupportedSection { tag, found, supported }) => {
                    prop_assert_eq!(tag, MEMBER_TAG);
                    prop_assert_eq!(found, 1);
                    prop_assert_eq!(supported, 2);
                }
                other => prop_assert!(false,
                    "v1 member section produced {:?} instead of UnsupportedSection",
                    other.map(|_| "a loaded detector")),
            }
        }
    }
}
