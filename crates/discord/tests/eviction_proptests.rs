//! Property harness for sliding-window eviction on the streaming
//! discord monitor (the PR 5 suffix-parity contract).
//!
//! Random interleavings of `append` / `evict` / `step` schedules are
//! driven against a shadow model of the surviving suffix; at every
//! point the monitor must report only indices inside the live window,
//! and `finish()` must land **bit-identical** to a fresh batch
//! [`stamp_with_exclusion`] over exactly the suffix the shadow model
//! says survived — for every seed, chunk size, eviction schedule, and
//! worker count.

use egi_discord::mass_seg::MassBackend;
use egi_discord::stamp::stamp_with_exclusion;
use egi_discord::streaming::{EvictError, StreamingDiscordMonitor, DEFAULT_MONITOR_SEED};
use egi_testkit::{choose_evict, PointGen};
use proptest::prelude::*;

/// Deterministic unbounded stream: the value at global position `i`
/// (the shared [`PointGen::discord`] wave). Generating points from
/// their global index keeps append chunks reproducible without
/// materializing the whole stream up front.
fn point(i: usize) -> f64 {
    PointGen::discord().at(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The tentpole acceptance property: for random append/evict/step
    /// interleavings, seeds, and chunk sizes, the finished profile is
    /// bit-identical to batch STAMP over the surviving suffix, and no
    /// snapshot ever reports an index outside the live window.
    #[test]
    fn interleaved_append_evict_step_converges_to_suffix_batch(
        m in 4usize..12,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec((0usize..10, 1usize..33), 3..14),
    ) {
        let exc = m / 2;
        let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
        let mut appended = 0usize; // points ever appended (global cursor)
        let mut offset = 0usize;   // points evicted (shadow model)
        for &(kind, amount) in &ops {
            match kind {
                // Bias toward appends so streams actually grow.
                0..=4 => {
                    let chunk: Vec<f64> =
                        (0..amount).map(|j| point(appended + j)).collect();
                    monitor.append(&chunk);
                    appended += amount;
                }
                5..=7 => {
                    let c = choose_evict(monitor.series_len(), m, amount);
                    monitor.evict(c).unwrap();
                    offset += c;
                }
                _ => {
                    monitor.run_for(amount);
                }
            }
            prop_assert_eq!(monitor.stream_offset(), offset);
            prop_assert_eq!(monitor.series_len(), appended - offset);
            // Snapshot evidence never escapes the live window.
            let snap = monitor.snapshot();
            let windows = monitor.window_count();
            prop_assert_eq!(snap.len(), windows);
            for &idx in &snap.index {
                prop_assert!(
                    idx == usize::MAX || idx < windows,
                    "index {} outside the {} live windows", idx, windows
                );
            }
            for d in monitor.discords(2) {
                prop_assert!(d.start < windows);
            }
        }
        let suffix: Vec<f64> = (offset..appended).map(point).collect();
        let finished = monitor.finish();
        prop_assert!(monitor.is_current());
        if suffix.len() >= m {
            let reference = stamp_with_exclusion(&suffix, m, exc);
            prop_assert_eq!(&finished.profile, &reference.profile);
            prop_assert_eq!(&finished.index, &reference.index);
        } else {
            prop_assert!(finished.is_empty());
        }
    }

    /// Invalid evictions — past the end, or leaving a non-empty suffix
    /// shorter than `m` — are rejected atomically: the error names the
    /// violation and the monitor state is untouched.
    #[test]
    fn invalid_evictions_are_rejected_atomically(
        m in 4usize..12,
        len in 1usize..70,
        over in 1usize..20,
        budget in 0usize..30,
    ) {
        let mut monitor = StreamingDiscordMonitor::new(m);
        let chunk: Vec<f64> = (0..len).map(point).collect();
        monitor.append(&chunk);
        monitor.run_for(budget);
        let processed = monitor.processed();
        let snap = monitor.snapshot();

        prop_assert_eq!(
            monitor.evict(len + over),
            Err(EvictError::PastEnd { requested: len + over, available: len })
        );
        // Every cut leaving 0 < remaining < m must fail.
        for remaining in 1..m.min(len + 1) {
            let c = len - remaining;
            if c == 0 {
                continue;
            }
            prop_assert_eq!(
                monitor.evict(c),
                Err(EvictError::BelowMinimum { remaining, minimum: m })
            );
        }
        prop_assert_eq!(monitor.series_len(), len);
        prop_assert_eq!(monitor.stream_offset(), 0);
        prop_assert_eq!(monitor.processed(), processed);
        let after = monitor.snapshot();
        prop_assert_eq!(&after.profile, &snap.profile);
        prop_assert_eq!(&after.index, &snap.index);
    }

    /// The parallel finish stays bit-identical to the suffix batch for
    /// every worker count, with an eviction landing mid-stream.
    #[test]
    fn parallel_finish_after_eviction_matches_suffix_batch(
        m in 4usize..10,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..40,
        cut_pct in 0usize..100,
        threads in 2usize..9,
    ) {
        let exc = m / 2;
        let total = 120usize;
        let series: Vec<f64> = (0..total).map(point).collect();
        let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
        for part in series.chunks(chunk) {
            monitor.append(part);
            monitor.run_for(chunk / 2);
        }
        // A valid cut: leave at least m points.
        let cut = ((total - m) * cut_pct / 100).min(total - m);
        monitor.evict(cut).unwrap();
        let finished = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| monitor.finish_parallel());
        let reference = stamp_with_exclusion(&series[cut..], m, exc);
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
    }

    /// A retention policy is just a pre-scheduled eviction: streaming
    /// any series under `retain_last(n)` finishes bit-identical to the
    /// batch profile of the last `n` points.
    #[test]
    fn retention_policy_matches_suffix_batch(
        m in 4usize..10,
        extra in 0usize..200,
        chunk in 1usize..50,
        n_mult in 1usize..6,
    ) {
        let n = m * n_mult + m; // retention >= 2m keeps windows meaningful
        let total = n + extra;
        let exc = m / 2;
        let series: Vec<f64> = (0..total).map(point).collect();
        let mut monitor = StreamingDiscordMonitor::with_exclusion(m, exc);
        monitor.retain_last(n).unwrap();
        for part in series.chunks(chunk) {
            monitor.append(part);
            monitor.run_for(3);
            prop_assert!(monitor.series_len() <= n);
        }
        let survived = total.min(n);
        prop_assert_eq!(monitor.series_len(), survived);
        prop_assert_eq!(monitor.stream_offset(), total - survived);
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[total - survived..], m, exc);
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
    }
}

/// Memory-bound regression: a long run under `retain_last(n)` keeps
/// every buffer — live series, padded FFT buffer — at `O(n + chunk)`,
/// independent of how many points were streamed, and still finishes on
/// the exact suffix profile.
#[test]
fn memory_stays_bounded_under_retention() {
    let m = 16usize;
    let n = 384usize;
    let chunk = 128usize;
    let total = 8_000usize;
    let pow2_bound = (n + chunk).next_power_of_two();
    let mut monitor = StreamingDiscordMonitor::new(m);
    monitor.retain_last(n).unwrap();
    let mut fed = 0usize;
    while fed < total {
        let part: Vec<f64> = (0..chunk).map(|j| point(fed + j)).collect();
        monitor.append(&part);
        fed += chunk;
        monitor.run_for(32);
        assert!(monitor.series_len() <= n);
        assert!(
            monitor.padded_size() <= pow2_bound,
            "padded transform grew to {} (bound {pow2_bound})",
            monitor.padded_size()
        );
        assert!(
            monitor.padded_capacity() <= pow2_bound,
            "padded buffer capacity {} exceeds {pow2_bound}",
            monitor.padded_capacity()
        );
        assert!(
            monitor.series_capacity() <= 2 * (n + chunk),
            "series capacity {} exceeds {}",
            monitor.series_capacity(),
            2 * (n + chunk)
        );
    }
    assert_eq!(monitor.stream_offset(), fed - n);
    let finished = monitor.finish();
    let suffix: Vec<f64> = ((fed - n)..fed).map(point).collect();
    let reference = stamp_with_exclusion(&suffix, m, m / 2);
    assert_eq!(finished.profile, reference.profile);
    assert_eq!(finished.index, reference.index);
}

/// Capacity-reclamation regression for `compact()`: a heavy one-off
/// eviction leaves dead capacity behind (by design — the steady-state
/// append/evict cycle reuses it), and `compact()` returns every buffer
/// to the live working set on both kernels without disturbing the
/// finish parity contract.
#[test]
fn compact_reclaims_capacity_after_heavy_eviction() {
    let m = 8;
    let exc = m / 2;
    let keep = 128usize;
    for backend in [MassBackend::Exact, MassBackend::Segmented] {
        let series: Vec<f64> = (0..4096).map(point).collect();
        let mut monitor =
            StreamingDiscordMonitor::with_backend(m, exc, DEFAULT_MONITOR_SEED, backend);
        for part in series.chunks(256) {
            monitor.append(part);
            monitor.run_for(16);
        }
        monitor.evict(series.len() - keep).unwrap();
        // Eviction truncates lengths but keeps capacity for reuse…
        let series_before = monitor.series_capacity();
        assert!(
            series_before >= 2048,
            "{backend:?}: pre-compact capacity {series_before} should still \
             hold most of the 4096-point history"
        );
        monitor.compact();
        // …and compact returns it to the live working set. The
        // segmented grid may retain a dead prefix plus one partial
        // block; the exact buffer shrinks to the suffix itself.
        let slack = match backend {
            MassBackend::Exact => keep,
            MassBackend::Segmented => keep + 2 * monitor.padded_size(),
        };
        assert!(
            monitor.series_capacity() <= slack,
            "{backend:?}: series capacity {} exceeds {slack}",
            monitor.series_capacity()
        );
        assert!(
            monitor.padded_capacity() <= monitor.padded_size(),
            "{backend:?}: padded capacity {} exceeds live transform {}",
            monitor.padded_capacity(),
            monitor.padded_size()
        );
        if let Some((blocks, block, spectra)) = monitor.block_store() {
            assert!(
                spectra <= blocks * (block + 1),
                "spectra capacity {spectra} exceeds {blocks} live blocks"
            );
        }
        // Observationally invisible: the finish contract holds.
        let finished = monitor.finish();
        let reference = stamp_with_exclusion(&series[series.len() - keep..], m, exc);
        if backend == MassBackend::Exact {
            assert_eq!(finished.profile, reference.profile);
            assert_eq!(finished.index, reference.index);
        } else {
            for i in 0..finished.len() {
                let (a, b) = (finished.profile[i], reference.profile[i]);
                assert!(
                    (a - b).abs() <= 1e-9 || (a * a - b * b).abs() <= 1e-9,
                    "i={i}: {a} vs {b}"
                );
            }
        }
    }
}
