//! Property-based cross-checks of the matrix profile implementations.
//!
//! STOMP and STAMP take completely different routes to the same numbers
//! (incremental dot products vs FFT convolutions); agreement with each
//! other and with the brute-force oracle over random inputs is the
//! strongest correctness evidence available without external fixtures.

use egi_discord::anytime::AnytimeStamp;
use egi_discord::brute::brute_force;
use egi_discord::dist::WindowStats;
use egi_discord::mass::{mass_self, MassPrecomputed};
use egi_discord::stamp::{stamp_per_query_fft, stamp_with_exclusion};
use egi_discord::stomp::stomp_with_exclusion;
use egi_discord::streaming::StreamingDiscordMonitor;
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 40..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// STOMP ≡ brute force over random series and window lengths.
    #[test]
    fn stomp_matches_brute(series in series_strategy(), m in 4usize..16) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m - 1;
        let fast = stomp_with_exclusion(&series, m, exc);
        let slow = brute_force(&series, m, exc);
        for i in 0..fast.len() {
            let (f, s) = (fast.profile[i], slow.profile[i]);
            // Windows with no admissible neighbor stay at +inf on both
            // sides; inf − inf is NaN, so equality is checked explicitly.
            let equal = (f.is_infinite() && s.is_infinite()) || (f - s).abs() < 1e-5;
            prop_assert!(equal, "i={}: {} vs {}", i, f, s);
        }
    }

    /// STAMP ≡ STOMP (FFT route vs incremental route).
    #[test]
    fn stamp_matches_stomp(series in series_strategy(), m in 4usize..16) {
        prop_assume!(series.len() >= 2 * m);
        let a = stamp_with_exclusion(&series, m, m / 2);
        let b = stomp_with_exclusion(&series, m, m / 2);
        for i in 0..a.len() {
            let (x, y) = (a.profile[i], b.profile[i]);
            let equal = (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-5;
            prop_assert!(equal, "i={}: {} vs {}", i, x, y);
        }
    }

    /// Matrix profile values are symmetric evidence: profile[i] is the
    /// distance to index[i], and that distance is achievable from the
    /// other side too (profile[index[i]] ≤ profile[i]).
    #[test]
    fn neighbor_distance_is_mutual_upper_bound(series in series_strategy(), m in 4usize..12) {
        prop_assume!(series.len() >= 2 * m);
        let mp = stomp_with_exclusion(&series, m, m - 1);
        for i in 0..mp.len() {
            let j = mp.index[i];
            if j != usize::MAX {
                prop_assert!(
                    mp.profile[j] <= mp.profile[i] + 1e-6,
                    "profile[{}]={} > profile[{}]={}",
                    j, mp.profile[j], i, mp.profile[i]
                );
            }
        }
    }

    /// Shared-spectrum MASS ([`MassPrecomputed`]) equals the per-query
    /// FFT path to 1e-9 on random inputs — the parity contract of the
    /// fast path.
    #[test]
    fn mass_precomputed_matches_mass_self(series in series_strategy(), m in 4usize..16) {
        prop_assume!(series.len() >= 2 * m);
        let ws = WindowStats::new(&series, m);
        let pre = MassPrecomputed::new(&series, m);
        let count = ws.count();
        for q in [0, count / 3, count - 1] {
            let naive = mass_self(&series, q, &ws);
            let fast = pre.distance_profile(q);
            prop_assert_eq!(naive.len(), fast.len());
            for j in 0..naive.len() {
                prop_assert!(
                    (naive[j] - fast[j]).abs() < 1e-9,
                    "q={} j={}: {} vs {}", q, j, naive[j], fast[j]
                );
            }
        }
    }

    /// Shared-spectrum STAMP equals the per-query-FFT STAMP to 1e-9.
    #[test]
    fn stamp_fast_path_matches_naive_path(series in series_strategy(), m in 4usize..16) {
        prop_assume!(series.len() >= 2 * m);
        let fast = stamp_with_exclusion(&series, m, m / 2);
        let naive = stamp_per_query_fft(&series, m, m / 2);
        for i in 0..fast.len() {
            let (f, s) = (fast.profile[i], naive.profile[i]);
            let equal = (f.is_infinite() && s.is_infinite()) || (f - s).abs() < 1e-9;
            prop_assert!(equal, "i={}: {} vs {}", i, f, s);
        }
    }

    /// Diagonal-parallel STOMP returns bit-identical profiles and
    /// indices for every worker count.
    #[test]
    fn stomp_deterministic_across_threads(
        series in series_strategy(),
        m in 4usize..12,
        threads in 2usize..9,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| stomp_with_exclusion(&series, m, m / 2));
        let multi = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| stomp_with_exclusion(&series, m, m / 2));
        prop_assert_eq!(&single.profile, &multi.profile);
        prop_assert_eq!(&single.index, &multi.index);
    }

    /// Anytime STAMP, for *every* query permutation (seed), finishes on
    /// a profile and index vector bit-identical to sequential STAMP —
    /// and within 1e-5 of STOMP: the whole point of the shared
    /// `(distance, index)` fold.
    #[test]
    fn anytime_any_permutation_matches_stamp_and_stomp(
        series in series_strategy(),
        m in 4usize..16,
        seed in 0u64..1_000_000_000,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let finished = AnytimeStamp::with_seed(&series, m, exc, seed).finish();
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
        let stomp = stomp_with_exclusion(&series, m, exc);
        for i in 0..finished.len() {
            let (x, y) = (finished.profile[i], stomp.profile[i]);
            let equal = (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-5;
            prop_assert!(equal, "i={}: {} vs {}", i, x, y);
        }
    }

    /// Parallel STAMP is bit-identical to sequential STAMP for every
    /// worker count, seed, and partial sequential prefix (mixing
    /// `run_for` stepping with a parallel finish).
    #[test]
    fn anytime_parallel_finish_deterministic(
        series in series_strategy(),
        m in 4usize..12,
        seed in 0u64..1_000_000_000,
        threads in 2usize..9,
        prefix_pct in 0usize..100,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut driver = AnytimeStamp::with_seed(&series, m, exc, seed);
        driver.run_for(driver.window_count() * prefix_pct / 100);
        let finished = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| driver.finish_parallel());
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
    }

    /// Partial anytime profiles converge monotonically: pointwise
    /// non-increasing in the number of processed queries, and always an
    /// upper bound on the finished profile.
    #[test]
    fn anytime_snapshots_monotone_and_upper_bound(
        series in series_strategy(),
        m in 4usize..12,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..30,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut driver = AnytimeStamp::with_seed(&series, m, exc, seed);
        let mut previous = driver.snapshot();
        while driver.run_for(chunk) > 0 {
            let current = driver.snapshot();
            for i in 0..current.len() {
                prop_assert!(
                    current.profile[i] <= previous.profile[i],
                    "entry {} rose after {} queries", i, driver.processed()
                );
                prop_assert!(
                    current.profile[i] >= reference.profile[i],
                    "entry {} undershot the final profile", i
                );
            }
            previous = current;
        }
        prop_assert_eq!(&previous.profile, &reference.profile);
        prop_assert_eq!(&previous.index, &reference.index);
    }

    /// `MassPrecomputed::append` leaves the struct bit-identical to a
    /// fresh build over the concatenated series, for every split point
    /// and chunking — the substrate of the streaming monitor's
    /// finished-profile contract.
    #[test]
    fn mass_append_is_bit_identical_to_fresh(
        series in series_strategy(),
        m in 4usize..16,
        split_pct in 0usize..=100,
        chunk in 1usize..32,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let split = (m + (series.len() - m) * split_pct / 100).min(series.len());
        let mut inc = MassPrecomputed::new(&series[..split], m);
        for part in series[split..].chunks(chunk) {
            inc.append(part);
        }
        let fresh = MassPrecomputed::new(&series, m);
        prop_assert_eq!(inc.window_count(), fresh.window_count());
        let count = fresh.window_count();
        for q in [0, count / 2, count - 1] {
            prop_assert_eq!(inc.distance_profile(q), fresh.distance_profile(q), "q = {}", q);
        }
    }

    /// The streaming monitor converges to the batch profile, bitwise,
    /// for every seed, chunk size, and interleaving of
    /// `append`/`step`/`snapshot` — the tentpole acceptance contract.
    #[test]
    fn streaming_interleaved_converges_to_batch(
        series in series_strategy(),
        m in 4usize..16,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..40,
        budget in 0usize..25,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
        for part in series.chunks(chunk) {
            monitor.append(part);
            monitor.run_for(budget);
            let snap = monitor.snapshot();
            prop_assert_eq!(snap.len(), monitor.window_count());
            // Every snapshot entry is an upper bound on the batch
            // profile (up to FFT round-off on carry-over evidence).
            for i in 0..snap.len() {
                prop_assert!(
                    snap.profile[i] >= reference.profile[i] - 1e-9 * (1.0 + reference.profile[i]),
                    "entry {} undershot the batch profile", i
                );
            }
        }
        let finished = monitor.finish();
        prop_assert!(monitor.is_current());
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
    }

    /// The streaming monitor's parallel finish is bit-identical to the
    /// batch profile for every worker count and append schedule.
    #[test]
    fn streaming_parallel_finish_deterministic(
        series in series_strategy(),
        m in 4usize..12,
        seed in 0u64..1_000_000_000,
        chunk in 1usize..40,
        threads in 2usize..9,
    ) {
        prop_assume!(series.len() >= 2 * m);
        let exc = m / 2;
        let reference = stamp_with_exclusion(&series, m, exc);
        let mut monitor = StreamingDiscordMonitor::with_seed(m, exc, seed);
        for part in series.chunks(chunk) {
            monitor.append(part);
            monitor.run_for(chunk / 2);
        }
        let finished = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| monitor.finish_parallel());
        prop_assert_eq!(&finished.profile, &reference.profile);
        prop_assert_eq!(&finished.index, &reference.index);
    }

    /// Scaling and shifting the series leaves the (z-normalized) matrix
    /// profile unchanged.
    #[test]
    fn profile_is_scale_shift_invariant(
        series in series_strategy(),
        scale in 0.5f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        prop_assume!(series.len() >= 24);
        let m = 8;
        let transformed: Vec<f64> = series.iter().map(|v| v * scale + shift).collect();
        let a = stomp_with_exclusion(&series, m, m - 1);
        let b = stomp_with_exclusion(&transformed, m, m - 1);
        for i in 0..a.len() {
            prop_assert!(
                (a.profile[i] - b.profile[i]).abs() < 1e-4,
                "i={}: {} vs {}", i, a.profile[i], b.profile[i]
            );
        }
    }
}
