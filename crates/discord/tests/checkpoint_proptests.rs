//! Property harness for checkpoint/restore on the streaming discord
//! monitor (the PR 8 persistence contract).
//!
//! Two families of properties:
//!
//! * **Round-trip at every prefix.** For random append/evict/step
//!   schedules on *both* MASS backends, a checkpoint taken after every
//!   prefix of the schedule, restored, and driven through the remaining
//!   ops must `finish()` **bit-identical** to the uninterrupted run —
//!   persistence is observationally invisible at any cut point.
//!
//! * **Corruption is loud.** Truncating the checkpoint at (and around)
//!   every section boundary must return a typed [`CheckpointError`],
//!   and flipping any bit must either return a typed error or restore a
//!   session whose `finish()` is still bit-identical — never a panic,
//!   never a silently-wrong session.

use egi_discord::mass_seg::MassBackend;
use egi_discord::streaming::{Checkpoint, CheckpointError, StreamingDiscordMonitor};
use egi_testkit::{choose_evict, decode_op, PointGen, ScheduleOp, ShadowSuffix};
use egi_tskit::checkpoint::list_sections;
use proptest::prelude::*;

/// Applies one decoded schedule step to a monitor, advancing the shadow
/// cursor. Eviction amounts are narrowed to valid cuts from the live
/// length, so replaying the same ops against equal state is
/// deterministic.
fn drive(
    monitor: &mut StreamingDiscordMonitor,
    shadow: &mut ShadowSuffix,
    gen: &PointGen,
    m: usize,
    op: ScheduleOp,
) {
    match op {
        ScheduleOp::Append(n) => {
            let chunk = shadow.next_chunk(gen, n);
            monitor.append(&chunk);
        }
        ScheduleOp::Evict(amount) => {
            let c = choose_evict(monitor.series_len(), m, amount);
            monitor.evict(c).unwrap();
            shadow.evict(c);
        }
        ScheduleOp::Run(budget) => {
            monitor.run_for(budget);
        }
    }
}

/// Drives a fresh monitor through `ops[..upto]` and returns it with its
/// shadow cursor.
fn replay_prefix(
    m: usize,
    seed: u64,
    backend: MassBackend,
    gen: &PointGen,
    ops: &[ScheduleOp],
    upto: usize,
) -> (StreamingDiscordMonitor, ShadowSuffix) {
    let exc = m / 2;
    let mut monitor = StreamingDiscordMonitor::with_backend(m, exc, seed, backend);
    let mut shadow = ShadowSuffix::new();
    for &op in &ops[..upto] {
        drive(&mut monitor, &mut shadow, gen, m, op);
    }
    (monitor, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole acceptance property: checkpoint-at-any-point. For
    /// every prefix of a random schedule, save → restore → replay the
    /// rest must finish bit-identical to the uninterrupted run, on both
    /// backends.
    #[test]
    fn checkpoint_at_every_prefix_finishes_bit_identical(
        m in 4usize..10,
        seed in 0u64..1_000_000_000,
        backend_pick in 0usize..2,
        raw_ops in prop::collection::vec((0usize..10, 1usize..33), 2..8),
    ) {
        let backend = if backend_pick == 0 {
            MassBackend::Exact
        } else {
            MassBackend::Segmented
        };
        let gen = PointGen::discord();
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();

        // The uninterrupted run is the oracle.
        let (mut oracle, shadow) =
            replay_prefix(m, seed, backend, &gen, &ops, ops.len());
        let expected = oracle.finish();
        prop_assert_eq!(oracle.series_len(), shadow.live());

        for cut in 0..=ops.len() {
            let (prefix_monitor, _) =
                replay_prefix(m, seed, backend, &gen, &ops, cut);
            let bytes = prefix_monitor.checkpoint_bytes().unwrap();
            let mut restored =
                StreamingDiscordMonitor::from_checkpoint_bytes(&bytes).unwrap();
            // The restored session is indistinguishable from the one it
            // was saved from…
            prop_assert_eq!(restored.series_len(), prefix_monitor.series_len());
            prop_assert_eq!(restored.stream_offset(), prefix_monitor.stream_offset());
            prop_assert_eq!(restored.processed(), prefix_monitor.processed());
            // …and replaying the remaining schedule lands on the
            // uninterrupted finish, bit for bit.
            let mut resumed = shadow_at(&gen, &restored);
            for &op in &ops[cut..] {
                drive(&mut restored, &mut resumed, &gen, m, op);
            }
            let finished = restored.finish();
            prop_assert_eq!(&finished.profile, &expected.profile,
                "profile diverged after restore at prefix {}", cut);
            prop_assert_eq!(&finished.index, &expected.index,
                "index diverged after restore at prefix {}", cut);
        }
    }

    /// Truncation at and around every section boundary is a typed
    /// error; any single bit flip is a typed error or an
    /// observationally-identical session — never a panic.
    #[test]
    fn corrupted_checkpoints_fail_loud_never_wrong(
        m in 4usize..10,
        seed in 0u64..1_000_000_000,
        backend_pick in 0usize..2,
        raw_ops in prop::collection::vec((0usize..10, 1usize..33), 2..7),
        flip_picks in prop::collection::vec((0usize..4096, 0u8..8), 1..12),
    ) {
        let backend = if backend_pick == 0 {
            MassBackend::Exact
        } else {
            MassBackend::Segmented
        };
        let gen = PointGen::discord();
        let ops: Vec<ScheduleOp> =
            raw_ops.iter().map(|&(k, a)| decode_op(k, a)).collect();
        let (monitor, _) =
            replay_prefix(m, seed, backend, &gen, &ops, ops.len());
        let bytes = monitor.checkpoint_bytes().unwrap();
        let expected = {
            let mut twin =
                StreamingDiscordMonitor::from_checkpoint_bytes(&bytes).unwrap();
            twin.finish()
        };

        // Truncation at every structural boundary (plus one byte to
        // either side) must surface as a typed error.
        let sections = list_sections(&bytes).unwrap();
        let mut cuts: Vec<usize> = (0..=16).collect(); // inside the header
        for s in &sections {
            for at in [s.start, s.payload_start, s.end] {
                cuts.extend([at.saturating_sub(1), at, at + 1]);
            }
        }
        for cut in cuts {
            if cut >= bytes.len() {
                continue;
            }
            let err = StreamingDiscordMonitor::from_checkpoint_bytes(&bytes[..cut]);
            prop_assert!(
                err.is_err(),
                "truncation to {} of {} bytes loaded successfully", cut, bytes.len()
            );
        }

        // Bit flips: typed error, or a session whose finish is still
        // bit-identical (flips in ignored framing slack may load).
        for &(pos, bit) in &flip_picks {
            let pos = pos % bytes.len();
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            match StreamingDiscordMonitor::from_checkpoint_bytes(&bad) {
                Err(_) => {}
                Ok(mut restored) => {
                    let finished = restored.finish();
                    prop_assert_eq!(&finished.profile, &expected.profile,
                        "flip at byte {} bit {} restored a different session", pos, bit);
                    prop_assert_eq!(&finished.index, &expected.index);
                }
            }
        }

        // Wrong magic and wrong container version are the dedicated
        // error variants, not Corrupt.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            StreamingDiscordMonitor::from_checkpoint_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        prop_assert!(matches!(
            StreamingDiscordMonitor::from_checkpoint_bytes(&bad_version),
            Err(CheckpointError::UnsupportedFormat { found: 99, .. })
        ));
    }
}

/// A shadow cursor consistent with a restored monitor: the restored
/// session knows its global offset and live length, which is all the
/// replay needs to keep generating the same stream.
fn shadow_at(_gen: &PointGen, monitor: &StreamingDiscordMonitor) -> ShadowSuffix {
    ShadowSuffix {
        appended: monitor.stream_offset() + monitor.series_len(),
        offset: monitor.stream_offset(),
    }
}
