//! Property harness for the versioned parity contract between the
//! `Exact` and `Segmented` MASS backends (the PR 6 tentpole).
//!
//! Random interleavings of `append` / `evict` / `step` schedules are
//! driven through **both** backends in lockstep and against the shadow
//! suffix model (stream regenerated from global indices). At the end of
//! every schedule:
//!
//! * the Exact finish is bit-identical to batch [`stamp_with_exclusion`]
//!   over the surviving suffix (re-asserting the PR 5 contract — the
//!   backend plumbing must not have perturbed the oracle);
//! * the Segmented finish agrees with the Exact one to ≤1e-9 — in
//!   distance, or in *squared* distance where `√` amplifies correlation
//!   round-off near true-zero distances;
//! * profile **indices** are identical wherever the entry's two best
//!   admissible distances are separated by more than 2× the tolerance
//!   (closer than that, either kernel may legitimately pick either
//!   neighbor);
//! * invalid evictions are rejected atomically on the segmented backend
//!   exactly as on the exact one.

use egi_discord::mass_seg::MassBackend;
use egi_discord::stamp::{stamp_per_query_fft, stamp_with_exclusion};
use egi_discord::streaming::{EvictError, StreamingDiscordMonitor, DEFAULT_MONITOR_SEED};
use egi_discord::MassPrecomputed;
use egi_testkit::{choose_evict, PointGen};
use proptest::prelude::*;

/// Parity budget of the segmented backend (see `egi_discord::mass_seg`).
const TOL: f64 = 1e-9;

/// Deterministic unbounded stream: the value at global position `i`
/// (the shared [`PointGen::segmented`] wave).
fn point(i: usize) -> f64 {
    PointGen::segmented().at(i)
}

/// ≤`TOL` in distance or squared distance. `d = √(2m(1 − corr))`
/// amplifies corr round-off without bound as `d → 0`, while
/// `d² = 2m(1 − corr)` is linear in it — so near-zero entries compare
/// in the squared domain and everything else in the plain one.
fn profile_close(a: f64, b: f64) -> bool {
    // Equality first: covers the `+∞` entries of windows with no
    // admissible neighbor, where `a - b` is NaN.
    a == b || (a - b).abs() <= TOL || (a * a - b * b).abs() <= TOL
}

/// For each profile entry of `series`, the two smallest admissible
/// distances (best, second-best), computed on the exact kernel.
fn two_best_admissible(series: &[f64], m: usize, exclusion: usize) -> Vec<(f64, f64)> {
    let mass = MassPrecomputed::new(series, m);
    let count = mass.window_count();
    let mut out = vec![(f64::INFINITY, f64::INFINITY); count];
    for (q, entry) in out.iter_mut().enumerate().take(count) {
        let dp = mass.distance_profile(q);
        for (j, &d) in dp.iter().enumerate() {
            if q.abs_diff(j) <= exclusion {
                continue;
            }
            let (best, second) = *entry;
            if d < best {
                *entry = (d, best);
            } else if d < second {
                *entry = (best, d);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(15))]

    /// The tentpole acceptance property: both backends through the same
    /// random append/evict/step schedule; Exact stays bitwise on the
    /// suffix batch, Segmented stays within tolerance of Exact, and the
    /// index vectors agree wherever the neighbor ranking is separated
    /// by more than 2× the tolerance.
    #[test]
    fn both_backends_agree_across_random_schedules(
        m in 4usize..12,
        seed in 0u64..1_000_000_000,
        ops in prop::collection::vec((0usize..10, 1usize..33), 3..12),
    ) {
        let exc = m / 2;
        let mut exact = StreamingDiscordMonitor::with_seed(m, exc, seed);
        let mut seg =
            StreamingDiscordMonitor::with_backend(m, exc, seed, MassBackend::Segmented);
        let mut appended = 0usize;
        let mut offset = 0usize;
        for &(kind, amount) in &ops {
            match kind {
                0..=4 => {
                    let chunk: Vec<f64> =
                        (0..amount).map(|j| point(appended + j)).collect();
                    exact.append(&chunk);
                    seg.append(&chunk);
                    appended += amount;
                }
                5..=7 => {
                    let c = choose_evict(exact.series_len(), m, amount);
                    exact.evict(c).unwrap();
                    seg.evict(c).unwrap();
                    offset += c;
                }
                _ => {
                    exact.run_for(amount);
                    seg.run_for(amount);
                }
            }
            // The two backends track the same live window…
            prop_assert_eq!(seg.stream_offset(), offset);
            prop_assert_eq!(seg.series_len(), appended - offset);
            prop_assert_eq!(seg.series(), exact.series());
            prop_assert_eq!(seg.window_count(), exact.window_count());
            // …and segmented snapshot evidence stays inside it.
            let snap = seg.snapshot();
            let windows = seg.window_count();
            for &idx in &snap.index {
                prop_assert!(
                    idx == usize::MAX || idx < windows,
                    "index {} outside the {} live windows", idx, windows
                );
            }
        }
        let suffix: Vec<f64> = (offset..appended).map(point).collect();
        let finished_exact = exact.finish();
        let finished_seg = seg.finish();
        prop_assert!(seg.is_current());
        if suffix.len() < m {
            prop_assert!(finished_seg.is_empty());
            return Ok(());
        }
        // Oracle side: bitwise on the suffix batch, as before PR 6.
        let reference = stamp_with_exclusion(&suffix, m, exc);
        prop_assert_eq!(&finished_exact.profile, &reference.profile);
        prop_assert_eq!(&finished_exact.index, &reference.index);
        // Toleranced side: within the parity budget of the oracle.
        prop_assert_eq!(finished_seg.len(), reference.len());
        for i in 0..finished_seg.len() {
            prop_assert!(
                profile_close(finished_seg.profile[i], reference.profile[i]),
                "entry {}: segmented {} vs exact {}",
                i, finished_seg.profile[i], reference.profile[i]
            );
        }
        // Index parity under 2×-tolerance separation of the two best
        // admissible neighbors (computed brute on the exact kernel).
        let ranking = two_best_admissible(&suffix, m, exc);
        for (i, &(best, second)) in ranking.iter().enumerate().take(finished_seg.len()) {
            if second - best > 2.0 * TOL && best > 1e-6 {
                prop_assert_eq!(
                    finished_seg.index[i], reference.index[i],
                    "entry {}: separated by {:e} but indices differ",
                    i, second - best
                );
            }
        }
    }

    /// The segmented batch path against the crate's executable spec
    /// (`stamp_per_query_fft`, the per-query-FFT STAMP): ≤1e-9 under
    /// the distance-or-squared convention for random series shapes.
    #[test]
    fn segmented_batch_matches_executable_spec(
        m in 4usize..16,
        n in 40usize..220,
        phase in 0usize..1000,
    ) {
        prop_assume!(n > 2 * m);
        let series: Vec<f64> = (0..n).map(|i| point(i + phase)).collect();
        let exc = m / 2;
        let spec = stamp_per_query_fft(&series, m, exc);
        let seg = egi_discord::stamp_with_backend(
            &series, m, exc, MassBackend::Segmented,
        );
        prop_assert_eq!(seg.len(), spec.len());
        for i in 0..seg.len() {
            prop_assert!(
                profile_close(seg.profile[i], spec.profile[i]),
                "entry {}: segmented {} vs spec {}",
                i, seg.profile[i], spec.profile[i]
            );
        }
    }

    /// Invalid evictions are rejected atomically on the segmented
    /// backend: the error names the violation and no state moves — the
    /// same contract the exact backend pins in the eviction harness.
    #[test]
    fn segmented_invalid_evictions_are_rejected_atomically(
        m in 4usize..12,
        len in 1usize..70,
        over in 1usize..20,
        budget in 0usize..30,
    ) {
        let mut monitor = StreamingDiscordMonitor::with_backend(
            m, m / 2, DEFAULT_MONITOR_SEED, MassBackend::Segmented,
        );
        let chunk: Vec<f64> = (0..len).map(point).collect();
        monitor.append(&chunk);
        monitor.run_for(budget);
        let processed = monitor.processed();
        let snap = monitor.snapshot();

        prop_assert_eq!(
            monitor.evict(len + over),
            Err(EvictError::PastEnd { requested: len + over, available: len })
        );
        for remaining in 1..m.min(len + 1) {
            let c = len - remaining;
            if c == 0 {
                continue;
            }
            prop_assert_eq!(
                monitor.evict(c),
                Err(EvictError::BelowMinimum { remaining, minimum: m })
            );
        }
        prop_assert_eq!(monitor.series_len(), len);
        prop_assert_eq!(monitor.stream_offset(), 0);
        prop_assert_eq!(monitor.processed(), processed);
        let after = monitor.snapshot();
        prop_assert_eq!(&after.profile, &snap.profile);
        prop_assert_eq!(&after.index, &snap.index);
    }
}
