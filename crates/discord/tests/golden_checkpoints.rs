//! Golden-fixture tests for the monitor checkpoint format.
//!
//! The files under `tests/fixtures/` are checkpoints written by the
//! code as it was when the format was introduced (or last versioned).
//! They are **committed bytes**: these tests prove that today's code
//! still loads yesterday's checkpoints and resumes them onto the same
//! bit-identical finish. A failure here means the on-disk format
//! changed without a version bump — bump the payload version and add a
//! new fixture instead of regenerating the old one.
//!
//! To (re)generate after an intentional format change:
//!
//! ```text
//! cargo test -p egi-discord --test golden_checkpoints -- --ignored
//! ```

use egi_discord::mass_seg::MassBackend;
use egi_discord::stamp::stamp_with_exclusion;
use egi_discord::streaming::{Checkpoint, StreamingDiscordMonitor};
use egi_testkit::PointGen;
use std::path::PathBuf;

const M: usize = 6;
const EXC: usize = 3;
const SEED: u64 = 41;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The canonical mid-stream session the fixtures were saved from:
/// 80 points appended in uneven chunks, 12 evicted, partial progress.
/// Returns the monitor exactly at the checkpoint cut.
fn canonical_monitor(backend: MassBackend) -> StreamingDiscordMonitor {
    let gen = PointGen::discord();
    let mut monitor = StreamingDiscordMonitor::with_backend(M, EXC, SEED, backend);
    monitor.append(&gen.slice(0..30));
    monitor.run_for(9);
    monitor.append(&gen.slice(30..47));
    monitor.evict(12).unwrap();
    monitor.run_for(4);
    monitor.append(&gen.slice(47..80));
    monitor
}

/// What any restore of the canonical session must finish to: the
/// remaining schedule is empty, so it is the batch profile of the
/// surviving suffix `12..80`.
fn assert_canonical_finish(monitor: &mut StreamingDiscordMonitor, backend: MassBackend) {
    let gen = PointGen::discord();
    let finished = monitor.finish();
    let mut twin = canonical_monitor(backend);
    let expected = twin.finish();
    assert_eq!(finished.profile, expected.profile);
    assert_eq!(finished.index, expected.index);
    if backend == MassBackend::Exact {
        let reference = stamp_with_exclusion(&gen.slice(12..80), M, EXC);
        assert_eq!(finished.profile, reference.profile);
        assert_eq!(finished.index, reference.index);
    }
}

#[test]
fn golden_exact_checkpoint_still_loads() {
    let bytes = std::fs::read(fixture_path("monitor_exact_v1.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let mut restored = StreamingDiscordMonitor::from_checkpoint_bytes(&bytes)
        .expect("golden exact checkpoint no longer loads: format broke without a version bump");
    assert_eq!(restored.series_len(), 68);
    assert_eq!(restored.stream_offset(), 12);
    assert_canonical_finish(&mut restored, MassBackend::Exact);
}

#[test]
fn golden_segmented_checkpoint_still_loads() {
    let bytes = std::fs::read(fixture_path("monitor_segmented_v1.ckpt"))
        .expect("fixture missing — run the ignored regen test and commit the file");
    let mut restored = StreamingDiscordMonitor::from_checkpoint_bytes(&bytes)
        .expect("golden segmented checkpoint no longer loads: format broke without a version bump");
    assert_eq!(restored.series_len(), 68);
    assert_eq!(restored.stream_offset(), 12);
    assert_canonical_finish(&mut restored, MassBackend::Segmented);
}

/// The writer side is still byte-deterministic: saving the canonical
/// session today produces exactly the committed fixture. This is a
/// stronger pin than load-compatibility — it will flag *any* encoding
/// change, which is the early warning to bump a payload version.
#[test]
fn canonical_checkpoint_bytes_are_stable() {
    for (backend, name) in [
        (MassBackend::Exact, "monitor_exact_v1.ckpt"),
        (MassBackend::Segmented, "monitor_segmented_v1.ckpt"),
    ] {
        let committed = std::fs::read(fixture_path(name))
            .expect("fixture missing — run the ignored regen test and commit the file");
        let fresh = canonical_monitor(backend).checkpoint_bytes().unwrap();
        assert_eq!(
            fresh, committed,
            "{name}: today's encoder no longer reproduces the committed bytes"
        );
    }
}

#[test]
#[ignore = "regenerates the committed fixtures; run only after an intentional format change"]
fn regenerate_golden_fixtures() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();
    for (backend, name) in [
        (MassBackend::Exact, "monitor_exact_v1.ckpt"),
        (MassBackend::Segmented, "monitor_segmented_v1.ckpt"),
    ] {
        let bytes = canonical_monitor(backend).checkpoint_bytes().unwrap();
        std::fs::write(fixture_path(name), &bytes).unwrap();
    }
}
