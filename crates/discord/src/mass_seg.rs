//! Segmented MASS: block-transform sliding dot products with O(chunk)
//! append and eviction.
//!
//! [`MassPrecomputed`] caches **one**
//! monolithic spectrum of the zero-padded series, so every
//! [`append`](crate::mass::MassPrecomputed::append) re-transforms the
//! whole padded buffer at `O(S log S)` — the transform grows with the
//! *history*, not with the appended chunk, and sustained streaming
//! ingest collapses as the series grows. [`SegmentedMass`] removes that
//! tax with overlap-save convolution: the series is held as fixed-size
//! blocks of `B` points (a power of two, [`DEFAULT_BLOCK_SIZE`] by
//! default), each with its own cached forward spectrum at transform
//! size `2B` from the process-wide plan cache.
//!
//! * A query's sliding dot products are computed **per block**: the
//!   spectrum of the two-block segment `[b, b+2)` is combined pointwise
//!   from the cached spectra of blocks `b` and `b+1` — shifting block
//!   `b+1` by `B` samples at transform size `2B` multiplies bin `k` by
//!   `(−1)^k`, so the segment spectrum is `S_b[k] + (−1)^k · S_{b+1}[k]`
//!   with **no extra transform** — then one conjugate multiply and one
//!   inverse transform yield the `B` alias-free lags the block owns
//!   (valid because `m ≤ B + 1`). Per query: one forward transform of
//!   the query plus one inverse per block, `O((n/B) · B log B)` =
//!   `O(n log B)`.
//! * [`SegmentedMass::append`] re-transforms **only the tail block(s)**
//!   the new points landed in — `O(c + B log B)` for a chunk of `c`
//!   points, independent of the series length.
//! * [`SegmentedMass::evict_front`] drops whole leading blocks and
//!   rebases the window statistics — **zero FFT work**; the dead prefix
//!   inside the first surviving block (< `B` points) is retained so the
//!   block grid never shifts.
//!
//! # Versioned parity contract
//!
//! FFT rounding depends on the transform layout, so the segmented path
//! **cannot** be bit-identical to the monolithic spectrum. The crate
//! therefore versions its determinism guarantee via
//! [`MassBackend`]:
//!
//! * [`MassBackend::Exact`] — [`MassPrecomputed`]: the oracle. Every
//!   finished profile is **bit-identical** to a fresh batch build; all
//!   pre-existing tests and CI bit-parity gates run on this backend,
//!   byte-for-byte unchanged.
//! * [`MassBackend::Segmented`] — [`SegmentedMass`]: the fast path.
//!   Distance profiles agree with the exact backend (and with the
//!   brute-force z-norm spec) to **≤ 1e-9 absolute** outside exclusion
//!   zones, property-tested across random append/evict/step schedules
//!   (`tests/segmented_proptests.rs`).
//!
//! Select the backend on construction:
//! [`StreamingDiscordMonitor::with_backend`](crate::streaming::StreamingDiscordMonitor::with_backend),
//! [`AnytimeStamp::with_backend`](crate::anytime::AnytimeStamp::with_backend),
//! or [`stamp_with_backend`](crate::stamp::stamp_with_backend).
//!
//! # Rolling refresh (MPX-style centered covariance)
//!
//! Within one generation of the series (no append/evict in between),
//! consecutive queries `q, q+1, q+2, …` advance by the diagonal
//! recurrence on the **centered** covariance
//! `C(a, b) = Σ_k (x[a+k] − μ_a)(x[b+k] − μ_b)`:
//!
//! ```text
//! C(a+1, b+1) = C(a, b) + df[a]·dg[b] + df[b]·dg[a]
//! df[i] = (x[i+m] − x[i]) / 2
//! dg[i] = (x[i+m] − μ[i+1]) + (x[i] − μ[i])
//! ```
//!
//! the FFT-free kernel of the MPX/SCAMP family. Centering sidesteps the
//! catastrophic cancellation of `qt − m·μ_i·μ_j` that makes raw-dot
//! rolling drift, so a rolled row stays within ~1e-12 of the exact
//! backend outside exclusion zones even over thousand-step chains
//! (chains reseed from a fresh per-block FFT row every
//! [`MAX_ROLL_CHAIN`] steps as a hard error bound). A rolled query
//! costs `O(n)` with a ~4-flop inner loop — this is what makes the
//! segmented streaming refresh ~8× faster per query than the exact
//! backend, on top of the O(chunk) append.
//!
//! # Example: backend selection
//!
//! ```
//! use egi_discord::mass_seg::{MassBackend, SegmentedMass, SegScratch};
//! use egi_discord::streaming::StreamingDiscordMonitor;
//!
//! let series: Vec<f64> = (0..512).map(|i| (i as f64 * 0.3).sin()).collect();
//! let m = 16;
//!
//! // Direct use of the segmented kernel…
//! let seg = SegmentedMass::new(&series, m);
//! let mut scratch = SegScratch::default();
//! let mut dp = Vec::new();
//! seg.distance_profile_into(40, &mut scratch, &mut dp);
//! assert_eq!(dp.len(), seg.window_count());
//!
//! // …and through the streaming monitor (Exact stays the default).
//! let mut fast = StreamingDiscordMonitor::with_backend(
//!     m, m / 2, 0, MassBackend::Segmented,
//! );
//! fast.append(&series);
//! let profile = fast.finish();
//! let oracle = egi_discord::stamp::stamp_with_exclusion(&series, m, m / 2);
//! for (a, b) in profile.profile.iter().zip(&oracle.profile) {
//!     assert!((a - b).abs() <= 1e-9);
//! }
//! ```

use std::sync::Arc;

use egi_tskit::stats::PrefixStats;

use crate::dist::WindowStats;
use crate::fft::{c_conj, c_mul, cached_real_plan, next_pow2, Complex, RealFftPlan};
use crate::mass::{MassPrecomputed, MassScratch};

/// Default block size `B` for [`SegmentedMass::new`]. Each block owns a
/// cached spectrum at transform size `2B`; per-query cost is minimized
/// for `B` a small multiple of the window length, while append cost per
/// chunk is one `O(B log B)` tail-block re-transform.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// Hard cap on the length of a rolled query chain before the next query
/// reseeds from a fresh per-block FFT row. Measured centered-covariance
/// drift is ~1e-12 at 1024 steps; the cap keeps worst-case drift orders
/// of magnitude under the 1e-9 parity budget no matter how long a
/// caller streams between appends.
pub const MAX_ROLL_CHAIN: usize = 4096;

/// Which MASS kernel a driver (streaming monitor, anytime STAMP) runs
/// on — the crate's versioned parity contract. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MassBackend {
    /// [`MassPrecomputed`]: monolithic spectrum, `O(S log S)` append,
    /// finished profiles **bit-identical** to batch builds. The oracle
    /// every CI bit-parity gate runs on.
    #[default]
    Exact,
    /// [`SegmentedMass`]: block spectra, `O(chunk)` append/evict,
    /// rolled refresh — profiles within **≤ 1e-9 absolute** of the
    /// exact backend (property-tested), not bitwise.
    Segmented,
}

/// Reusable buffers for [`SegmentedMass`] queries, plus the rolled-chain
/// state (`cov` row and position) that lets consecutive queries advance
/// by the centered-covariance recurrence instead of re-running the FFT
/// path. One scratch per driving loop; dropping it only costs the next
/// query a reseed.
#[derive(Debug, Clone, Default)]
pub struct SegScratch {
    qpad: Vec<f64>,
    qspec: Vec<Complex>,
    prod: Vec<Complex>,
    corr: Vec<f64>,
    fft: Vec<Complex>,
    /// Centered covariance row `C(last_q, ·)` of the last rolled query.
    cov: Vec<f64>,
    /// `(generation, q, chain_len)` of the row held in `cov`; `None`
    /// (or a stale generation) forces the next query to reseed.
    last: Option<(u64, usize, usize)>,
}

impl SegScratch {
    /// The rolled-chain state, if a row is held:
    /// `(generation, last_q, chain_len, cov_row)`. Checkpointing
    /// serializes this — a restored monitor that *reseeded* instead of
    /// continuing the roll would diverge from the uninterrupted run at
    /// the ulp level, breaking restore bit-parity.
    pub fn rolled_row(&self) -> Option<(u64, usize, usize, &[f64])> {
        self.last.map(|(g, q, c)| (g, q, c, self.cov.as_slice()))
    }

    /// Reinstates a rolled-chain row previously read via
    /// [`rolled_row`](Self::rolled_row). The generation must match the
    /// engine's or the row is (harmlessly) ignored on the next query.
    pub fn set_rolled_row(&mut self, generation: u64, q: usize, chain: usize, cov: Vec<f64>) {
        self.cov = cov;
        self.last = Some((generation, q, chain));
    }
}

/// Sliding-dot-product engine over a block-segmented series — the
/// [`MassBackend::Segmented`] kernel. See the [module docs](self) for
/// the layout, cost model, and parity contract.
#[derive(Debug, Clone)]
pub struct SegmentedMass {
    m: usize,
    /// Block size `B` (power of two, ≥ `m`).
    block: usize,
    /// Transform size `2B`.
    fsize: usize,
    plan: Arc<RealFftPlan>,
    /// Dead prefix inside the first block (`0 ≤ head < block`): evicted
    /// points that keep the block grid anchored. Live data is
    /// `series[head..]`.
    head: usize,
    /// Grid-aligned storage: block `b` covers `series[b·B .. (b+1)·B]`.
    series: Vec<f64>,
    /// Cached forward spectrum of each zero-padded block at size `2B`.
    specs: Vec<Vec<Complex>>,
    /// Prefix sums over the **live** series (`series[head..]`).
    prefix: PrefixStats,
    /// Per-window statistics over the live series.
    stats: WindowStats,
    /// `df[i] = (x[i+m] − x[i]) / 2` over the live series.
    df: Vec<f64>,
    /// `dg[i] = (x[i+m] − μ[i+1]) + (x[i] − μ[i])` over the live series.
    dg: Vec<f64>,
    /// Bumped on every append/evict; invalidates rolled chains.
    generation: u64,
    fft_scratch: Vec<Complex>,
    block_pad: Vec<f64>,
}

impl SegmentedMass {
    /// Builds a segmented engine with block size
    /// `max(`[`DEFAULT_BLOCK_SIZE`]`, next_pow2(m))`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > series.len()`.
    pub fn new(series: &[f64], m: usize) -> Self {
        Self::with_block_size(series, m, DEFAULT_BLOCK_SIZE.max(next_pow2(m)))
    }

    /// Builds a segmented engine with an explicit block size `B` —
    /// memory-bound tests use small blocks so the `O(B)` terms stay
    /// visible next to tiny retention windows.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`, `m > series.len()`, `block` is not a power
    /// of two, or `block < m` (a window must fit inside the alias-free
    /// span `2B − m ≥ B − 1` of a two-block segment).
    pub fn with_block_size(series: &[f64], m: usize, block: usize) -> Self {
        assert!(m > 0, "window must be positive");
        assert!(m <= series.len(), "window longer than series");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(block >= m, "block size {block} smaller than window {m}");
        let fsize = 2 * block;
        let prefix = PrefixStats::new(series);
        let stats = WindowStats::from_prefix(&prefix, m);
        let mut seg = Self {
            m,
            block,
            fsize,
            plan: cached_real_plan(fsize),
            head: 0,
            series: series.to_vec(),
            specs: Vec::new(),
            prefix,
            stats,
            df: Vec::new(),
            dg: Vec::new(),
            generation: 0,
            fft_scratch: Vec::new(),
            block_pad: Vec::new(),
        };
        seg.retransform_blocks(0);
        seg.extend_deltas();
        seg
    }

    /// Rebuilds an engine from checkpointed grid state: the
    /// grid-aligned series (dead prefix included), the dead-prefix
    /// length, and the generation counter. Block spectra, prefix sums,
    /// window statistics, and the `df`/`dg` delta rows are re-derived —
    /// each is a pure per-entry function of the grid contents, so the
    /// rebuilt values are bit-identical to the evolved originals and
    /// checkpoints stay `O(series)` small. The grid layout itself
    /// (`head`, block boundaries) **must** round-trip: it fixes the FFT
    /// transform layout, and with it the kernel's exact rounding.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (`m == 0`, non-power-of-two or
    /// undersized `block`, `head ≥ block`, fewer than `m` live points) —
    /// checkpoint loaders validate and return a typed error first.
    pub fn restore(grid: Vec<f64>, head: usize, m: usize, block: usize, generation: u64) -> Self {
        assert!(m > 0, "window must be positive");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(block >= m, "block size {block} smaller than window {m}");
        assert!(
            head < block,
            "dead prefix {head} not below block size {block}"
        );
        assert!(
            head + m <= grid.len(),
            "fewer than m = {m} live points in the grid"
        );
        let fsize = 2 * block;
        let prefix = PrefixStats::new(&grid[head..]);
        let stats = WindowStats::from_prefix(&prefix, m);
        let mut seg = Self {
            m,
            block,
            fsize,
            plan: cached_real_plan(fsize),
            head,
            series: grid,
            specs: Vec::new(),
            prefix,
            stats,
            df: Vec::new(),
            dg: Vec::new(),
            generation,
            fft_scratch: Vec::new(),
            block_pad: Vec::new(),
        };
        seg.retransform_blocks(0);
        seg.extend_deltas();
        seg
    }

    /// The grid-aligned storage (dead prefix **included**) — what a
    /// checkpoint serializes; pair with [`dead_prefix`](Self::dead_prefix)
    /// and [`restore`](Self::restore).
    pub fn grid_series(&self) -> &[f64] {
        &self.series
    }

    /// Re-transforms every block from `from` to the end of the series
    /// (blocks are independent, so earlier spectra stay valid).
    fn retransform_blocks(&mut self, from: usize) {
        let nblocks = self.series.len().div_ceil(self.block).max(1);
        self.specs.truncate(nblocks);
        while self.specs.len() < nblocks {
            self.specs.push(Vec::new());
        }
        for b in from..nblocks {
            let lo = b * self.block;
            let hi = (lo + self.block).min(self.series.len());
            self.block_pad.clear();
            self.block_pad.resize(self.fsize, 0.0);
            self.block_pad[..hi - lo].copy_from_slice(&self.series[lo..hi]);
            self.plan
                .forward_into(&self.block_pad, &mut self.specs[b], &mut self.fft_scratch);
        }
    }

    /// Extends `df`/`dg` to cover every live window transition.
    fn extend_deltas(&mut self) {
        let live = &self.series[self.head..];
        let count = self.stats.count();
        let transitions = count.saturating_sub(1);
        let (mu, m) = (&self.stats.mu, self.m);
        for i in self.df.len()..transitions {
            self.df.push((live[i + m] - live[i]) / 2.0);
            self.dg.push((live[i + m] - mu[i + 1]) + (live[i] - mu[i]));
        }
    }

    /// Appends points: `O(points)` bookkeeping plus one `O(B log B)`
    /// re-transform per tail block the new points touch — **independent
    /// of the series length**, the whole reason this backend exists.
    /// (Compare [`MassPrecomputed::append`], which re-transforms the
    /// entire `O(S log S)` padded history every call.)
    pub fn append(&mut self, points: &[f64]) {
        if points.is_empty() {
            return;
        }
        let old_len = self.series.len();
        self.series.extend_from_slice(points);
        self.retransform_blocks(old_len / self.block);
        self.prefix.extend(points);
        self.stats.extend_from_prefix(&self.prefix);
        self.extend_deltas();
        self.generation += 1;
    }

    /// Retires the oldest `count` live points: whole leading blocks are
    /// dropped and the window statistics rebase onto the suffix —
    /// **zero FFT work** (block spectra are position-independent on the
    /// grid; compare [`MassPrecomputed::evict_front`], which must
    /// re-transform the whole shrunken buffer). Up to `B − 1` dead
    /// points may be retained inside the first surviving block to keep
    /// the grid anchored; they are dropped with the block once the head
    /// crosses its boundary.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` points would survive — callers enforce
    /// the non-panicking [`EvictError`](egi_tskit::EvictError) contract
    /// before touching this layer, exactly as for the exact backend.
    pub fn evict_front(&mut self, count: usize) {
        if count == 0 {
            return;
        }
        let live = self.series.len() - self.head;
        assert!(
            count <= live && live - count >= self.m,
            "eviction of {count} points would leave fewer than m = {} of {live}",
            self.m,
        );
        let new_head = self.head + count;
        let drop_blocks = new_head / self.block;
        if drop_blocks > 0 {
            self.series.drain(..drop_blocks * self.block);
            self.specs.drain(..drop_blocks);
        }
        self.head = new_head - drop_blocks * self.block;
        self.prefix.rebase(&self.series[self.head..]);
        self.stats.rebase_from_prefix(&self.prefix);
        self.df.clear();
        self.dg.clear();
        self.extend_deltas();
        self.generation += 1;
    }

    /// Window length `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of sliding windows over the live series.
    pub fn window_count(&self) -> usize {
        self.stats.count()
    }

    /// The live series (dead grid prefix excluded).
    pub fn series(&self) -> &[f64] {
        &self.series[self.head..]
    }

    /// The cached per-window statistics (live indices).
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// Block size `B`.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Per-block transform size `2B` — **constant** for the lifetime of
    /// the engine, unlike the exact backend's padded size, which grows
    /// with the series.
    pub fn transform_size(&self) -> usize {
        self.fsize
    }

    /// Number of live blocks (`⌈(head + live) / B⌉`).
    pub fn block_count(&self) -> usize {
        self.specs.len()
    }

    /// Dead points retained inside the first block (`< B`).
    pub fn dead_prefix(&self) -> usize {
        self.head
    }

    /// Capacity (in `f64`s) of the grid-aligned series buffer — for
    /// memory-bound assertions: stays `O(n + chunk + B)` under a
    /// retention policy.
    pub fn series_capacity(&self) -> usize {
        self.series.capacity()
    }

    /// Total capacity (in complex bins) across all cached block
    /// spectra — `block_count · (B + 1)` plus slack, i.e.
    /// `O(n + chunk + B)` under a retention policy.
    pub fn spectra_capacity(&self) -> usize {
        self.specs.iter().map(Vec::capacity).sum()
    }

    /// Bumped on every append/evict; a [`SegScratch`] holding a rolled
    /// row from an older generation reseeds on its next query.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Releases slack capacity across the block store: shrinks the
    /// grid-aligned series buffer, every cached block spectrum (and the
    /// spectra list itself), the prefix/window statistics, the delta
    /// rows, and the transform scratch. Purely an allocation-level
    /// operation — values are untouched, so the ≤1e-9 parity contract
    /// is unaffected.
    pub fn compact(&mut self) {
        self.series.shrink_to_fit();
        for spec in &mut self.specs {
            spec.shrink_to_fit();
        }
        self.specs.shrink_to_fit();
        self.prefix.shrink_to_fit();
        self.stats.mu.shrink_to_fit();
        self.stats.sigma.shrink_to_fit();
        self.df.shrink_to_fit();
        self.dg.shrink_to_fit();
        self.fft_scratch.shrink_to_fit();
        self.block_pad.shrink_to_fit();
    }

    /// Sliding dot products of live window `q` against every live
    /// window, via per-block overlap-save convolution. `out` is cleared
    /// and filled to [`window_count`](Self::window_count) values.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a valid window start.
    pub fn sliding_dots_into(&self, q: usize, scratch: &mut SegScratch, out: &mut Vec<f64>) {
        let count = self.window_count();
        assert!(q < count, "query start {q} out of range ({count} windows)");
        let g = self.head + q;
        out.clear();
        out.resize(count, 0.0);
        scratch.qpad.clear();
        scratch.qpad.resize(self.fsize, 0.0);
        scratch.qpad[..self.m].copy_from_slice(&self.series[g..g + self.m]);
        self.plan
            .forward_into(&scratch.qpad, &mut scratch.qspec, &mut scratch.fft);
        for b in 0..self.specs.len() {
            let lo = b * self.block;
            if lo >= self.head + count {
                break; // no live lag starts in this block
            }
            let sb = &self.specs[b];
            scratch.prod.clear();
            match self.specs.get(b + 1) {
                // Segment [b, b+2): shift block b+1 by B at size 2B —
                // bin k picks up a factor (−1)^k, no extra transform.
                Some(nx) => scratch.prod.extend(
                    scratch.qspec.iter().zip(sb.iter().zip(nx)).enumerate().map(
                        |(k, (&qs, (&s0, &s1)))| {
                            let seg = if k % 2 == 0 {
                                (s0.0 + s1.0, s0.1 + s1.1)
                            } else {
                                (s0.0 - s1.0, s0.1 - s1.1)
                            };
                            c_mul(c_conj(qs), seg)
                        },
                    ),
                ),
                None => scratch.prod.extend(
                    scratch
                        .qspec
                        .iter()
                        .zip(sb)
                        .map(|(&qs, &s0)| c_mul(c_conj(qs), s0)),
                ),
            }
            self.plan
                .inverse_into(&scratch.prod, &mut scratch.corr, &mut scratch.fft);
            // Block b owns grid lags [b·B, b·B + B); lags up to 2B − m
            // are alias-free, which covers the whole span since m ≤ B+1.
            for (t, &c) in scratch.corr[..self.block].iter().enumerate() {
                let grid = lo + t;
                if grid < self.head {
                    continue;
                }
                let j = grid - self.head;
                if j >= count {
                    break;
                }
                out[j] = c;
            }
        }
    }

    /// The z-normalized distance profile of live window `q`, on the
    /// per-block FFT path. `out` is cleared and filled to
    /// [`window_count`](Self::window_count) values.
    pub fn distance_profile_into(&self, q: usize, scratch: &mut SegScratch, out: &mut Vec<f64>) {
        self.sliding_dots_into(q, scratch, out);
        for (j, v) in out.iter_mut().enumerate() {
            *v = self.stats.dist(q, j, *v);
        }
    }

    /// Convenience wrapper allocating the output and a scratch.
    pub fn distance_profile(&self, q: usize) -> Vec<f64> {
        let mut scratch = SegScratch::default();
        let mut out = Vec::new();
        self.distance_profile_into(q, &mut scratch, &mut out);
        out
    }

    /// The distance profile of live window `q`, advancing by the
    /// centered-covariance rolling recurrence when `scratch` holds the
    /// row of `q − 1` from the current generation (and the chain is
    /// under [`MAX_ROLL_CHAIN`]); otherwise seeds via
    /// [`distance_profile_into`](Self::distance_profile_into)-equivalent
    /// FFT work and converts the dots to centered covariances.
    ///
    /// Sequential query schedules (the segmented streaming monitor, the
    /// segmented batch STAMP) hit the rolled path for all but the first
    /// query after any append/evict — `O(n)` per query with a ~4-flop
    /// inner loop instead of `O(n log B)` FFT work.
    pub fn rolling_profile_into(&self, q: usize, scratch: &mut SegScratch, out: &mut Vec<f64>) {
        let count = self.window_count();
        assert!(q < count, "query start {q} out of range ({count} windows)");
        egi_obs::counter!("egi_mass_seg_queries_total").inc();
        // A sequential successor query that only the chain cap keeps off
        // the rolled path is a roll-chain reset (the error-growth guard
        // forcing a fresh FFT seed).
        if let Some((generation, last_q, chain)) = scratch.last {
            if generation == self.generation && q == last_q + 1 && chain >= MAX_ROLL_CHAIN {
                egi_obs::counter!("egi_mass_seg_roll_chain_resets_total").inc();
            }
        }
        let m = self.m as f64;
        let rolled = match scratch.last {
            Some((generation, last_q, chain))
                if generation == self.generation
                    && q == last_q + 1
                    && chain < MAX_ROLL_CHAIN
                    && scratch.cov.len() == count =>
            {
                let a = last_q; // transition a -> a+1 = q
                let cov = &mut scratch.cov;
                let (df, dg) = (&self.df, &self.dg);
                for j in (1..count).rev() {
                    cov[j] = cov[j - 1] + df[a] * dg[j - 1] + df[j - 1] * dg[a];
                }
                cov[0] = self.centered_dot(q, 0);
                scratch.last = Some((self.generation, q, chain + 1));
                egi_obs::counter!("egi_mass_seg_rolled_total").inc();
                true
            }
            _ => false,
        };
        if !rolled {
            egi_obs::counter!("egi_mass_seg_fft_seeded_total").inc();
            // Seed: per-block FFT dots, centered once. The subtraction
            // is the same `qt − m·μ_i·μ_j` the z-norm identity performs,
            // so the seed row's distances match the FFT path bit for bit.
            self.sliding_dots_into(q, scratch, out);
            scratch.cov.clear();
            let mu_q = self.stats.mu[q];
            scratch.cov.extend(
                out.iter()
                    .zip(&self.stats.mu)
                    .map(|(&qt, &mu_j)| qt - m * mu_q * mu_j),
            );
            scratch.last = Some((self.generation, q, 0));
        }
        out.clear();
        out.extend(
            scratch
                .cov
                .iter()
                .enumerate()
                .map(|(j, &cov)| self.stats.dist_centered(q, j, cov)),
        );
    }

    /// Brute-force centered covariance `C(a, b)` over live windows —
    /// `O(m)`, used only for column 0 of a rolled row.
    fn centered_dot(&self, a: usize, b: usize) -> f64 {
        let live = &self.series[self.head..];
        let (mu_a, mu_b) = (self.stats.mu[a], self.stats.mu[b]);
        live[a..a + self.m]
            .iter()
            .zip(&live[b..b + self.m])
            .map(|(&x, &y)| (x - mu_a) * (y - mu_b))
            .sum()
    }
}

/// Sliding dot products of `query` against every window of `series` on
/// the segmented kernel: transforms at size `2·next_pow2(query.len())`
/// regardless of the series length, instead of
/// [`sliding_dot_products`](crate::fft::sliding_dot_products)' single
/// `next_pow2(series.len())` transform.
///
/// The monolithic kernel stays the default everywhere: it is the
/// crate's executable specification, pinned by 1e-9-and-index-equality
/// parity tests, and its bit pattern must not drift. Reach for this
/// variant when the query is much shorter than a very long series (the
/// monolithic padding tax is the `O(n log n)` full-length transform)
/// and toleranced output is acceptable; it agrees with the exact kernel
/// to ~1e-9 relative (property-tested), not bitwise.
///
/// # Panics
///
/// Panics if the query is empty or longer than the series.
pub fn sliding_dot_products_segmented(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    assert!(m > 0, "empty query");
    assert!(m <= series.len(), "query longer than series");
    let block = next_pow2(m).max(2);
    let fsize = 2 * block;
    let plan = cached_real_plan(fsize);
    let mut fft_scratch = Vec::new();
    let mut pad = vec![0.0; fsize];
    pad[..m].copy_from_slice(query);
    let mut qspec = Vec::new();
    plan.forward_into(&pad, &mut qspec, &mut fft_scratch);
    let nblocks = series.len().div_ceil(block);
    let mut specs: Vec<Vec<Complex>> = vec![Vec::new(); nblocks];
    for (b, spec) in specs.iter_mut().enumerate() {
        let lo = b * block;
        let hi = (lo + block).min(series.len());
        pad.iter_mut().for_each(|v| *v = 0.0);
        pad[..hi - lo].copy_from_slice(&series[lo..hi]);
        plan.forward_into(&pad, spec, &mut fft_scratch);
    }
    let count = series.len() - m + 1;
    let mut out = vec![0.0; count];
    let (mut prod, mut corr) = (Vec::new(), Vec::new());
    for b in 0..nblocks {
        let lo = b * block;
        if lo >= count {
            break;
        }
        prod.clear();
        match specs.get(b + 1) {
            Some(nx) => prod.extend(qspec.iter().zip(specs[b].iter().zip(nx)).enumerate().map(
                |(k, (&qs, (&s0, &s1)))| {
                    let seg = if k % 2 == 0 {
                        (s0.0 + s1.0, s0.1 + s1.1)
                    } else {
                        (s0.0 - s1.0, s0.1 - s1.1)
                    };
                    c_mul(c_conj(qs), seg)
                },
            )),
            None => prod.extend(
                qspec
                    .iter()
                    .zip(&specs[b])
                    .map(|(&qs, &s0)| c_mul(c_conj(qs), s0)),
            ),
        }
        plan.inverse_into(&prod, &mut corr, &mut fft_scratch);
        for (t, &c) in corr[..block.min(count - lo)].iter().enumerate() {
            out[lo + t] = c;
        }
    }
    out
}

/// Backend dispatch for the drivers (streaming monitor, anytime STAMP):
/// one engine value, two kernels, selected by [`MassBackend`] at
/// construction. The exact arm forwards verbatim to [`MassPrecomputed`]
/// so every bitwise contract is untouched.
#[derive(Debug, Clone)]
pub enum MassEngine {
    /// The bit-exact oracle.
    Exact(MassPrecomputed),
    /// The toleranced fast path.
    Segmented(SegmentedMass),
}

/// Scratch for [`MassEngine`]: both kernels' buffers side by side (the
/// unused side stays empty and costs nothing).
#[derive(Debug, Clone, Default)]
pub struct EngineScratch {
    /// Exact-kernel buffers.
    pub exact: MassScratch,
    /// Segmented-kernel buffers and rolled-chain state.
    pub seg: SegScratch,
}

impl MassEngine {
    /// Builds the engine `backend` selects over `series`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m > series.len()`.
    pub fn new(series: &[f64], m: usize, backend: MassBackend) -> Self {
        match backend {
            MassBackend::Exact => Self::Exact(MassPrecomputed::new(series, m)),
            MassBackend::Segmented => Self::Segmented(SegmentedMass::new(series, m)),
        }
    }

    /// Which backend this engine runs.
    pub fn backend(&self) -> MassBackend {
        match self {
            Self::Exact(_) => MassBackend::Exact,
            Self::Segmented(_) => MassBackend::Segmented,
        }
    }

    /// Appends points (see each kernel's cost model).
    pub fn append(&mut self, points: &[f64]) {
        match self {
            Self::Exact(mass) => mass.append(points),
            Self::Segmented(seg) => seg.append(points),
        }
    }

    /// Retires the oldest `count` live points.
    pub fn evict_front(&mut self, count: usize) {
        match self {
            Self::Exact(mass) => mass.evict_front(count),
            Self::Segmented(seg) => seg.evict_front(count),
        }
    }

    /// Window length `m`.
    pub fn m(&self) -> usize {
        match self {
            Self::Exact(mass) => mass.m(),
            Self::Segmented(seg) => seg.m(),
        }
    }

    /// Number of live sliding windows.
    pub fn window_count(&self) -> usize {
        match self {
            Self::Exact(mass) => mass.window_count(),
            Self::Segmented(seg) => seg.window_count(),
        }
    }

    /// The live series.
    pub fn series(&self) -> &[f64] {
        match self {
            Self::Exact(mass) => mass.series(),
            Self::Segmented(seg) => seg.series(),
        }
    }

    /// The distance profile of window `q`. The exact arm is the
    /// bit-stable [`MassPrecomputed::distance_profile_into`]; the
    /// segmented arm uses the rolling path
    /// ([`SegmentedMass::rolling_profile_into`]), so sequential query
    /// schedules amortize to `O(n)` per query.
    pub fn distance_profile_into(&self, q: usize, scratch: &mut EngineScratch, out: &mut Vec<f64>) {
        match self {
            Self::Exact(mass) => mass.distance_profile_into(q, &mut scratch.exact, out),
            Self::Segmented(seg) => seg.rolling_profile_into(q, &mut scratch.seg, out),
        }
    }

    /// Current FFT transform size: the exact backend's padded size
    /// (grows with the series) or the segmented backend's fixed `2B`.
    pub fn padded_size(&self) -> usize {
        match self {
            Self::Exact(mass) => mass.padded_size(),
            Self::Segmented(seg) => seg.transform_size(),
        }
    }

    /// Capacity (in `f64`s) retained by the live series buffer.
    pub fn series_capacity(&self) -> usize {
        match self {
            Self::Exact(mass) => mass.series_capacity(),
            Self::Segmented(seg) => seg.series_capacity(),
        }
    }

    /// Capacity (in `f64`s) of the append/evict-path padded buffer
    /// (exact) or one block transform (segmented).
    pub fn padded_capacity(&self) -> usize {
        match self {
            Self::Exact(mass) => mass.padded_capacity(),
            Self::Segmented(seg) => seg.transform_size(),
        }
    }

    /// Releases slack capacity in whichever kernel is live (see
    /// [`MassPrecomputed::compact`] / [`SegmentedMass::compact`]).
    /// Values are untouched; every parity contract holds.
    pub fn compact(&mut self) {
        match self {
            Self::Exact(mass) => mass.compact(),
            Self::Segmented(seg) => seg.compact(),
        }
    }

    /// Block-store shape `(block_count, block_size, spectra_capacity)`
    /// for memory-bound assertions; `None` on the exact backend.
    pub fn block_store(&self) -> Option<(usize, usize, usize)> {
        match self {
            Self::Exact(_) => None,
            Self::Segmented(seg) => {
                Some((seg.block_count(), seg.block_size(), seg.spectra_capacity()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::znorm_euclidean;
    use crate::fft::sliding_dot_products;

    fn test_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 0.19).sin() * 1.4 + 0.6 * (t * 0.043).cos() + ((i * 37) % 17) as f64 * 0.04
            })
            .collect()
    }

    /// Absolute/relative hybrid: dots are O(m · amplitude²), distances
    /// O(√m); both compare under the PR's 1e-9 parity budget.
    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn segmented_dots_match_monolithic_kernel() {
        let series = test_series(700);
        let m = 24;
        for &block in &[32usize, 64, 256, 1024] {
            let seg = SegmentedMass::with_block_size(&series, m, block);
            let mut scratch = SegScratch::default();
            let mut dots = Vec::new();
            for q in [0usize, 13, 350, 676] {
                seg.sliding_dots_into(q, &mut scratch, &mut dots);
                let reference = sliding_dot_products(&series[q..q + m], &series);
                assert_eq!(dots.len(), reference.len());
                for (j, (&a, &b)) in dots.iter().zip(&reference).enumerate() {
                    assert!(close(a, b), "B={block} q={q} j={j}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn segmented_profile_matches_exact_backend_to_1e9() {
        let series = test_series(900);
        let m = 16;
        let exact = MassPrecomputed::new(&series, m);
        let seg = SegmentedMass::with_block_size(&series, m, 128);
        let mut scratch = SegScratch::default();
        let mut dp = Vec::new();
        for q in [0usize, 100, 555, 884] {
            seg.distance_profile_into(q, &mut scratch, &mut dp);
            let reference = exact.distance_profile(q);
            for (j, (&a, &b)) in dp.iter().zip(&reference).enumerate() {
                if q.abs_diff(j) <= m {
                    // Self-match band: true distance ≈ 0, where √ amplifies
                    // corr rounding to ~1e-7 on *either* kernel. Never
                    // folded into a profile (exclusion zone ≥ this band).
                    continue;
                }
                assert!((a - b).abs() <= 1e-9, "q={q} j={j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn segmented_profile_matches_brute_znorm_spec() {
        let series = test_series(300);
        let m = 12;
        let seg = SegmentedMass::with_block_size(&series, m, 64);
        let rescale = (m as f64 / (m as f64 - 1.0)).sqrt();
        let dp = seg.distance_profile(40);
        for (j, &d) in dp.iter().enumerate() {
            let brute = znorm_euclidean(&series[40..40 + m], &series[j..j + m]) * rescale;
            assert!(
                (d - brute).abs() < 1e-6,
                "j={j}: segmented {d} vs brute {brute}"
            );
        }
    }

    #[test]
    fn append_matches_fresh_build_within_tolerance() {
        let series = test_series(600);
        let m = 10;
        let mut seg = SegmentedMass::with_block_size(&series[..250], m, 64);
        for chunk in series[250..].chunks(37) {
            seg.append(chunk);
        }
        assert_eq!(seg.window_count(), series.len() - m + 1);
        assert_eq!(seg.series(), &series[..]);
        let fresh = SegmentedMass::with_block_size(&series, m, 64);
        let mut scratch = SegScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for q in [0usize, 111, 400, 590] {
            seg.distance_profile_into(q, &mut scratch, &mut a);
            fresh.distance_profile_into(q, &mut scratch, &mut b);
            // Appended and fresh engines share the same block layout, so
            // the spectra — and therefore the profiles — are identical.
            assert_eq!(a, b, "q={q}");
        }
    }

    #[test]
    fn evict_drops_whole_blocks_and_keeps_profiles() {
        let series = test_series(640);
        let m = 14;
        for cut in [1usize, 63, 64, 65, 200, 511] {
            let mut seg = SegmentedMass::with_block_size(&series, m, 64);
            let blocks_before = seg.block_count();
            seg.evict_front(cut);
            assert_eq!(seg.series(), &series[cut..], "cut {cut}");
            assert_eq!(seg.dead_prefix(), cut % 64, "cut {cut}");
            assert_eq!(seg.block_count(), blocks_before - cut / 64, "cut {cut}");
            // Suffix profiles agree with an exact engine over the suffix.
            let exact = MassPrecomputed::new(&series[cut..], m);
            let q = seg.window_count() / 2;
            let dp = seg.distance_profile(q);
            let reference = exact.distance_profile(q);
            for (j, (&a, &b)) in dp.iter().zip(&reference).enumerate() {
                if q.abs_diff(j) <= m {
                    continue; // self-match band, see parity test above
                }
                assert!((a - b).abs() <= 1e-9, "cut={cut} j={j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rolling_chain_matches_fft_path() {
        let series = test_series(800);
        let m = 20;
        let seg = SegmentedMass::with_block_size(&series, m, 128);
        let mut rolling = SegScratch::default();
        let mut fresh = SegScratch::default();
        let (mut rolled, mut seeded) = (Vec::new(), Vec::new());
        for q in 0..seg.window_count() {
            seg.rolling_profile_into(q, &mut rolling, &mut rolled);
            seg.distance_profile_into(q, &mut fresh, &mut seeded);
            for (j, (&a, &b)) in rolled.iter().zip(&seeded).enumerate() {
                if q.abs_diff(j) <= m {
                    continue; // exclusion-band values never reach a fold
                }
                assert!((a - b).abs() <= 1e-9, "q={q} j={j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rolling_reseeds_after_append_and_out_of_order() {
        let series = test_series(500);
        let m = 8;
        let mut seg = SegmentedMass::with_block_size(&series[..400], m, 64);
        let mut scratch = SegScratch::default();
        let mut dp = Vec::new();
        seg.rolling_profile_into(10, &mut scratch, &mut dp);
        seg.rolling_profile_into(11, &mut scratch, &mut dp); // rolls
        let gen_before = seg.generation();
        seg.append(&series[400..]);
        assert_eq!(seg.generation(), gen_before + 1);
        // Stale generation: must reseed, and cover the new windows.
        seg.rolling_profile_into(12, &mut scratch, &mut dp);
        assert_eq!(dp.len(), seg.window_count());
        let reference = seg.distance_profile(12);
        assert_eq!(dp, reference);
        // Out-of-order query: reseeds too.
        seg.rolling_profile_into(5, &mut scratch, &mut dp);
        assert_eq!(dp, seg.distance_profile(5));
    }

    #[test]
    fn segmented_free_function_matches_monolithic() {
        let series = test_series(2000);
        for &m in &[4usize, 16, 100] {
            let query = &series[37..37 + m];
            let fast = sliding_dot_products_segmented(query, &series);
            let reference = sliding_dot_products(query, &series);
            assert_eq!(fast.len(), reference.len());
            for (j, (&a, &b)) in fast.iter().zip(&reference).enumerate() {
                assert!(close(a, b), "m={m} j={j}: {a} vs {b}");
            }
        }
    }

    /// The padding regression the satellite pins: the monolithic kernel
    /// transforms at `next_pow2(n)` however short the query is, while
    /// the segmented kernel's transform size tracks only the query.
    #[test]
    fn segmented_kernel_transform_size_tracks_query_not_series() {
        let m = 16usize;
        let n = 20_000usize;
        // Monolithic: one transform at next_pow2(n) = 32768.
        assert_eq!(next_pow2(n).max(2), 32_768);
        // Segmented: blocks of next_pow2(m), transforms at 2·next_pow2(m).
        assert_eq!(2 * next_pow2(m).max(2), 32);
        // And the engine's per-query transform size is constant as the
        // series grows past every power of two.
        let series = test_series(700);
        let mut seg = SegmentedMass::with_block_size(&series[..300], m, 64);
        let size_before = seg.transform_size();
        seg.append(&series[300..]);
        assert_eq!(seg.transform_size(), size_before);
    }

    #[test]
    fn default_block_size_scales_with_window() {
        let series = test_series(9000);
        let seg = SegmentedMass::new(&series, 16);
        assert_eq!(seg.block_size(), DEFAULT_BLOCK_SIZE);
        let big = SegmentedMass::new(&series, 8000);
        assert_eq!(big.block_size(), 8192);
    }

    #[test]
    fn engine_dispatch_exposes_backend_shape() {
        let series = test_series(400);
        let m = 12;
        let exact = MassEngine::new(&series, m, MassBackend::Exact);
        let seg = MassEngine::new(&series, m, MassBackend::Segmented);
        assert_eq!(exact.backend(), MassBackend::Exact);
        assert_eq!(seg.backend(), MassBackend::Segmented);
        assert_eq!(exact.window_count(), seg.window_count());
        assert_eq!(exact.series(), seg.series());
        assert!(exact.block_store().is_none());
        let (blocks, block, spectra) = seg.block_store().unwrap();
        assert_eq!(block, DEFAULT_BLOCK_SIZE);
        assert_eq!(blocks, 1);
        assert!(spectra > DEFAULT_BLOCK_SIZE);
        // Exact padded size grows with the series; segmented stays 2B.
        assert_eq!(exact.padded_size(), 512);
        assert_eq!(seg.padded_size(), 2 * DEFAULT_BLOCK_SIZE);
        // Engine profiles agree within the parity budget.
        let mut se = EngineScratch::default();
        let mut ss = EngineScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        exact.distance_profile_into(7, &mut se, &mut a);
        seg.distance_profile_into(7, &mut ss, &mut b);
        for (j, (&x, &y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() <= 1e-9, "j={j}: {x} vs {y}");
        }
    }

    #[test]
    fn memory_stays_bounded_under_append_evict_cycles() {
        let m = 16usize;
        let n = 384usize;
        let chunk = 128usize;
        let block = 64usize;
        let series = test_series(n);
        let mut seg = SegmentedMass::with_block_size(&series, m, block);
        let mut fed = n;
        while fed < 8_000 {
            let part: Vec<f64> = (0..chunk)
                .map(|j| ((fed + j) as f64 * 0.11).sin() * 2.0)
                .collect();
            seg.append(&part);
            fed += chunk;
            let live = seg.series().len();
            let excess = live.saturating_sub(n);
            seg.evict_front(excess);
            assert!(seg.series().len() <= n);
            // Grid storage: live points + dead prefix (< B) + chunk slack.
            assert!(
                seg.series_capacity() <= 2 * (n + chunk + block),
                "series capacity {} exceeds {}",
                seg.series_capacity(),
                2 * (n + chunk + block)
            );
            // Spectra: one (B+1)-bin spectrum per live block.
            let max_blocks = (n + chunk + block).div_ceil(block);
            assert!(
                seg.block_count() <= max_blocks,
                "{} blocks exceed {max_blocks}",
                seg.block_count()
            );
            assert!(
                seg.spectra_capacity() <= 2 * max_blocks * (block + 1),
                "spectra capacity {} exceeds {}",
                seg.spectra_capacity(),
                2 * max_blocks * (block + 1)
            );
            assert_eq!(
                seg.transform_size(),
                2 * block,
                "transform size must stay flat"
            );
        }
    }

    /// The checkpoint contract at the kernel level: an engine rebuilt
    /// from its grid state produces **bit-identical** profiles to the
    /// evolved original — including rolled chains continued across the
    /// rebuild — because every derived table is a pure per-entry
    /// function of the grid contents.
    #[test]
    fn restore_from_grid_state_is_bit_identical() {
        let series = test_series(700);
        let m = 12;
        let mut seg = SegmentedMass::with_block_size(&series[..400], m, 64);
        seg.append(&series[400..600]);
        seg.evict_front(37);
        seg.append(&series[600..]);
        let restored = SegmentedMass::restore(
            seg.grid_series().to_vec(),
            seg.dead_prefix(),
            seg.m(),
            seg.block_size(),
            seg.generation(),
        );
        assert_eq!(restored.series(), seg.series());
        assert_eq!(restored.generation(), seg.generation());
        let mut s1 = SegScratch::default();
        let mut s2 = SegScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for q in 0..seg.window_count() - 1 {
            seg.rolling_profile_into(q, &mut s1, &mut a);
            restored.rolling_profile_into(q, &mut s2, &mut b);
            assert_eq!(a, b, "q={q}");
        }
        // A rolled row moved across the rebuild continues the chain
        // bit-exactly.
        let (g, q, chain, cov) = s1.rolled_row().unwrap();
        let mut resumed = SegScratch::default();
        resumed.set_rolled_row(g, q, chain, cov.to_vec());
        seg.rolling_profile_into(q + 1, &mut s1, &mut a);
        restored.rolling_profile_into(q + 1, &mut resumed, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "smaller than window")]
    fn undersized_block_rejected() {
        SegmentedMass::with_block_size(&test_series(100), 40, 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_rejected() {
        SegmentedMass::with_block_size(&test_series(100), 8, 48);
    }

    #[test]
    #[should_panic(expected = "would leave fewer than m")]
    fn over_eviction_rejected() {
        let mut seg = SegmentedMass::with_block_size(&test_series(100), 10, 32);
        seg.evict_front(95);
    }
}
