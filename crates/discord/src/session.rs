//! [`StreamSession`] wiring for [`StreamingDiscordMonitor`]: the
//! budgeted driver entry points (thin delegates to the trait's default
//! implementations, kept inherent so no caller needs a trait import)
//! and the trait impl itself, through which generic drivers — e.g. an
//! `egi-serve` fleet — schedule the monitor one [`step`] unit at a
//! time.
//!
//! [`step`]: StreamingDiscordMonitor::step

use std::time::Duration;

use egi_tskit::evict::EvictError;
use egi_tskit::session::StreamSession;

use crate::anytime::Deadline;
use crate::profile::MatrixProfile;
use crate::streaming::StreamingDiscordMonitor;

impl StreamingDiscordMonitor {
    /// Processes up to `n` pending queries; returns how many ran.
    pub fn run_for(&mut self, n: usize) -> usize {
        <Self as StreamSession>::run_for(self, n)
    }

    /// Processes pending queries until `deadline` expires or the
    /// monitor is current; returns how many ran. As in
    /// [`crate::anytime::AnytimeStamp::run_until`], the deadline is
    /// checked before each query, so it is never overshot by more than
    /// one query's work.
    pub fn run_until(&mut self, deadline: Deadline) -> usize {
        <Self as StreamSession>::run_until(self, deadline)
    }

    /// Processes pending queries for (at most) `budget` of wall-clock
    /// time — the "hard latency budget between appends" entry point.
    pub fn run_for_duration(&mut self, budget: Duration) -> usize {
        <Self as StreamSession>::run_for_duration(self, budget)
    }
}

/// The shared streaming-session contract: every method forwards to the
/// inherent implementation, so driving the monitor through the trait
/// (e.g. from an `egi-serve` fleet) is bit-identical to calling it
/// directly. One refresh *unit* is one MASS query.
impl StreamSession for StreamingDiscordMonitor {
    type Snapshot = MatrixProfile;
    type Report = MatrixProfile;

    fn append(&mut self, points: &[f64]) {
        StreamingDiscordMonitor::append(self, points);
    }

    fn step(&mut self) -> bool {
        StreamingDiscordMonitor::step(self)
    }

    fn evict(&mut self, count: usize) -> Result<(), EvictError> {
        StreamingDiscordMonitor::evict(self, count)
    }

    fn retain_last(&mut self, n: usize) -> Result<usize, EvictError> {
        StreamingDiscordMonitor::retain_last(self, n)
    }

    fn series_len(&self) -> usize {
        StreamingDiscordMonitor::series_len(self)
    }

    fn pending_units(&self) -> usize {
        self.pending()
    }

    fn stream_offset(&self) -> usize {
        StreamingDiscordMonitor::stream_offset(self)
    }

    fn is_current(&self) -> bool {
        StreamingDiscordMonitor::is_current(self)
    }

    fn snapshot(&self) -> MatrixProfile {
        StreamingDiscordMonitor::snapshot(self)
    }

    fn finish(&mut self) -> MatrixProfile {
        StreamingDiscordMonitor::finish(self)
    }
}
