//! The matrix profile type, discord extraction, and the shared
//! `(distance, index)` tie-break rule.

use egi_tskit::window::intervals_overlap;

/// `(distance, index)` lexicographic improvement: `(d, idx)` beats
/// `(best_d, best_idx)` iff it is strictly smaller under the total order
/// *distance first, neighbor index second*.
///
/// Every profile fold in this crate (STOMP's diagonal merge, STAMP's
/// per-query fold, the anytime/parallel STAMP partial-profile merge) uses
/// this single rule. Because min-folding under a total order is
/// commutative and associative, any processing order — row sweep,
/// diagonal chunks, random query permutations, per-thread partials —
/// produces the *same* profile and index vectors, including on exact
/// distance ties (the smallest neighbor index wins).
///
/// A fresh slot is `(f64::INFINITY, usize::MAX)`: any finite distance
/// improves it.
#[inline]
pub fn improves(d: f64, idx: usize, best_d: f64, best_idx: usize) -> bool {
    d < best_d || (d == best_d && idx < best_idx)
}

/// Pointwise min-merge of one partial profile into another under
/// [`improves`].
///
/// `src` may be shorter than `dst` (a partial computed before the series
/// grew); entries past its end are left untouched. Because the underlying
/// fold is commutative and associative, merging partials in any order
/// yields the same result — this is the primitive behind parallel
/// STAMP's per-worker merge and the streaming monitor's carry-over of
/// pre-append evidence.
///
/// # Panics
///
/// Panics if `dst_profile` and `dst_index` lengths differ, or if `src`
/// is longer than `dst`.
pub fn merge_min_into(
    dst_profile: &mut [f64],
    dst_index: &mut [usize],
    src_profile: &[f64],
    src_index: &[usize],
) {
    assert_eq!(dst_profile.len(), dst_index.len(), "dst length mismatch");
    assert_eq!(src_profile.len(), src_index.len(), "src length mismatch");
    assert!(
        src_profile.len() <= dst_profile.len(),
        "src longer than dst"
    );
    for i in 0..src_profile.len() {
        if improves(src_profile[i], src_index[i], dst_profile[i], dst_index[i]) {
            dst_profile[i] = src_profile[i];
            dst_index[i] = src_index[i];
        }
    }
}

/// A discord: a subsequence whose nearest non-self neighbor is far away.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Window start position.
    pub start: usize,
    /// Window length.
    pub len: usize,
    /// 1-NN (z-normalized Euclidean) distance — higher is more anomalous.
    pub distance: f64,
}

/// The matrix profile of a series for window length `m`: per window, the
/// distance to (and index of) its nearest non-self match.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Window length the profile was computed for.
    pub m: usize,
    /// Exclusion zone half-width used (|i − j| ≤ zone are self-matches).
    pub exclusion: usize,
    /// `profile[i]` — distance from window `i` to its nearest neighbor.
    pub profile: Vec<f64>,
    /// `index[i]` — position of that neighbor (`usize::MAX` if none).
    pub index: Vec<usize>,
}

impl MatrixProfile {
    /// Number of windows.
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// `true` when the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }

    /// Extracts the top-`k` non-overlapping discords: windows with the
    /// largest nearest-neighbor distance, greedily filtered so no two
    /// reported windows overlap.
    ///
    /// Windows whose neighborhood was entirely excluded (profile still at
    /// `+∞`) are skipped — they carry no evidence.
    pub fn discords(&self, k: usize) -> Vec<Discord> {
        let mut order: Vec<usize> = (0..self.profile.len())
            .filter(|&i| self.profile[i].is_finite())
            .collect();
        order.sort_by(|&x, &y| {
            self.profile[y]
                .partial_cmp(&self.profile[x])
                .expect("profile distances are finite")
                .then(x.cmp(&y))
        });
        let mut picked: Vec<Discord> = Vec::with_capacity(k);
        for i in order {
            if picked.len() == k {
                break;
            }
            if picked
                .iter()
                .all(|d| !intervals_overlap(d.start, d.len, i, self.m))
            {
                picked.push(Discord {
                    start: i,
                    len: self.m,
                    distance: self.profile[i],
                });
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp(profile: Vec<f64>, m: usize) -> MatrixProfile {
        let index = vec![0; profile.len()];
        MatrixProfile {
            m,
            exclusion: m,
            profile,
            index,
        }
    }

    #[test]
    fn top_discord_is_max_distance() {
        let p = mp(vec![1.0, 5.0, 2.0, 1.0, 1.0, 1.0], 2);
        let d = p.discords(1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].start, 1);
        assert_eq!(d[0].distance, 5.0);
    }

    #[test]
    fn discords_do_not_overlap() {
        let p = mp(vec![9.0, 8.5, 8.0, 1.0, 1.0, 7.0, 6.0, 1.0], 3);
        let d = p.discords(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].start, 0);
        // 1 and 2 overlap window 0 (length 3) → next is 5.
        assert_eq!(d[1].start, 5);
    }

    #[test]
    fn infinite_profile_entries_are_skipped() {
        let p = mp(vec![f64::INFINITY, 2.0, 1.0], 1);
        let d = p.discords(3);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].start, 1);
    }

    #[test]
    fn improves_is_lexicographic() {
        // Strictly smaller distance wins regardless of index.
        assert!(improves(1.0, 99, 2.0, 0));
        assert!(!improves(2.0, 0, 1.0, 99));
        // Equal distance: smaller index wins.
        assert!(improves(1.0, 3, 1.0, 7));
        assert!(!improves(1.0, 7, 1.0, 3));
        assert!(!improves(1.0, 5, 1.0, 5));
        // Fresh slot is beaten by any finite distance.
        assert!(improves(1e300, 0, f64::INFINITY, usize::MAX));
        // inf == inf in IEEE, so even infinite ties fall through to the
        // index comparison — still a total order, never a cycle.
        assert!(improves(f64::INFINITY, 0, f64::INFINITY, usize::MAX));
        assert!(!improves(
            f64::INFINITY,
            usize::MAX,
            f64::INFINITY,
            usize::MAX
        ));
    }

    #[test]
    fn empty_profile() {
        let p = mp(vec![], 4);
        assert!(p.is_empty());
        assert!(p.discords(2).is_empty());
    }

    #[test]
    fn merge_min_into_takes_pointwise_best() {
        let mut dp = vec![1.0, 5.0, f64::INFINITY];
        let mut di = vec![3, 7, usize::MAX];
        merge_min_into(&mut dp, &mut di, &[2.0, 5.0], &[9, 2]);
        // Entry 0: 1.0 beats 2.0 — kept. Entry 1: tie, smaller index
        // wins. Entry 2: src shorter — untouched.
        assert_eq!(dp, vec![1.0, 5.0, f64::INFINITY]);
        assert_eq!(di, vec![3, 2, usize::MAX]);
        merge_min_into(&mut dp, &mut di, &[0.5, 9.0, 4.0], &[1, 1, 8]);
        assert_eq!(dp, vec![0.5, 5.0, 4.0]);
        assert_eq!(di, vec![1, 2, 8]);
    }

    #[test]
    #[should_panic(expected = "src longer than dst")]
    fn merge_min_into_rejects_longer_src() {
        let mut dp = vec![1.0];
        let mut di = vec![0];
        merge_min_into(&mut dp, &mut di, &[1.0, 2.0], &[0, 1]);
    }
}
