//! Brute-force matrix profile — the `O(N²·m)` oracle the fast algorithms
//! are validated against.

use crate::dist::WindowStats;
use crate::profile::MatrixProfile;

/// Computes the exact matrix profile by direct dot products.
///
/// `exclusion` is the self-match half-width: windows `j` with
/// `|i − j| ≤ exclusion` are not considered neighbors of `i`. The discord
/// literature's "non-self match" corresponds to `exclusion = m − 1`
/// (no overlap); matrix profile implementations conventionally use `m/2`
/// or `m/4`.
pub fn brute_force(series: &[f64], m: usize, exclusion: usize) -> MatrixProfile {
    let ws = WindowStats::new(series, m);
    let count = ws.count();
    let mut profile = vec![f64::INFINITY; count];
    let mut index = vec![usize::MAX; count];
    for i in 0..count {
        for j in 0..count {
            if i.abs_diff(j) <= exclusion {
                continue;
            }
            let qt: f64 = series[i..i + m]
                .iter()
                .zip(&series[j..j + m])
                .map(|(x, y)| x * y)
                .sum();
            let d = ws.dist(i, j, qt);
            if d < profile[i] {
                profile[i] = d;
                index[i] = j;
            }
        }
    }
    MatrixProfile {
        m,
        exclusion,
        profile,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_series_has_zero_profile() {
        // Two exact copies of a motif: every window has an exact match.
        let motif: Vec<f64> = (0..20).map(|i| (i as f64 * 0.8).sin()).collect();
        let mut series = motif.clone();
        series.extend(&motif);
        let mp = brute_force(&series, 8, 7);
        // Windows in the first copy match the corresponding window in the
        // second copy exactly.
        for i in 0..10 {
            assert!(mp.profile[i] < 1e-6, "window {i}: {}", mp.profile[i]);
            assert_eq!(mp.index[i], i + 20);
        }
    }

    #[test]
    fn profile_is_symmetric_in_distance() {
        let series: Vec<f64> = (0..40).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let mp = brute_force(&series, 6, 5);
        // d(i, index[i]) must equal profile[i]; and profile[index[i]] ≤
        // profile[i] is NOT required, but index must respect exclusion.
        for i in 0..mp.len() {
            if mp.index[i] != usize::MAX {
                assert!(i.abs_diff(mp.index[i]) > 5);
            }
        }
    }

    #[test]
    fn planted_outlier_has_max_profile() {
        // Repeating sine with one corrupted window.
        let mut series: Vec<f64> = (0..120)
            .map(|i| (i as f64 * std::f64::consts::TAU / 12.0).sin())
            .collect();
        for (off, v) in series[60..72].iter_mut().enumerate() {
            *v = if off % 2 == 0 { 2.5 } else { -2.5 };
        }
        let m = 12;
        let mp = brute_force(&series, m, m - 1);
        let top = mp.discords(1)[0];
        assert!(
            (48..=72).contains(&top.start),
            "discord at {} not at planted outlier",
            top.start
        );
    }

    #[test]
    fn exclusion_equal_everything_gives_infinite_profile() {
        let series = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mp = brute_force(&series, 2, 10);
        assert!(mp.profile.iter().all(|d| d.is_infinite()));
        assert!(mp.discords(1).is_empty());
    }
}
